#include "flowsim/flow_sim.hpp"
#include "flowsim/online.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"
#include "fabric/candidate_cache.hpp"
#include "fabric/flow_lifecycle.hpp"
#include "fault/auditor.hpp"
#include "obs/metrics.hpp"
#include "perf/profiler.hpp"
#include "sim/engine.hpp"
#include "topo/maxmin.hpp"

namespace basrpt::flowsim {

namespace {

/// Slack for floating-point drain rounding when a completion event
/// fires: the sum of llround errors across the advances of one service
/// period is a few bytes at most.
constexpr std::int64_t kCompletionSlackBytes = 64;

class Engine {
 public:
  /// `traffic` may be null: the online façade pushes arrivals via
  /// offer() instead of pulling them from a source.
  Engine(const FlowSimConfig& config, sched::Scheduler& scheduler,
         workload::TrafficSource* traffic)
      : config_(config),
        scheduler_(scheduler),
        traffic_(traffic),
        fabric_(config.fabric),
        voqs_(static_cast<PortId>(config.fabric.hosts())),
        result_(config.watched_src, config.watched_dst),
        lifecycle_(&voqs_, result_.fct, config.tracer),
        cache_(voqs_, config.packet_bytes, scheduler.needs_arrival_lane()) {
    BASRPT_REQUIRE(config.horizon.seconds > 0.0, "horizon must be positive");
    BASRPT_REQUIRE(config.packet_bytes > 0.0,
                   "packet size must be positive");
    BASRPT_REQUIRE(config.watched_src >= 0 &&
                       config.watched_src < fabric_.hosts() &&
                       config.watched_dst >= 0 &&
                       config.watched_dst < fabric_.hosts(),
                   "watched VOQ out of range");
    if (config.fault_plan != nullptr && !config.fault_plan->empty()) {
      BASRPT_REQUIRE(config.fault_plan->max_port() <
                         static_cast<std::int32_t>(fabric_.hosts()),
                     "fault plan references a port outside the fabric");
      fault::FaultHooks hooks;
      hooks.on_port_factor = [this](std::int32_t port, double factor) {
        cache_.set_port_usable(static_cast<PortId>(port), factor > 0.0);
      };
      hooks.on_rearrival = [this](std::int64_t count) {
        do_rearrival(count);
      };
      injector_ = std::make_unique<fault::FaultInjector>(
          *config.fault_plan, static_cast<std::int32_t>(fabric_.hosts()),
          std::move(hooks));
    }
  }

  FlowSimResult run() {
    begin(nullptr);
    sim::schedule_periodic(
        events_, SimTime{0.0}, config_.sample_every, config_.horizon,
        [this](SimTime now) {
          advance(now);
          result_.backlog.sample(now, voqs_);
          result_.delivered_trace.add(
              now, static_cast<double>(result_.delivered.count));
          if (config_.paranoid) {
            audit_conservation(now);
          }
        });
    events_.run_until(config_.horizon);
    advance(config_.horizon);
    return finalize(config_.horizon);
  }

  // ---- Online stepping interface (flowsim/online.hpp façade) ------------

  /// Arms heartbeat/watchdog/faults and, when `resume` is set, rebuilds
  /// the captured state before any calendar event exists (the clock jump
  /// must not execute fault transitions the checkpoint already applied).
  /// The batch run() calls this with null; the event-scheduling order it
  /// performs (faults, then the first arrival) is the original one, so
  /// batch results are unchanged.
  void begin(const OnlineSimState* resume) {
    if (config_.heartbeat_wall_sec > 0.0) {
      events_.set_heartbeat(config_.heartbeat_wall_sec);
    }
    if (config_.watchdog.enabled()) {
      watchdog_.configure(config_.watchdog);
      watchdog_.set_diagnostics([this]() { return stall_diagnostics(); });
      if (injector_ != nullptr) {
        // A scripted blackout/control-loss window can legitimately freeze
        // sim time (nothing drains, decisions are dropped); that is the
        // plan working, not a stall.
        watchdog_.set_suppress_when(
            [this]() { return injector_->in_disruption(); });
      }
      events_.set_watchdog(&watchdog_);
    }
    lifecycle_.begin_run();
    if (resume != nullptr) {
      restore_online(*resume);
    }
    if (injector_ != nullptr) {
      schedule_next_fault();
    }
    schedule_next_arrival();
    if (resume != nullptr) {
      // Regenerate the serving set and its completion event from the
      // restored queues. Not counted as a decision: at a decision
      // boundary it recomputes exactly what the captured run had just
      // decided, so the restored counter must match the original's.
      reschedule();
      result_.scheduler_invocations = resume->scheduler_invocations;
    }
  }

  void offer(const workload::FlowArrival& a) {
    BASRPT_REQUIRE(a.time.seconds >= events_.now().seconds,
                   "offered arrival is in the simulated past");
    BASRPT_REQUIRE(a.time.seconds <= config_.horizon.seconds,
                   "offered arrival is beyond the scheduling horizon");
    BASRPT_REQUIRE(a.size.count > 0, "offered flow must carry bytes");
    BASRPT_REQUIRE(a.src >= 0 && a.src < fabric_.hosts() && a.dst >= 0 &&
                       a.dst < fabric_.hosts(),
                   "offered flow references a port outside the fabric");
    BASRPT_REQUIRE(a.src != a.dst,
                   "offered flow has identical source and destination");
    events_.schedule_at(a.time, [this, a]() { on_arrival(a); });
  }

  void advance_to(SimTime t) {
    BASRPT_REQUIRE(t.seconds >= events_.now().seconds,
                   "advance_to went backwards");
    events_.run_until(t);
    advance(t);
  }

  SimTime now() const { return events_.now(); }
  std::size_t active_flows() const { return voqs_.active_flows(); }
  Bytes backlog() const { return voqs_.total_backlog(); }
  std::int64_t flows_arrived() const { return lifecycle_.flows_arrived(); }
  std::int64_t flows_completed() const {
    return lifecycle_.flows_completed();
  }
  Bytes delivered() const { return result_.delivered; }
  std::uint64_t scheduler_invocations() const {
    return result_.scheduler_invocations;
  }
  const stats::FctAggregator& fct() const { return result_.fct; }
  bool in_disruption() const {
    return injector_ != nullptr && injector_->in_disruption();
  }
  fault::FaultStats fault_stats() const {
    return injector_ != nullptr ? injector_->stats() : fault::FaultStats{};
  }

  OnlineSimState capture() const {
    BASRPT_REQUIRE(!refresh_pending_,
                   "capture with a batched reschedule pending (online "
                   "checkpoints require min_reschedule_gap == 0)");
    OnlineSimState s;
    s.now_sec = events_.now().seconds;
    s.scheduler_invocations = result_.scheduler_invocations;
    s.delivered_bytes = result_.delivered.count;
    s.scheduler_state = scheduler_.checkpoint_state();
    s.lifecycle = lifecycle_.state();
    s.flows.reserve(voqs_.active_flows());
    voqs_.for_each_flow(
        [&s](const queueing::Flow& f) { s.flows.push_back(f); });
    s.fct = result_.fct.state();
    if (injector_ != nullptr) {
      s.fault_cursor = injector_->cursor();
      s.fault_stats = injector_->stats();
      s.candidates_masked_base =
          candidates_masked_base_ +
          static_cast<std::int64_t>(cache_.candidates_masked());
    }
    return s;
  }

  FlowSimResult finish_online() {
    advance(events_.now());
    return finalize(events_.now());
  }

 private:
  /// Rebuilds captured state into this freshly constructed engine. Runs
  /// before any event is scheduled: the run_until below only jumps the
  /// clock.
  void restore_online(const OnlineSimState& s) {
    BASRPT_REQUIRE(s.now_sec <= config_.horizon.seconds,
                   "checkpoint time is beyond the configured horizon");
    events_.run_until(SimTime{s.now_sec});
    last_advance_ = SimTime{s.now_sec};
    last_reschedule_ = SimTime{s.now_sec};
    lifecycle_.restore(s.lifecycle);
    for (const queueing::Flow& f : s.flows) {
      voqs_.add_flow(f);
    }
    result_.fct.restore(s.fct);
    result_.delivered = Bytes{s.delivered_bytes};
    scheduler_.restore_checkpoint_state(s.scheduler_state);
    if (injector_ != nullptr) {
      injector_->restore_cursor(static_cast<std::size_t>(s.fault_cursor));
      injector_->stats() = s.fault_stats;
      // Rebuild derived masking (restore_cursor fires no hooks).
      for (PortId p = 0; p < fabric_.hosts(); ++p) {
        cache_.set_port_usable(p, injector_->port_usable(p));
      }
      candidates_masked_base_ = s.candidates_masked_base;
    } else {
      BASRPT_REQUIRE(s.fault_cursor == 0,
                     "checkpoint carries fault state but no plan is "
                     "attached");
    }
  }

  FlowSimResult finalize(SimTime horizon) {
    if (watchdog_.active() && obs::enabled()) {
      watchdog_.export_metrics(obs::Registry::active(), "flowsim");
    }
    result_.horizon = horizon;
    result_.flows_arrived = lifecycle_.flows_arrived();
    result_.bytes_arrived = lifecycle_.bytes_arrived();
    result_.flows_completed = lifecycle_.flows_completed();
    result_.flows_left = static_cast<std::int64_t>(voqs_.active_flows());
    result_.bytes_left = voqs_.total_backlog();
    if (injector_ != nullptr) {
      result_.fault_stats = injector_->stats();
      result_.fault_stats.flows_requeued = lifecycle_.flows_requeued();
      result_.fault_stats.candidates_masked =
          candidates_masked_base_ +
          static_cast<std::int64_t>(cache_.candidates_masked());
    }
    return std::move(result_);
  }
  struct Serving {
    FlowId id;
    queueing::FlowRef ref;  // slot handle; revalidated before every use
    double rate_bps;
  };

  void schedule_next_arrival() {
    if (traffic_ == nullptr) {
      return;  // online mode: arrivals are pushed via offer()
    }
    auto arrival = traffic_->next();
    if (!arrival || arrival->time > config_.horizon) {
      return;
    }
    const workload::FlowArrival a = *arrival;
    events_.schedule_at(a.time, [this, a]() { on_arrival(a); });
  }

  void on_arrival(const workload::FlowArrival& a) {
    advance(events_.now());

    BASRPT_ASSERT(a.size.count > 0, "arriving flow must carry bytes");
    lifecycle_.admit({a.src, a.dst, a.size, a.time, a.cls});

    schedule_next_arrival();

    // Arrival-driven updates may be batched (config.min_reschedule_gap);
    // completion-driven ones never are.
    const double gap = config_.min_reschedule_gap.seconds;
    if (gap > 0.0 && !serving_.empty() &&
        events_.now().seconds - last_reschedule_.seconds < gap) {
      if (!refresh_pending_) {
        refresh_pending_ = true;
        events_.schedule_at(last_reschedule_ + config_.min_reschedule_gap,
                            [this]() {
                              refresh_pending_ = false;
                              advance(events_.now());
                              reschedule();
                            });
      }
      return;
    }
    reschedule();
  }

  void on_completion(std::uint64_t generation, FlowId target) {
    if (generation != schedule_generation_) {
      return;  // stale wakeup from a superseded decision
    }
    advance(events_.now());

    const queueing::FlowSlot slot = voqs_.slot_of(target);
    if (slot != queueing::kNoSlot) {
      const Bytes residual = voqs_.flow_at(slot).remaining;
      if (injector_ != nullptr && residual.count > kCompletionSlackBytes) {
        // A fault clamped this flow's rate after the completion was
        // estimated (suppression windows keep stale estimates alive), so
        // the flow is not actually done. Rescheduling re-estimates.
        reschedule();
        return;
      }
      // advance() drained the analytically exact amount up to rounding;
      // retire the residual dust explicitly.
      BASRPT_ASSERT(residual.count <= kCompletionSlackBytes,
                    "completion event fired with substantial bytes left");
      const queueing::Flow copy = voqs_.flow_at(slot);
      voqs_.drain_at(slot, residual);
      result_.delivered += residual;
      record_completion(copy, events_.now());
    }
    reschedule();
  }

  // ---- Fault injection --------------------------------------------------

  /// Schedules the next fault transition as a calendar event; the chain
  /// self-renews from pump_faults(). Transitions beyond the horizon are
  /// irrelevant and dropped.
  void schedule_next_fault() {
    const double t = injector_->next_transition_after(events_.now().seconds);
    if (std::isfinite(t) && t <= config_.horizon.seconds) {
      events_.schedule_at(SimTime{t}, [this]() { pump_faults(); });
    }
  }

  void pump_faults() {
    advance(events_.now());
    injector_->advance_to(events_.now().seconds);
    schedule_next_fault();
    // One reschedule per fault instant: a closing drop-decisions window
    // recomputes here; an opening one is counted as suppressed inside
    // reschedule() and the stale serving set persists, which is the
    // control-loss model.
    reschedule();
  }

  /// Burst re-arrival: up to `count` parked flows (queued but not in the
  /// current serving set) are evicted and reborn with their remaining
  /// bytes. Iteration order is for_each_flow's deterministic order.
  void do_rearrival(std::int64_t count) {
    if (count <= 0 || voqs_.active_flows() == 0) {
      return;
    }
    serving_set_.clear();
    for (const Serving& s : serving_) {
      serving_set_.insert(s.id);
    }
    rearrival_scratch_.clear();
    voqs_.for_each_flow([this, count](const queueing::Flow& f) {
      if (static_cast<std::int64_t>(rearrival_scratch_.size()) >= count) {
        return;
      }
      if (serving_set_.count(f.id) != 0) {
        return;  // in service; only parked flows time out and restart
      }
      rearrival_scratch_.push_back(f);
    });
    const double now = events_.now().seconds;
    for (const queueing::Flow& f : rearrival_scratch_) {
      voqs_.remove(f.id);
      lifecycle_.requeue(f, now);
    }
  }

  /// --paranoid ledger: every admitted byte is delivered or still queued;
  /// every admitted flow is completed or still active. Exact integers —
  /// fluid drains round to whole bytes, so equality is achievable and
  /// any imbalance is a real leak.
  void audit_conservation(SimTime now) {
    auditor_.audit(
        now.seconds,
        {{"bytes",
          {{"bytes_arrived", lifecycle_.bytes_arrived().count}},
          {{"delivered", result_.delivered.count},
           {"backlog", voqs_.total_backlog().count}}},
         {"flows",
          {{"flows_arrived", lifecycle_.flows_arrived()}},
          {{"completed", lifecycle_.flows_completed()},
           {"active", static_cast<std::int64_t>(voqs_.active_flows())}}}});
  }

  std::string stall_diagnostics() const {
    std::ostringstream os;
    os << "calendar depth=" << events_.pending()
       << ", active flows=" << voqs_.active_flows()
       << ", backlog=" << voqs_.total_backlog().count << "B"
       << ", serving=" << serving_.size()
       << ", decision generation=" << schedule_generation_
       << ", last reschedule t=" << last_reschedule_.seconds << "s";
    if (injector_ != nullptr) {
      os << ", fault transitions=" << injector_->stats().transitions
         << (injector_->decisions_suppressed() ? " (decisions suppressed)"
                                               : "");
    }
    return os.str();
  }

  void record_completion(const queueing::Flow& flow, SimTime now) {
    // Ideal FCT: the flow alone on its path, i.e. serialized at the edge
    // link rate (the fabric core is non-blocking for a single flow).
    const SimTime ideal =
        transmission_time(flow.size, config_.fabric.host_link);
    lifecycle_.record_completion_with_ideal(flow.cls, flow.id, flow.src,
                                            flow.dst, flow.size,
                                            now - flow.arrival, ideal,
                                            now.seconds);
  }

  /// Applies fluid service between the last update and `now` using the
  /// rates of the current decision.
  void advance(SimTime now) {
    const double dt = now.seconds - last_advance_.seconds;
    BASRPT_ASSERT(dt >= -1e-12, "advance went backwards");
    if (dt <= 0.0) {
      return;
    }
    last_advance_ = now;
    const queueing::FlowStore& store = voqs_.store();
    for (const Serving& s : serving_) {
      // The generation-stamped ref distinguishes "this flow, still
      // live" from a recycled slot — no hash probe per serving flow.
      if (!store.valid(s.ref)) {
        continue;
      }
      const auto drained_bytes = static_cast<std::int64_t>(
          std::llround(s.rate_bps * dt / 8.0));
      if (drained_bytes <= 0) {
        continue;
      }
      const std::int64_t remaining = store.remaining(s.ref.slot);
      const Bytes amount{std::min(drained_bytes, remaining)};
      if (amount.count == remaining) {
        // Completing: copy the record out before drain_at frees the
        // slot. Flows that merely shrink are drained without a copy.
        const queueing::Flow copy = store.at(s.ref.slot);
        voqs_.drain_at(s.ref.slot, amount);
        result_.delivered += amount;
        record_completion(copy, now);
      } else {
        voqs_.drain_at(s.ref.slot, amount);
        result_.delivered += amount;
      }
    }
  }

  /// Fills decision_.selected with the flows the next service period
  /// will transmit (may end up empty). decision_ is a persistent buffer;
  /// the decision path allocates nothing in steady state.
  void select_flows() {
    decision_.selected.clear();
    if (config_.service_model == ServiceModel::kFairSharing) {
      // Everyone transmits; the allocator below divides the fabric.
      decision_.selected.reserve(voqs_.active_flows());
      voqs_.for_each_flow([this](const queueing::Flow& f) {
        decision_.selected.push_back(f.id);
      });
    } else {
      const auto& candidates = cache_.refresh();
      if (candidates.empty()) {
        return;
      }
      {
        const perf::ScopedPhase phase(perf::Phase::kDecide);
        scheduler_.decide_into(static_cast<PortId>(fabric_.hosts()),
                               candidates, decision_);
      }
      if (config_.validate_decisions) {
        BASRPT_ASSERT(sched::decision_is_matching(decision_, voqs_),
                      "scheduler violated the crossbar constraint");
      }
    }
  }

  /// Recomputes the serving set and rates; called on every arrival and
  /// completion, per the paper.
  void reschedule() {
    if (injector_ != nullptr && injector_->decisions_suppressed()) {
      // Control-message loss: the recomputation never reaches the data
      // plane, so the stale serving set keeps draining (via advance()).
      // The pump event at the window close forces a real reschedule.
      ++injector_->stats().decisions_suppressed;
      return;
    }
    ++schedule_generation_;
    ++result_.scheduler_invocations;
    last_reschedule_ = events_.now();

    select_flows();
    const std::vector<FlowId>& to_serve = decision_.selected;
    lifecycle_.apply_decision(to_serve, events_.now().seconds);
    serving_.clear();
    if (to_serve.empty()) {
      return;
    }

    // Max-min fair rates over the fabric for the serving set. The
    // demand buffer only ever grows (entries past to_serve.size() are
    // stale but unread), so the inner path vectors — and the solver's
    // scratch — are reused verbatim: zero allocations once warmed.
    if (demands_.size() < to_serve.size()) {
      demands_.resize(to_serve.size());
    }
    serving_slots_.clear();
    for (std::size_t k = 0; k < to_serve.size(); ++k) {
      const FlowId id = to_serve[k];
      const queueing::FlowSlot slot = voqs_.slot_of(id);
      const queueing::Flow& f = voqs_.flow_at(slot);
      fabric_.route_into(f.src, f.dst, static_cast<std::uint64_t>(id),
                         demands_[k].path);
      demands_[k].cap = Rate{0.0};
      serving_slots_.push_back(slot);
    }
    solver_.solve_into(demands_.data(), to_serve.size(),
                       fabric_.capacities(), rates_);

    SimTime earliest{std::numeric_limits<double>::infinity()};
    FlowId earliest_flow = queueing::kInvalidFlow;
    serving_.reserve(to_serve.size());
    for (std::size_t k = 0; k < to_serve.size(); ++k) {
      const FlowId id = to_serve[k];
      const queueing::FlowSlot slot = serving_slots_[k];
      double rate = rates_[k].bits_per_sec;
      if (injector_ != nullptr) {
        // Degraded ports serve at a fraction of the allocated rate; a
        // dark endpoint (blackout) freezes the flow entirely. Matching
        // mode masks dark ports out of the candidates, but fair sharing
        // selects every flow, so zero-rate flows are parked rather than
        // asserted against.
        const queueing::Flow& f = voqs_.flow_at(slot);
        rate *= std::min(injector_->port_factor(f.src),
                         injector_->port_factor(f.dst));
        if (rate <= 0.0) {
          continue;
        }
      }
      BASRPT_ASSERT(rate > 0.0, "selected flow allocated zero rate");
      serving_.push_back({id, voqs_.store().ref(slot), rate});
      const double finish =
          static_cast<double>(voqs_.flow_at(slot).remaining.count) * 8.0 /
          rate;
      if (SimTime{finish} < earliest) {
        earliest = SimTime{finish};
        earliest_flow = id;
      }
    }
    if (serving_.empty()) {
      return;  // every selected flow was frozen by a fault
    }

    const SimTime when = events_.now() + earliest;
    const std::uint64_t generation = schedule_generation_;
    const FlowId target = earliest_flow;
    events_.schedule_at(when,
                        [this, generation, target]() {
                          on_completion(generation, target);
                        });
  }

  FlowSimConfig config_;
  sched::Scheduler& scheduler_;
  workload::TrafficSource* traffic_;  // null in online mode
  topo::Fabric fabric_;
  queueing::VoqMatrix voqs_;
  FlowSimResult result_;
  fabric::FlowLifecycle lifecycle_;
  fabric::CandidateCache cache_;
  sim::Engine events_;
  sched::Decision decision_;
  std::vector<Serving> serving_;
  std::vector<topo::FlowDemand> demands_;  // grow-only; see reschedule()
  std::vector<queueing::FlowSlot> serving_slots_;  // reschedule scratch
  std::vector<Rate> rates_;
  topo::MaxMinSolver solver_;
  std::unique_ptr<fault::FaultInjector> injector_;  // null = fault-free
  fault::Watchdog watchdog_;
  fault::InvariantAuditor auditor_{"flowsim"};
  std::unordered_set<FlowId> serving_set_;        // rearrival scratch
  std::vector<queueing::Flow> rearrival_scratch_;
  SimTime last_advance_{};
  SimTime last_reschedule_{-1.0};
  bool refresh_pending_ = false;
  std::uint64_t schedule_generation_ = 0;
  /// candidates_masked carried over from a resumed checkpoint (the cache
  /// counter restarts at zero after a restore); 0 for fresh runs.
  std::int64_t candidates_masked_base_ = 0;
};

}  // namespace

FlowSimResult run_flow_sim(const FlowSimConfig& config,
                           sched::Scheduler& scheduler,
                           workload::TrafficSource& traffic) {
  Engine engine(config, scheduler, &traffic);
  return engine.run();
}

// ---- OnlineFlowSim: thin pimpl over the file-local Engine ---------------

class OnlineFlowSim::Impl {
 public:
  Impl(const FlowSimConfig& config, sched::Scheduler& scheduler)
      : engine(config, scheduler, /*traffic=*/nullptr) {}
  Engine engine;
};

OnlineFlowSim::OnlineFlowSim(const FlowSimConfig& config,
                             sched::Scheduler& scheduler)
    : impl_(std::make_unique<Impl>(config, scheduler)) {
  impl_->engine.begin(nullptr);
}

OnlineFlowSim::OnlineFlowSim(const FlowSimConfig& config,
                             sched::Scheduler& scheduler,
                             const OnlineSimState& resume)
    : impl_(std::make_unique<Impl>(config, scheduler)) {
  impl_->engine.begin(&resume);
}

OnlineFlowSim::~OnlineFlowSim() = default;

void OnlineFlowSim::offer(const workload::FlowArrival& a) {
  impl_->engine.offer(a);
}
void OnlineFlowSim::advance_to(SimTime t) { impl_->engine.advance_to(t); }
SimTime OnlineFlowSim::now() const { return impl_->engine.now(); }
std::size_t OnlineFlowSim::active_flows() const {
  return impl_->engine.active_flows();
}
Bytes OnlineFlowSim::backlog() const { return impl_->engine.backlog(); }
std::int64_t OnlineFlowSim::flows_arrived() const {
  return impl_->engine.flows_arrived();
}
std::int64_t OnlineFlowSim::flows_completed() const {
  return impl_->engine.flows_completed();
}
Bytes OnlineFlowSim::delivered() const { return impl_->engine.delivered(); }
std::uint64_t OnlineFlowSim::scheduler_invocations() const {
  return impl_->engine.scheduler_invocations();
}
const stats::FctAggregator& OnlineFlowSim::fct() const {
  return impl_->engine.fct();
}
bool OnlineFlowSim::in_disruption() const {
  return impl_->engine.in_disruption();
}
fault::FaultStats OnlineFlowSim::fault_stats() const {
  return impl_->engine.fault_stats();
}
OnlineSimState OnlineFlowSim::capture() const {
  return impl_->engine.capture();
}
FlowSimResult OnlineFlowSim::finish() { return impl_->engine.finish_online(); }

}  // namespace basrpt::flowsim
