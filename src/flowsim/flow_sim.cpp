#include "flowsim/flow_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "sim/engine.hpp"
#include "topo/maxmin.hpp"

namespace basrpt::flowsim {

namespace {

/// Slack for floating-point drain rounding when a completion event
/// fires: the sum of llround errors across the advances of one service
/// period is a few bytes at most.
constexpr std::int64_t kCompletionSlackBytes = 64;

class Engine {
 public:
  Engine(const FlowSimConfig& config, sched::Scheduler& scheduler,
         workload::TrafficSource& traffic)
      : config_(config),
        scheduler_(scheduler),
        traffic_(traffic),
        fabric_(config.fabric),
        voqs_(static_cast<PortId>(config.fabric.hosts())),
        result_(config.watched_src, config.watched_dst) {
    BASRPT_REQUIRE(config.horizon.seconds > 0.0, "horizon must be positive");
    BASRPT_REQUIRE(config.packet_bytes > 0.0,
                   "packet size must be positive");
    BASRPT_REQUIRE(config.watched_src >= 0 &&
                       config.watched_src < fabric_.hosts() &&
                       config.watched_dst >= 0 &&
                       config.watched_dst < fabric_.hosts(),
                   "watched VOQ out of range");
  }

  FlowSimResult run() {
    if (config_.heartbeat_wall_sec > 0.0) {
      events_.set_heartbeat(config_.heartbeat_wall_sec);
    }
    if (config_.tracer != nullptr) {
      config_.tracer->begin_run();
    }
    schedule_next_arrival();
    sim::schedule_periodic(
        events_, SimTime{0.0}, config_.sample_every, config_.horizon,
        [this](SimTime now) {
          advance(now);
          result_.backlog.sample(now, voqs_);
          result_.delivered_trace.add(
              now, static_cast<double>(result_.delivered.count));
        });
    events_.run_until(config_.horizon);
    advance(config_.horizon);

    result_.horizon = config_.horizon;
    result_.flows_left = static_cast<std::int64_t>(voqs_.active_flows());
    result_.bytes_left = voqs_.total_backlog();
    return std::move(result_);
  }

 private:
  struct Serving {
    FlowId id;
    double rate_bps;
  };

  void schedule_next_arrival() {
    auto arrival = traffic_.next();
    if (!arrival || arrival->time > config_.horizon) {
      return;
    }
    const workload::FlowArrival a = *arrival;
    events_.schedule_at(a.time, [this, a]() { on_arrival(a); });
  }

  void on_arrival(const workload::FlowArrival& a) {
    advance(events_.now());

    BASRPT_ASSERT(a.size.count > 0, "arriving flow must carry bytes");
    queueing::Flow flow;
    flow.id = next_flow_id_++;
    flow.src = a.src;
    flow.dst = a.dst;
    flow.size = a.size;
    flow.remaining = a.size;
    flow.arrival = a.time;
    flow.cls = a.cls;
    voqs_.add_flow(flow);
    ++result_.flows_arrived;
    result_.bytes_arrived += a.size;
    if (config_.tracer != nullptr) {
      config_.tracer->on_arrival(flow.id, flow.src, flow.dst,
                                 a.time.seconds,
                                 static_cast<double>(a.size.count));
    }

    schedule_next_arrival();

    // Arrival-driven updates may be batched (config.min_reschedule_gap);
    // completion-driven ones never are.
    const double gap = config_.min_reschedule_gap.seconds;
    if (gap > 0.0 && !serving_.empty() &&
        events_.now().seconds - last_reschedule_.seconds < gap) {
      if (!refresh_pending_) {
        refresh_pending_ = true;
        events_.schedule_at(last_reschedule_ + config_.min_reschedule_gap,
                            [this]() {
                              refresh_pending_ = false;
                              advance(events_.now());
                              reschedule();
                            });
      }
      return;
    }
    reschedule();
  }

  void on_completion(std::uint64_t generation, FlowId target) {
    if (generation != schedule_generation_) {
      return;  // stale wakeup from a superseded decision
    }
    advance(events_.now());

    if (voqs_.contains(target)) {
      // advance() drained the analytically exact amount up to rounding;
      // retire the residual dust explicitly.
      const Bytes residual = voqs_.flow(target).remaining;
      BASRPT_ASSERT(residual.count <= kCompletionSlackBytes,
                    "completion event fired with substantial bytes left");
      const queueing::Flow copy = voqs_.flow(target);
      voqs_.drain(target, residual);
      result_.delivered += residual;
      record_completion(copy, events_.now());
    }
    reschedule();
  }

  void record_completion(const queueing::Flow& flow, SimTime now) {
    // Ideal FCT: the flow alone on its path, i.e. serialized at the edge
    // link rate (the fabric core is non-blocking for a single flow).
    const SimTime ideal =
        transmission_time(flow.size, config_.fabric.host_link);
    result_.fct.record_with_ideal(flow.cls, now - flow.arrival, flow.size,
                                  ideal);
    ++result_.flows_completed;
    if (config_.tracer != nullptr) {
      config_.tracer->on_completion(flow.id, flow.src, flow.dst,
                                    now.seconds,
                                    static_cast<double>(flow.size.count));
    }
  }

  /// Applies fluid service between the last update and `now` using the
  /// rates of the current decision.
  void advance(SimTime now) {
    const double dt = now.seconds - last_advance_.seconds;
    BASRPT_ASSERT(dt >= -1e-12, "advance went backwards");
    if (dt <= 0.0) {
      return;
    }
    last_advance_ = now;
    for (const Serving& s : serving_) {
      if (!voqs_.contains(s.id)) {
        continue;
      }
      const auto drained_bytes = static_cast<std::int64_t>(
          std::llround(s.rate_bps * dt / 8.0));
      if (drained_bytes <= 0) {
        continue;
      }
      const queueing::Flow copy = voqs_.flow(s.id);
      const Bytes amount{std::min(drained_bytes, copy.remaining.count)};
      const bool completed = voqs_.drain(s.id, amount);
      result_.delivered += amount;
      if (completed) {
        record_completion(copy, now);
      }
    }
  }

  /// The flows the next service period will transmit (may be empty).
  std::vector<FlowId> select_flows() {
    std::vector<FlowId> to_serve;
    if (config_.service_model == ServiceModel::kFairSharing) {
      // Everyone transmits; the allocator below divides the fabric.
      to_serve.reserve(voqs_.active_flows());
      voqs_.for_each_flow(
          [&to_serve](const queueing::Flow& f) { to_serve.push_back(f.id); });
    } else {
      const auto candidates =
          sched::build_candidates(voqs_, config_.packet_bytes);
      if (candidates.empty()) {
        return to_serve;
      }
      auto decision = scheduler_.decide(
          static_cast<PortId>(fabric_.hosts()), candidates);
      if (config_.validate_decisions) {
        BASRPT_ASSERT(sched::decision_is_matching(decision, voqs_),
                      "scheduler violated the crossbar constraint");
      }
      to_serve = std::move(decision.selected);
    }
    return to_serve;
  }

  /// Lifecycle events of one decision: previously-serving flows that are
  /// still queued but no longer selected were preempted; selected flows
  /// start (or resume — the tracer dedups) service. Reads `serving_` as
  /// the previous decision, so call before it is overwritten.
  void trace_decision(const std::vector<FlowId>& to_serve) {
    obs::FlowTracer& tracer = *config_.tracer;
    const double now = events_.now().seconds;
    for (const Serving& s : serving_) {
      if (!voqs_.contains(s.id)) {
        continue;  // completed, not preempted
      }
      if (std::find(to_serve.begin(), to_serve.end(), s.id) !=
          to_serve.end()) {
        continue;  // still selected
      }
      const queueing::Flow& f = voqs_.flow(s.id);
      tracer.on_preemption(f.id, f.src, f.dst, now,
                           static_cast<double>(f.size.count),
                           static_cast<double>(f.remaining.count));
    }
    for (const FlowId id : to_serve) {
      const queueing::Flow& f = voqs_.flow(id);
      tracer.on_service(f.id, f.src, f.dst, now,
                        static_cast<double>(f.size.count),
                        static_cast<double>(f.remaining.count));
    }
  }

  /// Recomputes the serving set and rates; called on every arrival and
  /// completion, per the paper.
  void reschedule() {
    ++schedule_generation_;
    ++result_.scheduler_invocations;
    last_reschedule_ = events_.now();

    std::vector<FlowId> to_serve = select_flows();
    if (config_.tracer != nullptr) {
      trace_decision(to_serve);
    }
    serving_.clear();
    if (to_serve.empty()) {
      return;
    }

    // Max-min fair rates over the fabric for the serving set.
    std::vector<topo::FlowDemand> demands;
    demands.reserve(to_serve.size());
    for (const FlowId id : to_serve) {
      const queueing::Flow& f = voqs_.flow(id);
      demands.push_back(
          {fabric_.route(f.src, f.dst, static_cast<std::uint64_t>(id)),
           Rate{0.0}});
    }
    const auto rates = topo::max_min_rates(demands, fabric_.capacities());

    SimTime earliest{std::numeric_limits<double>::infinity()};
    FlowId earliest_flow = queueing::kInvalidFlow;
    serving_.reserve(to_serve.size());
    for (std::size_t k = 0; k < to_serve.size(); ++k) {
      const FlowId id = to_serve[k];
      const double rate = rates[k].bits_per_sec;
      BASRPT_ASSERT(rate > 0.0, "selected flow allocated zero rate");
      serving_.push_back({id, rate});
      const double finish =
          static_cast<double>(voqs_.flow(id).remaining.count) * 8.0 / rate;
      if (SimTime{finish} < earliest) {
        earliest = SimTime{finish};
        earliest_flow = id;
      }
    }

    const SimTime when = events_.now() + earliest;
    const std::uint64_t generation = schedule_generation_;
    const FlowId target = earliest_flow;
    events_.schedule_at(when,
                        [this, generation, target]() {
                          on_completion(generation, target);
                        });
  }

  FlowSimConfig config_;
  sched::Scheduler& scheduler_;
  workload::TrafficSource& traffic_;
  topo::Fabric fabric_;
  queueing::VoqMatrix voqs_;
  FlowSimResult result_;
  sim::Engine events_;
  std::vector<Serving> serving_;
  SimTime last_advance_{};
  SimTime last_reschedule_{-1.0};
  bool refresh_pending_ = false;
  std::uint64_t schedule_generation_ = 0;
  FlowId next_flow_id_ = 0;
};

}  // namespace

FlowSimResult run_flow_sim(const FlowSimConfig& config,
                           sched::Scheduler& scheduler,
                           workload::TrafficSource& traffic) {
  Engine engine(config, scheduler, traffic);
  return engine.run();
}

}  // namespace basrpt::flowsim
