// Online (externally clocked) façade over the flow-level simulator.
//
// The batch entry point (run_flow_sim) owns the clock: it pulls arrivals
// from a TrafficSource and runs the calendar to a fixed horizon. A
// serving process inverts that control flow — arrivals come from an
// external feed one record at a time, and the caller decides how far the
// simulated clock advances between records. OnlineFlowSim exposes the
// same engine (same event loop, same fluid-rate service, same fault
// layer; one translation unit, so the batch path stays byte-identical)
// through a stepping API:
//
//   OnlineFlowSim sim(config, scheduler);
//   sim.offer(arrival);        // schedule an external arrival (>= now)
//   sim.advance_to(t);         // run the calendar to t, drain fluid
//   sim.active_flows(); ...    // inspect live state between steps
//   FlowSimResult r = sim.finish();
//
// config.horizon acts as the hard scheduling ceiling (offers and fault
// transitions beyond it are rejected/dropped); a server sets it past any
// feed it will accept. config.sample_every is unused — the caller does
// its own sampling at whatever cadence it wants.
//
// Checkpoint/resume: capture() returns a plain-data image of the live
// state (flows in deterministic for_each_flow order, lifecycle tables,
// scheduler-internal state, FCT accumulators, fault cursor) and the
// resume constructor rebuilds an equivalent engine from it, finishing
// with one forced reschedule to regenerate the serving set and its
// completion event. When the capture instant is a *decision boundary* —
// immediately after an offered arrival was executed, i.e. the serving
// set was just recomputed from exactly the captured queue state — a
// stateless scheduler recomputes the identical decision on resume and
// the continuation is bit-deterministic (the forced reschedule is not
// counted: scheduler_invocations is restored after it). Captured
// mid-service-period, the recomputed decision may differ from the one
// the uninterrupted run was holding, so the continuation is only
// divergence-bounded — the fluid drained between the boundary and the
// capture is identical, and the first reschedule after resume re-syncs
// the serving set. docs/CHECKPOINT.md spells out the contract.
//
// Not checkpointable: a pending batched reschedule (min_reschedule_gap
// > 0) — capture() rejects that, so online users wanting checkpoints
// keep the paper's reschedule-on-every-event behaviour (gap == 0).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fabric/flow_lifecycle.hpp"
#include "fault/injector.hpp"
#include "flowsim/flow_sim.hpp"
#include "queueing/flow.hpp"
#include "stats/fct.hpp"
#include "workload/traffic.hpp"

namespace basrpt::flowsim {

/// Plain-data image of a live online run. The simulator exposes state,
/// the caller owns the encoding (src/ckpt for the daemon), and neither
/// depends on the other's internals — same split as SlottedSimState.
struct OnlineSimState {
  double now_sec = 0.0;
  std::uint64_t scheduler_invocations = 0;
  std::int64_t delivered_bytes = 0;
  /// Scheduler-internal words (Scheduler::checkpoint_state); empty for
  /// every stateless scheduler.
  std::vector<std::uint64_t> scheduler_state;
  fabric::FlowLifecycle::State lifecycle;
  std::vector<queueing::Flow> flows;  // in for_each_flow order
  stats::FctAggregator::State fct;
  // Fault layer (meaningful only while a plan is attached).
  std::uint64_t fault_cursor = 0;  // transitions already applied
  fault::FaultStats fault_stats{};
  /// candidates_masked accumulated before capture; the resumed cache
  /// restarts its counter at zero, so the final stat is base + new.
  std::int64_t candidates_masked_base = 0;
};

class OnlineFlowSim {
 public:
  /// Fresh run at t = 0. The config and scheduler must outlive the
  /// object; `config.fault_plan`, if set, replays against the online
  /// clock exactly as in the batch path.
  OnlineFlowSim(const FlowSimConfig& config, sched::Scheduler& scheduler);

  /// Resume from a captured state. The caller must pass the *same*
  /// config (fabric, fault plan, scheduler spec) as the captured run;
  /// the scheduler's internal state is restored from the image.
  OnlineFlowSim(const FlowSimConfig& config, sched::Scheduler& scheduler,
                const OnlineSimState& resume);

  ~OnlineFlowSim();
  OnlineFlowSim(const OnlineFlowSim&) = delete;
  OnlineFlowSim& operator=(const OnlineFlowSim&) = delete;

  /// Schedules one external arrival. `a.time` must be >= now() and <=
  /// config.horizon; sizes must be positive and ports in range. The
  /// arrival executes (admission + reschedule) when advance_to passes
  /// its timestamp.
  void offer(const workload::FlowArrival& a);

  /// Runs the calendar up to and including `t`, then drains fluid
  /// service to exactly `t`. Monotone: `t` must be >= now(). Throws
  /// common::InterruptedError when a signal guard raised the interrupt
  /// flag, fault::StallError on a watchdog stall — both mid-event-loop,
  /// exactly like the batch path.
  void advance_to(SimTime t);

  SimTime now() const;
  std::size_t active_flows() const;
  Bytes backlog() const;
  std::int64_t flows_arrived() const;
  std::int64_t flows_completed() const;
  Bytes delivered() const;
  std::uint64_t scheduler_invocations() const;
  const stats::FctAggregator& fct() const;

  /// True while the fault plan legitimately halts progress (blackout /
  /// decision-loss window open). False without a plan.
  bool in_disruption() const;
  /// Injector counters so far; zeros without a plan.
  fault::FaultStats fault_stats() const;

  /// Captures the live state (see the file comment for the exactness
  /// contract). Rejects a pending batched reschedule.
  OnlineSimState capture() const;

  /// Finalizes the run at now() and returns the result (FCT summaries,
  /// delivered bytes, leftover backlog). The object must not be used
  /// afterwards.
  FlowSimResult finish();

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace basrpt::flowsim
