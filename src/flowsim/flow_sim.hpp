// Event-driven flow-level simulator on the multi-rooted tree fabric —
// the paper's evaluation vehicle (Sec. V-A), re-implemented from its
// description: a centralized scheduler recomputes the serving flow set
// on every flow arrival and every flow completion; selected flows
// transmit as fluid at the max-min fair rates the topology admits
// (selected sets form matchings, so with the paper's capacities each
// selected flow gets the full edge rate and the abstraction's crossbar
// behaviour emerges rather than being assumed).
//
// Scheduler keys are fed in packets (bytes / packet_bytes) so the
// paper's V values (1000–10000) apply unchanged.
#pragma once

#include <cstdint>

#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/watchdog.hpp"
#include "obs/trace.hpp"
#include "queueing/backlog_recorder.hpp"
#include "queueing/voq.hpp"
#include "sched/scheduler.hpp"
#include "stats/fct.hpp"
#include "topo/topology.hpp"
#include "workload/traffic.hpp"

namespace basrpt::flowsim {

using queueing::FlowId;
using queueing::PortId;

/// How the fabric serves the queued flows.
enum class ServiceModel {
  /// The paper's model: a centralized scheduler picks a crossbar
  /// matching; selected flows transmit at the max-min rates.
  kMatchingScheduler,
  /// TCP-like reference: *every* active flow transmits concurrently at
  /// the max-min fair rates the topology admits (no matching, no
  /// scheduler). The classic fair-sharing baseline of the FCT
  /// literature — stable, but size-oblivious.
  kFairSharing,
};

struct FlowSimConfig {
  topo::FabricConfig fabric = topo::small_fabric();
  ServiceModel service_model = ServiceModel::kMatchingScheduler;
  SimTime horizon = seconds(5.0);
  SimTime sample_every = milliseconds(10.0);
  double packet_bytes = 1500.0;  // packet unit for scheduler keys
  PortId watched_src = 0;        // VOQ traced as "queue length at a port"
  PortId watched_dst = 1;
  bool validate_decisions = false;  // assert crossbar constraint per event
  /// Minimum gap between decision recomputations triggered by arrivals.
  /// The paper updates on *every* arrival and completion, which is the
  /// cost Sec. IV-C worries about; a positive gap batches arrival-driven
  /// updates (completions always reschedule, so the fabric stays
  /// work-conserving). bench_ablation_batching measures the FCT price.
  SimTime min_reschedule_gap{0.0};
  /// Optional flow-lifecycle tracer (arrival / first-service /
  /// preemption / completion). Purely passive; null disables.
  obs::FlowTracer* tracer = nullptr;
  /// Logs sim-time progress and event rate every N wall-seconds during
  /// long runs (<= 0 disables). See obs::Heartbeat.
  double heartbeat_wall_sec = 0.0;
  /// Fault schedule replayed during the run (non-owning; must outlive
  /// the run). Degrades clamp flow rates, blackouts additionally mask
  /// the port's VOQs from scheduling, drop-decisions windows freeze the
  /// serving set, rearrival bursts re-admit parked flows. Null or an
  /// empty plan is strictly pay-for-use: the run is bit-identical to one
  /// without the fault layer.
  const fault::FaultPlan* fault_plan = nullptr;
  /// No-progress stall watchdog (see fault::Watchdog); default-disabled.
  fault::WatchdogConfig watchdog{};
  /// Conservation auditing at every sampling instant (--paranoid):
  /// admitted bytes/flows must equal in-flight + completed, or the run
  /// aborts with fault::InvariantError naming the violated ledger entry.
  bool paranoid = false;
};

struct FlowSimResult {
  stats::FctAggregator fct;
  queueing::BacklogRecorder backlog;  // bytes
  stats::TimeSeries delivered_trace;  // cumulative delivered bytes(t)
  Bytes delivered{};                  // bytes that left the fabric
  Bytes bytes_arrived{};              // total offered bytes
  std::int64_t flows_arrived = 0;
  std::int64_t flows_completed = 0;
  std::int64_t flows_left = 0;  // still queued at the horizon
  Bytes bytes_left{};
  SimTime horizon{};
  std::uint64_t scheduler_invocations = 0;
  fault::FaultStats fault_stats;  // zeros when no plan was attached

  FlowSimResult(PortId watched_src, PortId watched_dst)
      : backlog(watched_src, watched_dst) {}

  /// Global throughput: bytes leaving the fabric over the horizon.
  /// A zero horizon (result inspected before/without a run) yields 0,
  /// not inf/NaN.
  Rate throughput() const {
    if (horizon.seconds <= 0.0) {
      return Rate{0.0};
    }
    return Rate{static_cast<double>(delivered.count) * 8.0 /
                horizon.seconds};
  }
};

/// Runs the simulation until `config.horizon`. The traffic source is
/// drained lazily; arrivals after the horizon never materialize.
FlowSimResult run_flow_sim(const FlowSimConfig& config,
                           sched::Scheduler& scheduler,
                           workload::TrafficSource& traffic);

}  // namespace basrpt::flowsim
