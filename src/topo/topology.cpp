#include "topo/topology.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace basrpt::topo {

FabricConfig paper_fabric() { return FabricConfig{}; }

FabricConfig small_fabric(std::int32_t racks, std::int32_t hosts_per_rack,
                          std::int32_t cores) {
  FabricConfig config;
  config.racks = racks;
  config.hosts_per_rack = hosts_per_rack;
  config.cores = cores;
  // Keep the paper's 1:1 oversubscription: rack uplink capacity equals
  // the rack's aggregate host capacity.
  const double uplink_gbps =
      10.0 * static_cast<double>(hosts_per_rack) / static_cast<double>(cores);
  config.core_link = gbps(uplink_gbps);
  return config;
}

Fabric::Fabric(FabricConfig config) : config_(config) {
  BASRPT_REQUIRE(config_.racks >= 1, "fabric needs at least one rack");
  BASRPT_REQUIRE(config_.hosts_per_rack >= 1,
                 "fabric needs at least one host per rack");
  BASRPT_REQUIRE(config_.cores >= 1, "fabric needs at least one core switch");
  BASRPT_REQUIRE(config_.host_link.bits_per_sec > 0.0,
                 "host link capacity must be positive");
  BASRPT_REQUIRE(config_.core_link.bits_per_sec > 0.0,
                 "core link capacity must be positive");

  // Link layout: [host up | host down | tor up (rack-major) | tor down].
  const std::int32_t hosts = config_.hosts();
  const std::int32_t tor_links = config_.racks * config_.cores;
  capacity_.assign(static_cast<std::size_t>(2 * hosts + 2 * tor_links),
                   Rate{});
  for (HostId h = 0; h < hosts; ++h) {
    capacity_[static_cast<std::size_t>(host_up(h))] = config_.host_link;
    capacity_[static_cast<std::size_t>(host_down(h))] = config_.host_link;
  }
  for (std::int32_t r = 0; r < config_.racks; ++r) {
    for (std::int32_t c = 0; c < config_.cores; ++c) {
      capacity_[static_cast<std::size_t>(tor_up(r, c))] = config_.core_link;
      capacity_[static_cast<std::size_t>(tor_down(r, c))] = config_.core_link;
    }
  }
}

std::int32_t Fabric::rack_of(HostId h) const {
  BASRPT_ASSERT(h >= 0 && h < hosts(), "host id out of range");
  return h / config_.hosts_per_rack;
}

bool Fabric::same_rack(HostId a, HostId b) const {
  return rack_of(a) == rack_of(b);
}

Rate Fabric::link_capacity(LinkId l) const {
  BASRPT_ASSERT(l >= 0 && l < links(), "link id out of range");
  return capacity_[static_cast<std::size_t>(l)];
}

LinkId Fabric::host_up(HostId h) const {
  BASRPT_ASSERT(h >= 0 && h < hosts(), "host id out of range");
  return h;
}

LinkId Fabric::host_down(HostId h) const {
  BASRPT_ASSERT(h >= 0 && h < hosts(), "host id out of range");
  return hosts() + h;
}

LinkId Fabric::tor_up(std::int32_t rack, std::int32_t core) const {
  BASRPT_ASSERT(rack >= 0 && rack < config_.racks, "rack out of range");
  BASRPT_ASSERT(core >= 0 && core < config_.cores, "core out of range");
  return 2 * hosts() + rack * config_.cores + core;
}

LinkId Fabric::tor_down(std::int32_t rack, std::int32_t core) const {
  BASRPT_ASSERT(rack >= 0 && rack < config_.racks, "rack out of range");
  BASRPT_ASSERT(core >= 0 && core < config_.cores, "core out of range");
  return 2 * hosts() + config_.racks * config_.cores +
         rack * config_.cores + core;
}

std::vector<LinkUse> Fabric::route(HostId src, HostId dst,
                                   std::uint64_t flow_key) const {
  std::vector<LinkUse> uses;
  route_into(src, dst, flow_key, uses);
  return uses;
}

void Fabric::route_into(HostId src, HostId dst, std::uint64_t flow_key,
                        std::vector<LinkUse>& uses) const {
  BASRPT_ASSERT(src != dst, "flow source equals destination");
  uses.clear();
  uses.push_back({host_up(src), 1.0});
  if (!same_rack(src, dst)) {
    const std::int32_t src_rack = rack_of(src);
    const std::int32_t dst_rack = rack_of(dst);
    if (config_.routing == RoutingMode::kFluidSpray) {
      const double share = 1.0 / static_cast<double>(config_.cores);
      for (std::int32_t c = 0; c < config_.cores; ++c) {
        uses.push_back({tor_up(src_rack, c), share});
        uses.push_back({tor_down(dst_rack, c), share});
      }
    } else {
      // Per-flow ECMP: pick the core by a SplitMix64-style hash of the
      // flow key so placement is deterministic per flow.
      std::uint64_t state = flow_key;
      const std::uint64_t h = splitmix64(state);
      const auto core = static_cast<std::int32_t>(
          h % static_cast<std::uint64_t>(config_.cores));
      uses.push_back({tor_up(src_rack, core), 1.0});
      uses.push_back({tor_down(dst_rack, core), 1.0});
    }
  }
  uses.push_back({host_down(dst), 1.0});
}

}  // namespace basrpt::topo
