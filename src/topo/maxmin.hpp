// Weighted max-min fair rate allocation (progressive filling).
//
// Given a set of concurrently served flows, each consuming a fraction of
// capacity on the links of its path, compute the max-min fair rate
// vector: grow all unfrozen flows' rates uniformly; when a link
// saturates, freeze its flows at the current rate; repeat. This is the
// fluid model every flow-level datacenter simulator (including the
// paper's) uses between scheduling events.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "topo/topology.hpp"

namespace basrpt::topo {

/// One flow's demand: its path (fractional link uses) and an optional
/// rate cap (e.g. the sender NIC limit); no cap = uncapped.
struct FlowDemand {
  std::vector<LinkUse> path;
  Rate cap = Rate{0.0};  // 0 means uncapped
};

/// Max-min fair rates for `demands` subject to `capacities`. Result[i]
/// is the rate of demands[i]. Flows with empty paths are invalid.
std::vector<Rate> max_min_rates(const std::vector<FlowDemand>& demands,
                                const std::vector<Rate>& capacities);

/// Progressive filling with persistent scratch for hot loops: the
/// per-link residual/weight and per-flow frozen arrays live in the
/// solver and are reused across calls, so solving allocates nothing
/// once warmed. `n_flows` is the count of valid leading entries in
/// `demands` (callers keep oversized demand buffers to reuse their
/// inner path vectors). Arithmetic, iteration order and tolerances are
/// exactly those of max_min_rates — the two are bit-identical.
class MaxMinSolver {
 public:
  /// Resizes `rates` to `n_flows` and fills it with the max-min rates.
  void solve_into(const FlowDemand* demands, std::size_t n_flows,
                  const std::vector<Rate>& capacities,
                  std::vector<Rate>& rates);

 private:
  std::vector<double> residual_;
  std::vector<double> weight_;
  std::vector<char> frozen_;
};

}  // namespace basrpt::topo
