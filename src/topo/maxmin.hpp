// Weighted max-min fair rate allocation (progressive filling).
//
// Given a set of concurrently served flows, each consuming a fraction of
// capacity on the links of its path, compute the max-min fair rate
// vector: grow all unfrozen flows' rates uniformly; when a link
// saturates, freeze its flows at the current rate; repeat. This is the
// fluid model every flow-level datacenter simulator (including the
// paper's) uses between scheduling events.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "topo/topology.hpp"

namespace basrpt::topo {

/// One flow's demand: its path (fractional link uses) and an optional
/// rate cap (e.g. the sender NIC limit); no cap = uncapped.
struct FlowDemand {
  std::vector<LinkUse> path;
  Rate cap = Rate{0.0};  // 0 means uncapped
};

/// Max-min fair rates for `demands` subject to `capacities`. Result[i]
/// is the rate of demands[i]. Flows with empty paths are invalid.
std::vector<Rate> max_min_rates(const std::vector<FlowDemand>& demands,
                                const std::vector<Rate>& capacities);

}  // namespace basrpt::topo
