#include "topo/maxmin.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace basrpt::topo {

std::vector<Rate> max_min_rates(const std::vector<FlowDemand>& demands,
                                const std::vector<Rate>& capacities) {
  std::vector<Rate> rates;
  MaxMinSolver solver;
  solver.solve_into(demands.data(), demands.size(), capacities, rates);
  return rates;
}

void MaxMinSolver::solve_into(const FlowDemand* demands, std::size_t n_flows,
                              const std::vector<Rate>& capacities,
                              std::vector<Rate>& rates) {
  const std::size_t n_links = capacities.size();
  rates.assign(n_flows, Rate{0.0});
  if (n_flows == 0) {
    return;
  }

  constexpr double kEps = 1e-6;  // bits/s; capacities are ~1e9-1e10

  residual_.resize(n_links);
  for (std::size_t l = 0; l < n_links; ++l) {
    BASRPT_ASSERT(capacities[l].bits_per_sec >= 0.0,
                  "negative link capacity");
    residual_[l] = capacities[l].bits_per_sec;
  }

  // Weight of unfrozen traffic per link.
  weight_.assign(n_links, 0.0);
  frozen_.assign(n_flows, 0);
  for (std::size_t f = 0; f < n_flows; ++f) {
    BASRPT_ASSERT(!demands[f].path.empty(), "flow demand with empty path");
    for (const LinkUse& use : demands[f].path) {
      BASRPT_ASSERT(use.link >= 0 &&
                        static_cast<std::size_t>(use.link) < n_links,
                    "link id out of range");
      BASRPT_ASSERT(use.fraction > 0.0 && use.fraction <= 1.0,
                    "link fraction must be in (0, 1]");
      weight_[static_cast<std::size_t>(use.link)] += use.fraction;
    }
  }

  // All unfrozen flows always share one common rate "level"; progressive
  // filling raises it until a link saturates or a flow hits its cap.
  double level = 0.0;
  std::size_t remaining = n_flows;

  while (remaining > 0) {
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < n_links; ++l) {
      if (weight_[l] > kEps) {
        delta = std::min(delta, residual_[l] / weight_[l]);
      }
    }
    for (std::size_t f = 0; f < n_flows; ++f) {
      if (frozen_[f] == 0 && demands[f].cap.bits_per_sec > 0.0) {
        delta = std::min(delta, demands[f].cap.bits_per_sec - level);
      }
    }
    BASRPT_ASSERT(std::isfinite(delta),
                  "progressive filling found no binding constraint");
    delta = std::max(delta, 0.0);

    level += delta;
    for (std::size_t l = 0; l < n_links; ++l) {
      if (weight_[l] > kEps) {
        residual_[l] -= weight_[l] * delta;
      }
    }

    // Freeze flows on saturated links or at their caps.
    std::size_t newly_frozen = 0;
    for (std::size_t f = 0; f < n_flows; ++f) {
      if (frozen_[f] != 0) {
        continue;
      }
      bool freeze = false;
      if (demands[f].cap.bits_per_sec > 0.0 &&
          level >= demands[f].cap.bits_per_sec - kEps) {
        freeze = true;
      }
      if (!freeze) {
        for (const LinkUse& use : demands[f].path) {
          if (residual_[static_cast<std::size_t>(use.link)] <= kEps) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        frozen_[f] = 1;
        rates[f] = Rate{level};
        for (const LinkUse& use : demands[f].path) {
          weight_[static_cast<std::size_t>(use.link)] -= use.fraction;
        }
        ++newly_frozen;
      }
    }
    remaining -= newly_frozen;
    BASRPT_ASSERT(newly_frozen > 0 || remaining == 0,
                  "progressive filling made no progress");
  }
}

}  // namespace basrpt::topo
