#include "topo/maxmin.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace basrpt::topo {

std::vector<Rate> max_min_rates(const std::vector<FlowDemand>& demands,
                                const std::vector<Rate>& capacities) {
  const std::size_t n_flows = demands.size();
  const std::size_t n_links = capacities.size();
  std::vector<Rate> rates(n_flows, Rate{0.0});
  if (n_flows == 0) {
    return rates;
  }

  constexpr double kEps = 1e-6;  // bits/s; capacities are ~1e9-1e10

  std::vector<double> residual(n_links);
  for (std::size_t l = 0; l < n_links; ++l) {
    BASRPT_ASSERT(capacities[l].bits_per_sec >= 0.0,
                  "negative link capacity");
    residual[l] = capacities[l].bits_per_sec;
  }

  // Weight of unfrozen traffic per link.
  std::vector<double> weight(n_links, 0.0);
  std::vector<bool> frozen(n_flows, false);
  for (std::size_t f = 0; f < n_flows; ++f) {
    BASRPT_ASSERT(!demands[f].path.empty(), "flow demand with empty path");
    for (const LinkUse& use : demands[f].path) {
      BASRPT_ASSERT(use.link >= 0 &&
                        static_cast<std::size_t>(use.link) < n_links,
                    "link id out of range");
      BASRPT_ASSERT(use.fraction > 0.0 && use.fraction <= 1.0,
                    "link fraction must be in (0, 1]");
      weight[static_cast<std::size_t>(use.link)] += use.fraction;
    }
  }

  // All unfrozen flows always share one common rate "level"; progressive
  // filling raises it until a link saturates or a flow hits its cap.
  double level = 0.0;
  std::size_t remaining = n_flows;

  while (remaining > 0) {
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < n_links; ++l) {
      if (weight[l] > kEps) {
        delta = std::min(delta, residual[l] / weight[l]);
      }
    }
    for (std::size_t f = 0; f < n_flows; ++f) {
      if (!frozen[f] && demands[f].cap.bits_per_sec > 0.0) {
        delta = std::min(delta, demands[f].cap.bits_per_sec - level);
      }
    }
    BASRPT_ASSERT(std::isfinite(delta),
                  "progressive filling found no binding constraint");
    delta = std::max(delta, 0.0);

    level += delta;
    for (std::size_t l = 0; l < n_links; ++l) {
      if (weight[l] > kEps) {
        residual[l] -= weight[l] * delta;
      }
    }

    // Freeze flows on saturated links or at their caps.
    std::size_t newly_frozen = 0;
    for (std::size_t f = 0; f < n_flows; ++f) {
      if (frozen[f]) {
        continue;
      }
      bool freeze = false;
      if (demands[f].cap.bits_per_sec > 0.0 &&
          level >= demands[f].cap.bits_per_sec - kEps) {
        freeze = true;
      }
      if (!freeze) {
        for (const LinkUse& use : demands[f].path) {
          if (residual[static_cast<std::size_t>(use.link)] <= kEps) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        frozen[f] = true;
        rates[f] = Rate{level};
        for (const LinkUse& use : demands[f].path) {
          weight[static_cast<std::size_t>(use.link)] -= use.fraction;
        }
        ++newly_frozen;
      }
    }
    remaining -= newly_frozen;
    BASRPT_ASSERT(newly_frozen > 0 || remaining == 0,
                  "progressive filling made no progress");
  }
  return rates;
}

}  // namespace basrpt::topo
