// Multi-rooted hierarchical tree topology (the paper's Fig. 4).
//
// The evaluation fabric interconnects `racks * hosts_per_rack` hosts via
// one ToR switch per rack and `cores` core switches in full mesh with the
// ToRs: 144 hosts = 12 racks x 12 hosts, 3 cores, 10 Gbps host links and
// 40 Gbps ToR-core links in the paper. The bandwidth configuration keeps
// the bottleneck at the edge ("guarantees the bottleneck not to be in
// network"), which is what justifies the big-switch abstraction — and the
// topology model lets us check rather than assume that.
//
// Two routing modes:
//  * kFluidSpray — a flow's traffic is split evenly over all cores
//    (packet-spraying fluid limit). With the paper's capacities the core
//    is then provably non-interfering and the fabric behaves as the big
//    switch.
//  * kEcmpHash — classic per-flow ECMP by flow-id hash; hash collisions
//    can congest a core link. Used as an ablation of the abstraction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace basrpt::topo {

using HostId = std::int32_t;
using LinkId = std::int32_t;

enum class RoutingMode { kFluidSpray, kEcmpHash };

struct FabricConfig {
  std::int32_t racks = 12;
  std::int32_t hosts_per_rack = 12;
  std::int32_t cores = 3;
  Rate host_link = gbps(10.0);
  Rate core_link = gbps(40.0);
  RoutingMode routing = RoutingMode::kFluidSpray;

  std::int32_t hosts() const { return racks * hosts_per_rack; }
};

/// Paper-scale fabric (144 hosts) per Fig. 4.
FabricConfig paper_fabric();

/// Scaled-down fabric with the same oversubscription ratio (1:1), for
/// laptop-scale benches.
FabricConfig small_fabric(std::int32_t racks = 4,
                          std::int32_t hosts_per_rack = 6,
                          std::int32_t cores = 3);

/// Fractional use of one link by a flow: the flow's rate times `fraction`
/// is carried on `link`.
struct LinkUse {
  LinkId link;
  double fraction;
};

class Fabric {
 public:
  explicit Fabric(FabricConfig config);

  const FabricConfig& config() const { return config_; }
  std::int32_t hosts() const { return config_.hosts(); }
  std::int32_t links() const { return static_cast<std::int32_t>(capacity_.size()); }

  std::int32_t rack_of(HostId h) const;
  bool same_rack(HostId a, HostId b) const;

  Rate link_capacity(LinkId l) const;

  /// Link ids (see layout below).
  LinkId host_up(HostId h) const;
  LinkId host_down(HostId h) const;
  LinkId tor_up(std::int32_t rack, std::int32_t core) const;
  LinkId tor_down(std::int32_t rack, std::int32_t core) const;

  /// The links used by a src→dst flow with their capacity fractions.
  /// `flow_key` seeds the ECMP hash (ignored for kFluidSpray).
  std::vector<LinkUse> route(HostId src, HostId dst,
                             std::uint64_t flow_key) const;

  /// route() into a caller-owned buffer: `out` is cleared and refilled,
  /// so hot loops that reuse their path vectors allocate nothing once
  /// the buffers have warmed to the path length.
  void route_into(HostId src, HostId dst, std::uint64_t flow_key,
                  std::vector<LinkUse>& out) const;

  /// All link capacities indexed by LinkId, for the max-min allocator.
  const std::vector<Rate>& capacities() const { return capacity_; }

 private:
  FabricConfig config_;
  std::vector<Rate> capacity_;
};

}  // namespace basrpt::topo
