// Runtime conservation auditing (--paranoid).
//
// Every simulator maintains an exact integer ledger: everything admitted
// must be somewhere — in service, queued, parked, or completed. A bug
// that leaks or invents bytes/flows (a missed completion, a double
// requeue, a drain that rounds the wrong way) silently skews every
// downstream figure. Under --paranoid the simulators balance their
// ledgers at each sampling instant and abort with a diagnostic
// InvariantError naming the first violated ledger entry the moment the
// books stop balancing — at the first observable instant after the bug,
// not minutes later in a garbled summary.
//
// Costs one pass over O(#entries) integers per sample; off by default.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace basrpt::fault {

/// Thrown when a conservation ledger fails to balance. Derives from
/// SimulationError: an imbalance is a simulator bug, never bad input.
class InvariantError : public SimulationError {
 public:
  explicit InvariantError(const std::string& what) : SimulationError(what) {}
};

/// One conservation equation: sum(credits) must equal sum(debits).
/// Entries are (label, value) so the failure message can point at the
/// exact term, e.g. credits {"bytes_arrived": N} vs debits
/// {"delivered": a, "backlog": b}.
struct Ledger {
  std::string name;  // e.g. "bytes", "flows"
  std::vector<std::pair<std::string, std::int64_t>> credits;
  std::vector<std::pair<std::string, std::int64_t>> debits;
};

class InvariantAuditor {
 public:
  /// `owner` names the simulator in diagnostics ("flowsim", ...).
  explicit InvariantAuditor(std::string owner) : owner_(std::move(owner)) {}

  /// Balances every ledger in order; throws InvariantError rendering the
  /// first one that fails (all entries, both sums, and the delta).
  /// `when` is the owner's clock (seconds or slots) for the message.
  void audit(double when, const std::vector<Ledger>& ledgers);

  std::int64_t audits() const { return audits_; }

 private:
  std::string owner_;
  std::int64_t audits_ = 0;
};

}  // namespace basrpt::fault
