#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace basrpt::fault {

namespace {

constexpr const char* kHeader = "basrpt-faults-v1";
constexpr const char* kContext = "fault plan";

/// Parses a full-line-consumed finite double; rejects trailing garbage,
/// overflow, and NaN/inf — std::stod alone accepts "1.5x" and throws
/// std::out_of_range (not a logic_error) on "1e999".
double parse_real(const std::string& cell, std::size_t line,
                  const char* what) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(cell, &pos);
    if (pos != cell.size() || !std::isfinite(value)) {
      throw ParseError(kContext, line,
                       std::string(what) + " is not a number: '" + cell + "'");
    }
    return value;
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception&) {
    throw ParseError(kContext, line,
                     std::string(what) + " is not a number: '" + cell + "'");
  }
}

std::int64_t parse_int(const std::string& cell, std::size_t line,
                       const char* what) {
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(cell, &pos);
    if (pos != cell.size()) {
      throw ParseError(kContext, line,
                       std::string(what) + " is not an integer: '" + cell +
                           "'");
    }
    return value;
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception&) {
    throw ParseError(kContext, line,
                     std::string(what) + " is not an integer: '" + cell +
                         "'");
  }
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) {
    fields.push_back(cell);
  }
  if (!line.empty() && line.back() == ',') {
    fields.emplace_back();  // trailing comma == trailing empty field
  }
  return fields;
}

void require_fields(const std::vector<std::string>& fields,
                    std::size_t expected, std::size_t line,
                    const char* kind) {
  if (fields.size() != expected) {
    throw ParseError(kContext, line,
                     std::string(kind) + " expects " +
                         std::to_string(expected - 1) + " arguments, got " +
                         std::to_string(fields.size() - 1));
  }
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDegrade:
      return "degrade";
    case FaultKind::kBlackout:
      return "blackout";
    case FaultKind::kDropDecisions:
      return "drop-decisions";
    case FaultKind::kRearrival:
      return "rearrive";
    case FaultKind::kLinkReset:
      return "link-reset";
    case FaultKind::kLinkCorrupt:
      return "link-corrupt";
    case FaultKind::kLinkStall:
      return "link-stall";
    case FaultKind::kLinkDup:
      return "link-dup";
  }
  return "?";
}

bool is_link_fault(FaultKind kind) {
  return kind == FaultKind::kLinkReset || kind == FaultKind::kLinkCorrupt ||
         kind == FaultKind::kLinkStall || kind == FaultKind::kLinkDup;
}

void FaultPlan::add(const FaultEvent& event) {
  BASRPT_REQUIRE(std::isfinite(event.start) && event.start >= 0.0,
                 "fault event start must be finite and non-negative");
  switch (event.kind) {
    case FaultKind::kDegrade:
      BASRPT_REQUIRE(event.port >= 0, "degrade needs a port");
      BASRPT_REQUIRE(event.factor > 0.0 && event.factor < 1.0,
                     "degrade factor must be in (0, 1); use blackout for 0");
      BASRPT_REQUIRE(std::isfinite(event.duration) && event.duration > 0.0,
                     "degrade duration must be positive");
      break;
    case FaultKind::kBlackout:
      BASRPT_REQUIRE(event.port >= 0, "blackout needs a port");
      BASRPT_REQUIRE(std::isfinite(event.duration) && event.duration > 0.0,
                     "blackout duration must be positive");
      break;
    case FaultKind::kDropDecisions:
      BASRPT_REQUIRE(std::isfinite(event.duration) && event.duration > 0.0,
                     "drop-decisions duration must be positive");
      break;
    case FaultKind::kRearrival:
      BASRPT_REQUIRE(event.count > 0, "rearrive needs a positive count");
      break;
    case FaultKind::kLinkReset:
      break;  // start (byte offset) checked above
    case FaultKind::kLinkCorrupt:
      BASRPT_REQUIRE(event.port == 0 || event.port == 1,
                     "link-corrupt direction must be 0 (c2s) or 1 (s2c)");
      BASRPT_REQUIRE(event.count > 0,
                     "link-corrupt needs a positive byte count");
      break;
    case FaultKind::kLinkStall:
      BASRPT_REQUIRE(event.port == 0 || event.port == 1,
                     "link-stall direction must be 0 (c2s) or 1 (s2c)");
      BASRPT_REQUIRE(std::isfinite(event.duration) && event.duration > 0.0,
                     "link-stall duration must be positive");
      break;
    case FaultKind::kLinkDup:
      BASRPT_REQUIRE(event.count > 0,
                     "link-dup needs a positive repeat count");
      break;
  }
  // Insertion sort keeps events() ordered while preserving the relative
  // order of equal-time events (plans are small; simplicity wins).
  auto it = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.start < b.start; });
  events_.insert(it, event);
}

std::int32_t FaultPlan::max_port() const {
  std::int32_t max = -1;
  for (const FaultEvent& e : events_) {
    if (is_link_fault(e.kind)) {
      continue;  // port is a direction, not a fabric port
    }
    max = std::max(max, e.port);
  }
  return max;
}

double FaultPlan::span() const {
  double end = 0.0;
  for (const FaultEvent& e : events_) {
    if (is_link_fault(e.kind)) {
      continue;  // start is a byte offset, not a time
    }
    end = std::max(end, e.start + (e.kind == FaultKind::kRearrival
                                       ? 0.0
                                       : e.duration));
  }
  return end;
}

FaultPlan FaultPlan::parse(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw ParseError(kContext, 1, std::string("expected '") + kHeader + "'");
  }
  if (!line.empty() && line.back() == '\r') {
    line.pop_back();  // tolerate CRLF
  }
  if (line != kHeader) {
    throw ParseError(kContext, 1, std::string("expected '") + kHeader + "'");
  }
  FaultPlan plan;
  std::size_t line_no = 1;
  bool saw_newline_at_end = !in.eof();
  while (std::getline(in, line)) {
    ++line_no;
    // A file whose final line lacks the trailing newline was truncated
    // mid-write (the writer always terminates lines); reject it rather
    // than silently acting on a partial event.
    saw_newline_at_end = !in.eof();
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();  // tolerate CRLF
    }
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const auto fields = split_fields(line);
    const std::string& kind = fields[0];
    FaultEvent event;
    if (kind == "degrade") {
      require_fields(fields, 5, line_no, "degrade");
      event.kind = FaultKind::kDegrade;
      event.start = parse_real(fields[1], line_no, "start");
      event.duration = parse_real(fields[2], line_no, "duration");
      event.port =
          static_cast<std::int32_t>(parse_int(fields[3], line_no, "port"));
      event.factor = parse_real(fields[4], line_no, "factor");
    } else if (kind == "blackout") {
      require_fields(fields, 4, line_no, "blackout");
      event.kind = FaultKind::kBlackout;
      event.start = parse_real(fields[1], line_no, "start");
      event.duration = parse_real(fields[2], line_no, "duration");
      event.port =
          static_cast<std::int32_t>(parse_int(fields[3], line_no, "port"));
    } else if (kind == "drop-decisions") {
      require_fields(fields, 3, line_no, "drop-decisions");
      event.kind = FaultKind::kDropDecisions;
      event.start = parse_real(fields[1], line_no, "start");
      event.duration = parse_real(fields[2], line_no, "duration");
    } else if (kind == "rearrive") {
      require_fields(fields, 3, line_no, "rearrive");
      event.kind = FaultKind::kRearrival;
      event.start = parse_real(fields[1], line_no, "start");
      event.count = parse_int(fields[2], line_no, "count");
    } else if (kind == "link-reset") {
      require_fields(fields, 2, line_no, "link-reset");
      event.kind = FaultKind::kLinkReset;
      event.start = parse_real(fields[1], line_no, "offset");
    } else if (kind == "link-corrupt") {
      require_fields(fields, 4, line_no, "link-corrupt");
      event.kind = FaultKind::kLinkCorrupt;
      event.port = static_cast<std::int32_t>(
          parse_int(fields[1], line_no, "direction"));
      event.start = parse_real(fields[2], line_no, "offset");
      event.count = parse_int(fields[3], line_no, "count");
    } else if (kind == "link-stall") {
      require_fields(fields, 4, line_no, "link-stall");
      event.kind = FaultKind::kLinkStall;
      event.port = static_cast<std::int32_t>(
          parse_int(fields[1], line_no, "direction"));
      event.start = parse_real(fields[2], line_no, "offset");
      event.duration = parse_real(fields[3], line_no, "seconds");
    } else if (kind == "link-dup") {
      require_fields(fields, 3, line_no, "link-dup");
      event.kind = FaultKind::kLinkDup;
      event.start = parse_real(fields[1], line_no, "offset");
      event.count = parse_int(fields[2], line_no, "count");
    } else {
      throw ParseError(kContext, line_no,
                       "unknown fault kind '" + kind + "'");
    }
    try {
      plan.add(event);
    } catch (const ConfigError& e) {
      throw ParseError(kContext, line_no, e.what());
    }
  }
  if (in.bad()) {
    throw ConfigError("fault plan: I/O error while reading");
  }
  if (!saw_newline_at_end) {
    throw ParseError(kContext, line_no,
                     "file truncated (no trailing newline)");
  }
  return plan;
}

FaultPlan FaultPlan::from_file(const std::string& path) {
  std::ifstream in(path);
  BASRPT_REQUIRE(in.good(), "cannot open fault plan: " + path);
  return parse(in);
}

void FaultPlan::write(std::ostream& out) const {
  out << kHeader << "\n# kind,start,duration,port,factor / count\n";
  char buf[160];
  for (const FaultEvent& e : events_) {
    switch (e.kind) {
      case FaultKind::kDegrade:
        std::snprintf(buf, sizeof(buf), "degrade,%.17g,%.17g,%d,%.17g\n",
                      e.start, e.duration, e.port, e.factor);
        break;
      case FaultKind::kBlackout:
        std::snprintf(buf, sizeof(buf), "blackout,%.17g,%.17g,%d\n", e.start,
                      e.duration, e.port);
        break;
      case FaultKind::kDropDecisions:
        std::snprintf(buf, sizeof(buf), "drop-decisions,%.17g,%.17g\n",
                      e.start, e.duration);
        break;
      case FaultKind::kRearrival:
        std::snprintf(buf, sizeof(buf), "rearrive,%.17g,%" PRId64 "\n",
                      e.start, e.count);
        break;
      case FaultKind::kLinkReset:
        std::snprintf(buf, sizeof(buf), "link-reset,%.17g\n", e.start);
        break;
      case FaultKind::kLinkCorrupt:
        std::snprintf(buf, sizeof(buf), "link-corrupt,%d,%.17g,%" PRId64
                      "\n", e.port, e.start, e.count);
        break;
      case FaultKind::kLinkStall:
        std::snprintf(buf, sizeof(buf), "link-stall,%d,%.17g,%.17g\n",
                      e.port, e.start, e.duration);
        break;
      case FaultKind::kLinkDup:
        std::snprintf(buf, sizeof(buf), "link-dup,%.17g,%" PRId64 "\n",
                      e.start, e.count);
        break;
    }
    out << buf;
  }
}

void FaultPlan::write_file(const std::string& path) const {
  std::ofstream out(path);
  BASRPT_REQUIRE(out.good(), "cannot open fault plan for writing: " + path);
  write(out);
  BASRPT_REQUIRE(out.good(), "error while writing fault plan: " + path);
}

FaultPlan FaultPlan::randomized(const RandomFaultSpec& spec,
                                std::uint64_t seed) {
  BASRPT_REQUIRE(spec.ports >= 1, "random fault spec needs ports");
  BASRPT_REQUIRE(spec.horizon > 0.0, "random fault spec needs a horizon");
  Rng rng(seed ^ 0xFA017ull);
  FaultPlan plan;
  // Events land in the middle of the run so both the healthy warm-up and
  // the post-recovery drain are observable.
  const double lo = 0.05 * spec.horizon;
  const double hi = 0.85 * spec.horizon;
  const double mean_dur =
      std::max(1e-9, spec.mean_duration_frac * spec.horizon);
  auto count_of = [&rng](double expected) {
    // Deterministic Poisson-ish count: floor + Bernoulli on the
    // fractional part keeps the expectation without a full sampler.
    const double floor_part = std::floor(expected);
    std::int64_t n = static_cast<std::int64_t>(floor_part);
    if (rng.bernoulli(expected - floor_part)) {
      ++n;
    }
    return n;
  };
  auto duration = [&]() {
    const double d = rng.exponential(1.0 / mean_dur);
    return std::min(std::max(d, 0.01 * mean_dur), spec.horizon);
  };

  const std::int64_t degrades = count_of(spec.degrades);
  for (std::int64_t k = 0; k < degrades; ++k) {
    FaultEvent e;
    e.kind = FaultKind::kDegrade;
    e.start = rng.uniform(lo, hi);
    e.duration = duration();
    e.port = static_cast<std::int32_t>(rng.uniform_int(0, spec.ports - 1));
    e.factor = rng.uniform(spec.min_factor, 0.9);
    plan.add(e);
  }
  const std::int64_t blackouts = count_of(spec.blackouts);
  for (std::int64_t k = 0; k < blackouts; ++k) {
    FaultEvent e;
    e.kind = FaultKind::kBlackout;
    e.start = rng.uniform(lo, hi);
    e.duration = 0.5 * duration();
    e.port = static_cast<std::int32_t>(rng.uniform_int(0, spec.ports - 1));
    plan.add(e);
  }
  const std::int64_t drops = count_of(spec.decision_drops);
  for (std::int64_t k = 0; k < drops; ++k) {
    FaultEvent e;
    e.kind = FaultKind::kDropDecisions;
    e.start = rng.uniform(lo, hi);
    e.duration = 0.5 * duration();
    plan.add(e);
  }
  const std::int64_t bursts = count_of(spec.rearrivals);
  for (std::int64_t k = 0; k < bursts; ++k) {
    FaultEvent e;
    e.kind = FaultKind::kRearrival;
    e.start = rng.uniform(lo, hi);
    e.count = spec.rearrival_count;
    plan.add(e);
  }
  return plan;
}

bool operator==(const FaultEvent& a, const FaultEvent& b) {
  return a.kind == b.kind && a.start == b.start && a.duration == b.duration &&
         a.port == b.port && a.factor == b.factor && a.count == b.count;
}

bool operator==(const FaultPlan& a, const FaultPlan& b) {
  return a.events() == b.events();
}

}  // namespace basrpt::fault
