// Replays a FaultPlan against a running simulator.
//
// The injector expands the plan into a sorted list of *transitions*
// (window opens, window closes, instant bursts) and applies them in
// order as the owner advances simulated time. It is deliberately
// simulator-agnostic: the event-driven simulators schedule a calendar
// event at next_transition_after() and call advance_to() from it; the
// slotted simulator calls advance_to() once per slot. Hooks only mutate
// simulator state — the owner decides when to re-run the scheduler, so
// one fault instant triggers exactly one reschedule.
//
// Overlap semantics: a port's effective capacity factor is the minimum
// over its active degrade/blackout windows (a port both degraded and
// dark is dark); decision suppression windows nest by depth count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault_plan.hpp"

namespace basrpt::fault {

/// Counters surfaced in results and (via the obs registry) in exported
/// metrics. Transition counts come from the injector; the simulator owns
/// the counters only it can observe.
struct FaultStats {
  std::int64_t transitions = 0;          // applied plan transitions
  std::int64_t decisions_suppressed = 0; // reschedules lost to control loss
  std::int64_t flows_requeued = 0;       // flows reborn by rearrival bursts
  std::int64_t candidates_masked = 0;    // candidates hidden from decisions
};

struct FaultHooks {
  /// Port `port` now runs at `factor` of nominal capacity (0 = dark).
  /// Called only when the effective factor actually changes.
  std::function<void(std::int32_t port, double factor)> on_port_factor;
  /// A rearrival burst fired: re-admit up to `count` parked flows.
  std::function<void(std::int64_t count)> on_rearrival;
};

class FaultInjector {
 public:
  /// `ports` bounds the fabric; the plan must not reference a port >= it.
  /// The plan must outlive the injector.
  FaultInjector(const FaultPlan& plan, std::int32_t ports, FaultHooks hooks);

  /// Time of the first unapplied transition strictly after `t`, or
  /// +infinity when the plan is exhausted.
  double next_transition_after(double t) const;

  /// Applies every transition with time <= `t`, in order, firing hooks.
  void advance_to(double t);

  bool done() const { return cursor_ >= transitions_.size(); }

  /// Effective capacity factor of `port` right now: 1 when healthy, 0
  /// during a blackout, the minimum active degrade factor otherwise.
  double port_factor(std::int32_t port) const;
  bool port_usable(std::int32_t port) const {
    return port_factor(port) > 0.0;
  }
  /// True while at least one drop-decisions window is open.
  bool decisions_suppressed() const { return suppress_depth_ > 0; }

  /// True while the plan legitimately halts forward progress: a port is
  /// fully dark (blackout) or decisions are being dropped. The watchdog
  /// consults this to avoid declaring a scripted outage a stall.
  bool in_disruption() const;

  /// Number of transitions applied so far (checkpoint cursor).
  std::size_t cursor() const { return cursor_; }

  /// Rebuilds the window bookkeeping as if the first `cursor` transitions
  /// had been applied — WITHOUT firing hooks or bumping stats (the owner
  /// restores its own derived state and counters from the checkpoint).
  /// Only valid on a freshly constructed injector.
  void restore_cursor(std::size_t cursor);

  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

 private:
  struct Transition {
    double time;
    std::size_t event;  // index into plan.events()
    bool opens;         // window open (or instant burst) vs close
  };

  void apply(const Transition& t);

  const FaultPlan& plan_;
  std::int32_t ports_;
  FaultHooks hooks_;
  std::vector<Transition> transitions_;  // sorted by (time, event, close<open)
  std::size_t cursor_ = 0;
  int suppress_depth_ = 0;
  /// Active capacity windows per port: factors of open degrade windows
  /// (0.0 for blackouts). Effective factor = min, 1.0 when empty.
  std::vector<std::vector<double>> active_factors_;
  FaultStats stats_;
};

}  // namespace basrpt::fault
