#include "fault/watchdog.hpp"

#include <sstream>

#include "common/log.hpp"

namespace basrpt::fault {

void Watchdog::configure(const WatchdogConfig& config) {
  BASRPT_REQUIRE(config.stall_wall_sec >= 0.0,
                 "watchdog wall threshold cannot be negative");
  config_ = config;
  ticks_ = 0;
  checks_ = 0;
  frozen_ = false;
  frozen_events_ = 0;
  frozen_wall_sec_ = 0.0;
}

double Watchdog::read_clock() const {
  if (clock_) {
    return clock_();
  }
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Watchdog::check(double sim_time_sec, std::uint64_t events) {
  ++checks_;
  if (suppress_when_ && suppress_when_()) {
    // A scripted blackout / control-loss window is open: frozen sim time
    // is the fault plan doing its job, not a wedge. Disarm so the full
    // deadline restarts after the window closes.
    ++suppressed_checks_;
    frozen_ = false;
    frozen_events_ = 0;
    frozen_wall_sec_ = 0.0;
    return;
  }
  if (!frozen_ || sim_time_sec > frozen_sim_time_) {
    // Progress (or first check): (re)arm at the current instant. The
    // wall clock is only read once per freeze, not per check.
    frozen_ = true;
    frozen_sim_time_ = sim_time_sec;
    events_at_freeze_ = events;
    wall_at_freeze_ = -1.0;  // lazily stamped on the next frozen check
    frozen_events_ = 0;
    frozen_wall_sec_ = 0.0;
    return;
  }
  frozen_events_ = events - events_at_freeze_;
  if (config_.stall_events > 0 && frozen_events_ >= config_.stall_events) {
    stall(sim_time_sec, events,
          std::to_string(frozen_events_) + " events at one sim instant");
  }
  if (config_.stall_wall_sec > 0.0) {
    const double now = read_clock();
    if (wall_at_freeze_ < 0.0) {
      wall_at_freeze_ = now;
    }
    frozen_wall_sec_ = now - wall_at_freeze_;
    if (frozen_wall_sec_ >= config_.stall_wall_sec) {
      stall(sim_time_sec, events,
            "sim time frozen for " + std::to_string(frozen_wall_sec_) +
                " wall seconds");
    }
  }
}

void Watchdog::stall(double sim_time_sec, std::uint64_t events,
                     const std::string& why) {
  ++stalls_detected_;
  std::ostringstream out;
  out << "watchdog: no-progress stall at sim t=" << sim_time_sec << "s ("
      << why << "; " << events << " events executed, " << checks_
      << " checks)";
  if (diagnostics_) {
    out << "\n" << diagnostics_();
  }
  const std::string message = out.str();
  BASRPT_LOG(kError) << message;
  throw StallError(message);
}

}  // namespace basrpt::fault
