#include "fault/watchdog.hpp"

#include <sstream>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace basrpt::fault {

void Watchdog::configure(const WatchdogConfig& config) {
  BASRPT_REQUIRE(config.stall_wall_sec >= 0.0,
                 "watchdog wall threshold cannot be negative");
  config_ = config;
  ticks_ = 0;
  checks_ = 0;
  frozen_ = false;
  frozen_events_ = 0;
  frozen_wall_sec_ = 0.0;
}

double Watchdog::read_clock() const {
  if (clock_) {
    return clock_();
  }
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Watchdog::check(double sim_time_sec, std::uint64_t events) {
  ++checks_;
  if (suppress_when_ && suppress_when_()) {
    // A scripted blackout / control-loss window is open: frozen sim time
    // is the fault plan doing its job, not a wedge. Disarm so the full
    // deadline restarts after the window closes.
    ++suppressed_checks_;
    frozen_ = false;
    frozen_events_ = 0;
    frozen_wall_sec_ = 0.0;
    return;
  }
  if (!frozen_ || sim_time_sec > frozen_sim_time_) {
    // Progress (or first check): (re)arm at the current instant. The
    // wall clock is only read once per freeze, not per check.
    frozen_ = true;
    frozen_sim_time_ = sim_time_sec;
    events_at_freeze_ = events;
    wall_at_freeze_ = -1.0;  // lazily stamped on the next frozen check
    frozen_events_ = 0;
    frozen_wall_sec_ = 0.0;
    return;
  }
  frozen_events_ = events - events_at_freeze_;
  if (config_.stall_events > 0 && frozen_events_ >= config_.stall_events) {
    stall(sim_time_sec, events,
          std::to_string(frozen_events_) + " events at one sim instant");
  }
  if (config_.stall_wall_sec > 0.0) {
    const double now = read_clock();
    if (wall_at_freeze_ < 0.0) {
      wall_at_freeze_ = now;
    }
    frozen_wall_sec_ = now - wall_at_freeze_;
    if (frozen_wall_sec_ >= config_.stall_wall_sec) {
      stall(sim_time_sec, events,
            "sim time frozen for " + std::to_string(frozen_wall_sec_) +
                " wall seconds");
    }
  }
}

void Watchdog::stall(double sim_time_sec, std::uint64_t events,
                     const std::string& why) {
  ++stalls_detected_;
  std::ostringstream out;
  out << "watchdog: no-progress stall at sim t=" << sim_time_sec << "s ("
      << why << "; " << events << " events executed, " << checks_
      << " checks)";
  if (diagnostics_) {
    out << "\n" << diagnostics_();
  }
  const std::string message = out.str();
  // Capture before throwing: StallError unwinds the owner (and usually
  // the simulation objects the diagnostics describe), but the partial
  // metrics flush on the interrupted path still wants the counters and
  // the dump. The owner label is unknown here, so the stall path exports
  // under the generic "stall" owner; the owner's run-end export (never
  // reached on this path) would have used its own name.
  last_stall_diagnostics_ = message;
  if (obs::enabled()) {
    export_metrics(obs::Registry::active(), "stall");
  }
  BASRPT_LOG(kError) << message;
  throw StallError(message);
}

void Watchdog::export_metrics(obs::Registry& registry,
                              const std::string& owner) const {
  const std::string prefix = "watchdog." + owner + ".";
  registry.counter(prefix + "checks").add(static_cast<std::int64_t>(checks_));
  registry.counter(prefix + "suppressed_checks")
      .add(static_cast<std::int64_t>(suppressed_checks_));
  registry.counter(prefix + "stalls_detected")
      .add(static_cast<std::int64_t>(stalls_detected_));
  registry.gauge(prefix + "frozen_events")
      .set(static_cast<double>(frozen_events_));
  registry.gauge(prefix + "frozen_wall_sec").set(frozen_wall_sec_);
  if (!last_stall_diagnostics_.empty()) {
    registry.set_note(prefix + "diagnostics", last_stall_diagnostics_);
  }
}

}  // namespace basrpt::fault
