#include "fault/chaos_link.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "common/assert.hpp"

namespace basrpt::fault {

namespace {

/// Read-ahead cap per direction; small so op boundaries are honored
/// promptly and backpressure propagates through the proxy.
constexpr std::size_t kBufCap = 16 * 1024;

}  // namespace

ChaosLink::ChaosLink(const ChaosLinkConfig& config) : config_(config) {
  listener_ = listen_endpoint(config_.listen);
  if (config_.plan != nullptr) {
    for (const FaultEvent& e : config_.plan->events()) {
      if (!is_link_fault(e.kind)) {
        continue;
      }
      Op op;
      op.kind = e.kind;
      op.offset = static_cast<std::uint64_t>(e.start);
      op.count = e.count;
      op.seconds = e.duration;
      // kLinkReset triggers on the c2s offset; kLinkDup is s2c-only
      // (duplicating feed records upstream would legally re-arrive
      // flows and change the run — the protocol prevents c2s dupes via
      // the hello cursor instead).
      const bool c2s = e.kind == FaultKind::kLinkReset ||
                       (e.kind != FaultKind::kLinkDup && e.port == 0);
      (c2s ? c2s_ops_ : s2c_ops_).push_back(op);
    }
    // Plan events are sorted by `start`, which interleaves offsets with
    // simulator times; re-sort each direction by offset to be safe.
    auto by_offset = [](const Op& a, const Op& b) {
      return a.offset < b.offset;
    };
    std::stable_sort(c2s_ops_.begin(), c2s_ops_.end(), by_offset);
    std::stable_sort(s2c_ops_.begin(), s2c_ops_.end(), by_offset);
  }
}

ChaosLink::~ChaosLink() { stop(); }

void ChaosLink::start() {
  BASRPT_REQUIRE(!thread_.joinable(), "chaos link already started");
  thread_ = std::thread([this] { run(); });
}

void ChaosLink::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  wake_.notify();
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listener_.valid()) {
    listener_.reset();
    unlink_endpoint(config_.listen);
  }
}

bool ChaosLink::apply_ops(bool c2s) {
  auto& ops = c2s ? c2s_ops_ : s2c_ops_;
  auto& next = c2s ? c2s_next_ : s2c_next_;
  const std::uint64_t off = c2s ? c2s_off_ : s2c_off_;
  while (next < ops.size() && ops[next].offset <= off) {
    const Op op = ops[next];
    ++next;
    switch (op.kind) {
      case FaultKind::kLinkReset:
        ++stats_.resets;
        return false;  // drop the link; the client dials back in
      case FaultKind::kLinkCorrupt:
        corrupt_end_[c2s ? 0 : 1] = off + static_cast<std::uint64_t>(
                                              op.count);
        break;
      case FaultKind::kLinkStall:
        ++stats_.stalls;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(op.seconds));
        break;
      case FaultKind::kLinkDup:
        dup_pending_ += op.count;
        break;
      default:
        BASRPT_ASSERT(false, "non-link op in chaos queue");
    }
  }
  return true;
}

bool ChaosLink::pump_direction(bool c2s, int from_fd, int to_fd) {
  const int dir = c2s ? 0 : 1;
  std::string& out = out_buf_[dir];
  std::uint64_t& off = c2s ? c2s_off_ : s2c_off_;

  // Drain what's already transformed.
  while (!out.empty()) {
    const long put = write_some(to_fd, out.data(), out.size());
    if (put == -EAGAIN || put == -EWOULDBLOCK) {
      break;
    }
    if (put <= 0) {
      return false;  // peer gone mid-write: drop the link
    }
    out.erase(0, static_cast<std::size_t>(put));
  }
  if (out.size() >= kBufCap) {
    return true;  // backpressure: stop reading until the peer drains
  }

  char chunk[4096];
  const long got = read_some(from_fd, chunk, sizeof(chunk));
  if (got == -EAGAIN || got == -EWOULDBLOCK) {
    return true;
  }
  if (got < 0) {
    return false;
  }
  if (got == 0) {
    return false;  // EOF: the caller flushes pending s2c bytes and drops
  }

  // Transform [off, off + got), stopping at every op boundary.
  long pos = 0;
  while (pos < got) {
    if (!apply_ops(c2s)) {
      return false;  // reset fired
    }
    auto& ops = c2s ? c2s_ops_ : s2c_ops_;
    auto& next = c2s ? c2s_next_ : s2c_next_;
    std::uint64_t limit = static_cast<std::uint64_t>(got - pos);
    if (next < ops.size()) {
      limit = std::min(limit, ops[next].offset - off);
    }
    for (std::uint64_t k = 0; k < limit; ++k) {
      char b = chunk[pos + static_cast<long>(k)];
      if (off + k < corrupt_end_[dir]) {
        b = static_cast<char>(b ^ 0x20);
        ++stats_.corrupted_bytes;
      }
      out.push_back(b);
      if (!c2s) {
        s2c_partial_.push_back(b);
        if (b == '\n') {
          s2c_last_line_ = s2c_partial_;
          s2c_partial_.clear();
          if (dup_pending_ > 0) {
            for (std::int64_t d = 0; d < dup_pending_; ++d) {
              out.append(s2c_last_line_);
            }
            stats_.dup_frames += dup_pending_;
            dup_pending_ = 0;
          }
        }
      }
    }
    off += limit;
    pos += static_cast<long>(limit);
    (c2s ? stats_.c2s_bytes : stats_.s2c_bytes) +=
        static_cast<std::int64_t>(limit);
  }
  return true;
}

void ChaosLink::run() {
  UniqueFd client, upstream;
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (!client.valid()) {
      struct pollfd fds[2] = {{listener_.get(), POLLIN, 0},
                              {wake_.read_fd(), POLLIN, 0}};
      poll_fds(fds, 2, 200);
      wake_.drain();
      if (stopping_.load(std::memory_order_relaxed)) {
        break;
      }
      if ((fds[0].revents & POLLIN) == 0) {
        continue;
      }
      client = accept_on(listener_.get());
      if (!client.valid()) {
        continue;
      }
      upstream = connect_endpoint(config_.upstream);
      if (!upstream.valid()) {
        // Daemon down (e.g. the SIGKILL window). Bounce the client; its
        // backoff absorbs the outage.
        client.reset();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      set_nonblocking(client.get());
      set_nonblocking(upstream.get());
      ++stats_.connections;
      out_buf_[0].clear();
      out_buf_[1].clear();
      // The server opens a fresh decisions stream on reconnect; a
      // half-forwarded old frame must not bleed into its line tracking.
      s2c_partial_.clear();
      continue;
    }

    struct pollfd fds[3] = {{client.get(), 0, 0},
                            {upstream.get(), 0, 0},
                            {wake_.read_fd(), POLLIN, 0}};
    if (out_buf_[0].size() < kBufCap) {
      fds[0].events |= POLLIN;
    }
    if (!out_buf_[1].empty()) {
      fds[0].events |= POLLOUT;
    }
    if (out_buf_[1].size() < kBufCap) {
      fds[1].events |= POLLIN;
    }
    if (!out_buf_[0].empty()) {
      fds[1].events |= POLLOUT;
    }
    poll_fds(fds, 3, 200);
    wake_.drain();
    if (stopping_.load(std::memory_order_relaxed)) {
      break;
    }
    const bool c2s_ok = pump_direction(true, client.get(), upstream.get());
    const bool s2c_ok =
        c2s_ok && pump_direction(false, upstream.get(), client.get());
    if (!c2s_ok || !s2c_ok) {
      // Link drop (scripted reset, EOF, or error). Flush any transformed
      // server→client bytes first: the `complete` frame rides just ahead
      // of the server's close and the client deserves to see it.
      if (!out_buf_[1].empty() && client.valid()) {
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(2);
        while (!out_buf_[1].empty() &&
               std::chrono::steady_clock::now() < deadline) {
          const long put = write_some(client.get(), out_buf_[1].data(),
                                      out_buf_[1].size());
          if (put == -EAGAIN || put == -EWOULDBLOCK) {
            struct pollfd flush_fd = {client.get(), POLLOUT, 0};
            poll_fds(&flush_fd, 1, 100);
            continue;
          }
          if (put <= 0) {
            break;
          }
          out_buf_[1].erase(0, static_cast<std::size_t>(put));
        }
      }
      client.reset();
      upstream.reset();
    }
  }
}

}  // namespace basrpt::fault
