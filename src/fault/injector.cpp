#include "fault/injector.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace basrpt::fault {

FaultInjector::FaultInjector(const FaultPlan& plan, std::int32_t ports,
                             FaultHooks hooks)
    : plan_(plan), ports_(ports), hooks_(std::move(hooks)) {
  BASRPT_REQUIRE(ports >= 1, "fault injector needs at least one port");
  BASRPT_REQUIRE(plan.max_port() < ports,
                 "fault plan references port " +
                     std::to_string(plan.max_port()) + " but the fabric has " +
                     std::to_string(ports) + " ports");
  active_factors_.resize(static_cast<std::size_t>(ports));

  const auto& events = plan.events();
  transitions_.reserve(2 * events.size());
  for (std::size_t k = 0; k < events.size(); ++k) {
    const FaultEvent& e = events[k];
    if (is_link_fault(e.kind)) {
      continue;  // transport chaos: fault::ChaosLink's domain, not ours
    }
    transitions_.push_back({e.start, k, /*opens=*/true});
    if (e.kind != FaultKind::kRearrival) {
      transitions_.push_back({e.start + e.duration, k, /*opens=*/false});
    }
  }
  // Closes sort before opens at the same instant so a window that ends
  // exactly when another begins never double-counts; ties then break by
  // plan order for determinism.
  std::sort(transitions_.begin(), transitions_.end(),
            [](const Transition& a, const Transition& b) {
              if (a.time != b.time) {
                return a.time < b.time;
              }
              if (a.opens != b.opens) {
                return !a.opens;
              }
              return a.event < b.event;
            });
}

double FaultInjector::next_transition_after(double t) const {
  for (std::size_t k = cursor_; k < transitions_.size(); ++k) {
    if (transitions_[k].time > t) {
      return transitions_[k].time;
    }
  }
  return std::numeric_limits<double>::infinity();
}

void FaultInjector::advance_to(double t) {
  while (cursor_ < transitions_.size() && transitions_[cursor_].time <= t) {
    apply(transitions_[cursor_]);
    ++cursor_;
  }
}

void FaultInjector::apply(const Transition& t) {
  const FaultEvent& e = plan_.events()[t.event];
  ++stats_.transitions;
  if (obs::enabled()) {
    obs::Registry::active().counter("fault.transitions").add(1);
  }
  switch (e.kind) {
    case FaultKind::kDegrade:
    case FaultKind::kBlackout: {
      const double factor = e.kind == FaultKind::kBlackout ? 0.0 : e.factor;
      auto& active = active_factors_[static_cast<std::size_t>(e.port)];
      const double before = port_factor(e.port);
      if (t.opens) {
        active.push_back(factor);
      } else {
        const auto it = std::find(active.begin(), active.end(), factor);
        BASRPT_ASSERT(it != active.end(),
                      "fault window closed without a matching open");
        active.erase(it);
      }
      const double after = port_factor(e.port);
      if (after != before && hooks_.on_port_factor) {
        hooks_.on_port_factor(e.port, after);
      }
      break;
    }
    case FaultKind::kDropDecisions:
      suppress_depth_ += t.opens ? 1 : -1;
      BASRPT_ASSERT(suppress_depth_ >= 0, "suppression depth underflow");
      break;
    case FaultKind::kRearrival:
      if (hooks_.on_rearrival) {
        hooks_.on_rearrival(e.count);
      }
      break;
    case FaultKind::kLinkReset:
    case FaultKind::kLinkCorrupt:
    case FaultKind::kLinkStall:
    case FaultKind::kLinkDup:
      BASRPT_ASSERT(false, "link fault reached the simulator injector");
      break;
  }
}

bool FaultInjector::in_disruption() const {
  if (suppress_depth_ > 0) {
    return true;
  }
  for (const auto& active : active_factors_) {
    for (const double f : active) {
      if (f == 0.0) {
        return true;  // blackout window open
      }
    }
  }
  return false;
}

void FaultInjector::restore_cursor(std::size_t cursor) {
  BASRPT_REQUIRE(cursor <= transitions_.size(),
                 "checkpoint fault cursor " + std::to_string(cursor) +
                     " exceeds " + std::to_string(transitions_.size()) +
                     " plan transitions");
  BASRPT_ASSERT(cursor_ == 0, "restore_cursor on a used injector");
  // Replay the window bookkeeping silently: no hooks (the owner restores
  // derived state — port masks, credits — from its own checkpoint
  // sections) and no stats (restored separately, so counters continue
  // from their checkpointed values instead of double-counting).
  for (std::size_t k = 0; k < cursor; ++k) {
    const Transition& t = transitions_[k];
    const FaultEvent& e = plan_.events()[t.event];
    switch (e.kind) {
      case FaultKind::kDegrade:
      case FaultKind::kBlackout: {
        const double factor = e.kind == FaultKind::kBlackout ? 0.0 : e.factor;
        auto& active = active_factors_[static_cast<std::size_t>(e.port)];
        if (t.opens) {
          active.push_back(factor);
        } else {
          const auto it = std::find(active.begin(), active.end(), factor);
          BASRPT_ASSERT(it != active.end(),
                        "fault window closed without a matching open");
          active.erase(it);
        }
        break;
      }
      case FaultKind::kDropDecisions:
        suppress_depth_ += t.opens ? 1 : -1;
        BASRPT_ASSERT(suppress_depth_ >= 0, "suppression depth underflow");
        break;
      case FaultKind::kRearrival:
        break;  // instant burst; no window state to rebuild
      case FaultKind::kLinkReset:
      case FaultKind::kLinkCorrupt:
      case FaultKind::kLinkStall:
      case FaultKind::kLinkDup:
        break;  // never in transitions_ (skipped at construction)
    }
  }
  cursor_ = cursor;
}

double FaultInjector::port_factor(std::int32_t port) const {
  BASRPT_ASSERT(port >= 0 && port < ports_, "port out of range");
  const auto& active = active_factors_[static_cast<std::size_t>(port)];
  double factor = 1.0;
  for (const double f : active) {
    factor = std::min(factor, f);
  }
  return factor;
}

}  // namespace basrpt::fault
