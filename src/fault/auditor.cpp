#include "fault/auditor.hpp"

#include <sstream>

#include "common/log.hpp"

namespace basrpt::fault {

void InvariantAuditor::audit(double when, const std::vector<Ledger>& ledgers) {
  ++audits_;
  for (const Ledger& ledger : ledgers) {
    std::int64_t credit = 0;
    std::int64_t debit = 0;
    for (const auto& [label, value] : ledger.credits) {
      credit += value;
    }
    for (const auto& [label, value] : ledger.debits) {
      debit += value;
    }
    if (credit == debit) {
      continue;
    }
    std::ostringstream out;
    out << owner_ << ": conservation violated in ledger '" << ledger.name
        << "' at t=" << when << ": ";
    const char* sep = "";
    for (const auto& [label, value] : ledger.credits) {
      out << sep << label << "=" << value;
      sep = " + ";
    }
    out << " != ";
    sep = "";
    for (const auto& [label, value] : ledger.debits) {
      out << sep << label << "=" << value;
      sep = " + ";
    }
    out << " (" << credit << " vs " << debit
        << ", delta=" << (credit - debit) << ")";
    const std::string message = out.str();
    BASRPT_LOG(kError) << message;
    throw InvariantError(message);
  }
}

}  // namespace basrpt::fault
