// Deterministic fault schedules for the simulators.
//
// Theorem 1 assumes a healthy fabric; real datacenters lose links,
// degrade ports, and drop control messages, and preemptive schedulers
// (PDQ, and the BASRPT family here) are sensitive to exactly that churn.
// A FaultPlan is a seeded, fully deterministic schedule of such events —
// scripted by hand, loaded from a versioned text file, or generated from
// a seed — that the simulators replay through fault::FaultInjector. The
// same (plan, workload seed) pair always produces the same event stream,
// so degraded runs stay A/B-comparable across schedulers.
//
// Time units are the owning simulator's: seconds for the event-driven
// simulators (flowsim, pktsim), slot indices for the slotted model.
//
// File format (diffable, fuzz-tested; see docs/FAULTS.md):
//
//   basrpt-faults-v1
//   # kind,args...
//   degrade,0.5,1.0,3,0.25     # start,duration,port,factor
//   blackout,1.0,0.2,7         # start,duration,port
//   drop-decisions,2.0,0.05    # start,duration
//   rearrive,2.5,64            # start,count
//
// The same format also scripts the *transport* chaos ops consumed by
// fault::ChaosLink (they are ignored by the simulator-side injector).
// Their trigger coordinate is a cumulative BYTE OFFSET in the proxied
// stream, not a time — which is what makes a chaos run deterministic
// regardless of host speed, write chunking, or pacing:
//
//   link-reset,4096            # c2s-offset: drop both sides of the link
//   link-corrupt,0,100,3       # dir(0=c2s,1=s2c),offset,bytes: XOR 0x20
//   link-stall,1,2048,0.05     # dir,offset,wall-seconds: pause the pipe
//   link-dup,512,2             # s2c-offset,count: re-deliver the last
//                              # fully-forwarded frame `count` extra times
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace basrpt::fault {

enum class FaultKind {
  /// Port's link runs at `factor` of nominal capacity for `duration`.
  kDegrade,
  /// Port fully dark for `duration`: no service in or out; schedulers
  /// must not select flows touching it.
  kBlackout,
  /// Scheduler decisions during the window are lost: the data plane
  /// keeps the stale serving set (control-message loss / delay — a
  /// delayed decision is a lost one until the window closes and the
  /// scheduler recomputes).
  kDropDecisions,
  /// Instant burst re-arrival: up to `count` parked (queued, unserved)
  /// flows are evicted and re-enter as fresh flows carrying their
  /// remaining bytes — senders timing out and restarting after losing
  /// their slot, the PDQ-style preemption pathology.
  kRearrival,
  // -- Transport chaos (fault::ChaosLink; byte-offset triggered). The
  //    simulator-side injector skips these; max_port()/span() exclude
  //    them (port holds a direction, start holds a byte offset).
  /// Reset both sides of the proxied link once `start` client→server
  /// bytes have been forwarded.
  kLinkReset,
  /// XOR 0x20 into `count` bytes of direction `port` (0 c2s, 1 s2c)
  /// starting at stream offset `start`.
  kLinkCorrupt,
  /// Pause forwarding direction `port` for `duration` wall-seconds once
  /// its stream offset reaches `start`.
  kLinkStall,
  /// Re-deliver the last fully-forwarded server→client frame `count`
  /// extra times once the s2c offset reaches `start` (frame-aligned, so
  /// it exercises the client's sequence dedupe, not its parser).
  kLinkDup,
};

/// True for the kLink* kinds consumed by fault::ChaosLink rather than
/// the simulator-side injector.
bool is_link_fault(FaultKind kind);

const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kDegrade;
  double start = 0.0;      // sim seconds (or slots)
  double duration = 0.0;   // window length; unused for kRearrival
  std::int32_t port = -1;  // kDegrade / kBlackout
  double factor = 1.0;     // kDegrade: residual capacity fraction (0, 1)
  std::int64_t count = 0;  // kRearrival: max flows to re-admit
};

/// Knobs for FaultPlan::randomized — expected event counts over the
/// horizon, drawn uniformly in time with seeded parameters.
struct RandomFaultSpec {
  std::int32_t ports = 0;  // fabric size; events pick ports < this
  double horizon = 0.0;    // events scheduled in [0.05, 0.85] * horizon
  double degrades = 4.0;   // expected kDegrade events
  double blackouts = 2.0;  // expected kBlackout events
  double decision_drops = 1.0;
  double rearrivals = 1.0;
  double mean_duration_frac = 0.08;  // mean window, fraction of horizon
  double min_factor = 0.2;           // degrade factor drawn in [min, 0.9]
  std::int64_t rearrival_count = 64;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Validates and appends one event. Events may be added in any order;
  /// events() is kept sorted by start (stable, so equal-time events keep
  /// insertion order).
  void add(const FaultEvent& event);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Largest port id any event references, or -1 if none. Simulators
  /// reject plans referencing ports outside their fabric.
  std::int32_t max_port() const;

  /// End of the last window (start for instant events).
  double span() const;

  // ---- Text round-trip (basrpt-faults-v1) -------------------------------

  /// Parses a plan; throws ParseError (line-numbered) on malformed
  /// input. A truncated file (final line without newline) is an error.
  static FaultPlan parse(std::istream& in);
  static FaultPlan from_file(const std::string& path);

  void write(std::ostream& out) const;
  void write_file(const std::string& path) const;

  /// Seeded random plan: deterministic in (spec, seed).
  static FaultPlan randomized(const RandomFaultSpec& spec,
                              std::uint64_t seed);

 private:
  std::vector<FaultEvent> events_;  // sorted by start, stable
};

bool operator==(const FaultEvent& a, const FaultEvent& b);
bool operator==(const FaultPlan& a, const FaultPlan& b);

}  // namespace basrpt::fault
