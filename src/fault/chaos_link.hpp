// ChaosLink: a deterministic chaos proxy for the serving transport.
//
// Sits between srv::Client and the basrptd listener, forwarding bytes in
// both directions while replaying the link-* ops of a fault plan:
// connection resets, mid-frame byte corruption, wall-clock stalls, and
// frame-aligned duplicate delivery. Every op triggers on a *cumulative
// byte offset* of the proxied stream (client→server or server→client),
// never on wall time — so a chaos run perturbs exactly the same byte
// positions regardless of host speed, write chunking, or pacing, and the
// end-to-end differential (chaos run + client retries vs clean run →
// identical final counters) is reproducible anywhere.
//
// Offsets accumulate across reconnects: after a scripted reset the
// client dials back through the proxy, and the next op picks up at the
// same global offset. One link is proxied at a time (the serving
// protocol is single-producer); an overlapping dial-in during connection
// teardown is refused and absorbed by the client's backoff.
//
// The proxy is transport-agnostic on purpose: it never parses frames
// (except to find '\n' boundaries for link-dup, which must inject a
// *parseable* duplicate to exercise the client's sequence dedupe rather
// than its parser) and lives in src/fault, below srv.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/io.hpp"
#include "common/net.hpp"
#include "fault/fault_plan.hpp"

namespace basrpt::fault {

struct ChaosLinkConfig {
  /// Where the client dials in.
  Endpoint listen;
  /// The real daemon endpoint.
  Endpoint upstream;
  /// Source of link-* ops (all other kinds are ignored). May be null
  /// for a transparent proxy.
  const FaultPlan* plan = nullptr;
};

struct ChaosLinkStats {
  std::int64_t connections = 0;
  std::int64_t resets = 0;
  std::int64_t corrupted_bytes = 0;
  std::int64_t stalls = 0;
  std::int64_t dup_frames = 0;
  std::int64_t c2s_bytes = 0;
  std::int64_t s2c_bytes = 0;
};

class ChaosLink {
 public:
  /// Binds the listen endpoint immediately (clients may dial in before
  /// start()): throws ConfigError if the endpoint is unusable.
  explicit ChaosLink(const ChaosLinkConfig& config);
  ~ChaosLink();

  ChaosLink(const ChaosLink&) = delete;
  ChaosLink& operator=(const ChaosLink&) = delete;

  /// Runs the proxy loop on a background thread.
  void start();
  /// Stops the loop, joins the thread, closes the listener.
  void stop();

  /// Safe after stop() (or from the run thread itself).
  const ChaosLinkStats& stats() const { return stats_; }

 private:
  struct Op {
    FaultKind kind = FaultKind::kLinkReset;
    std::uint64_t offset = 0;
    std::int64_t count = 0;
    double seconds = 0.0;
  };

  void run();
  /// Moves bytes one direction; returns false when the link must drop.
  bool pump_direction(bool c2s, int from_fd, int to_fd);
  /// Applies any op whose offset the direction has reached.
  bool apply_ops(bool c2s);

  ChaosLinkConfig config_;
  UniqueFd listener_;
  WakePipe wake_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;

  std::vector<Op> c2s_ops_, s2c_ops_;
  std::size_t c2s_next_ = 0, s2c_next_ = 0;
  std::uint64_t c2s_off_ = 0, s2c_off_ = 0;
  // Active corruption window per direction: [begin, end) stream offsets.
  std::uint64_t corrupt_end_[2] = {0, 0};
  // Pending duplicate delivery: inject after the next s2c '\n'.
  std::int64_t dup_pending_ = 0;
  std::string s2c_partial_;   // transformed s2c bytes since the last '\n'
  std::string s2c_last_line_; // most recent complete s2c frame
  std::string out_buf_[2];    // transformed, not yet written (0=c2s,1=s2c)
  ChaosLinkStats stats_;
};

}  // namespace basrpt::fault
