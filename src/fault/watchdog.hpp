// No-progress stall detection for long runs.
//
// A wedged simulation (a zero-delay event loop, a scheduler that stopped
// converging) used to be invisible: the heartbeat log just went quiet
// and the process hung until killed. The Watchdog rides the same cheap
// per-event tick as obs::Heartbeat and trips on two independent
// criteria, both of which reset the moment simulated time advances — a
// legitimately slow-but-progressing run never trips:
//
//   * event-count: more than `stall_events` events executed while
//     simulated time stayed frozen (zero-delay event storms);
//   * wall-clock: more than `stall_wall_sec` real seconds elapsed while
//     simulated time stayed frozen (livelock inside one instant).
//
// On a stall it logs and throws StallError carrying a diagnostic dump —
// the owner's snapshot (calendar depth, backlog, last decision) plus the
// watchdog's own counters — so the run dies loudly with state attached
// instead of hanging forever.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "common/assert.hpp"

namespace basrpt::obs {
class Registry;
}  // namespace basrpt::obs

namespace basrpt::fault {

struct WatchdogConfig {
  /// Real seconds of frozen sim-time before aborting; <= 0 disables.
  double stall_wall_sec = 0.0;
  /// Events executed at one sim instant before aborting; 0 disables.
  std::uint64_t stall_events = 0;

  bool enabled() const { return stall_wall_sec > 0.0 || stall_events > 0; }
};

/// Thrown when the watchdog declares a stall. Derives from
/// SimulationError: a stall is a broken run, not bad configuration.
class StallError : public SimulationError {
 public:
  explicit StallError(const std::string& what) : SimulationError(what) {}
};

class Watchdog {
 public:
  /// Ticks between full checks; a power of two so the modulo is a mask.
  static constexpr std::uint64_t kCheckEvery = 256;

  Watchdog() = default;

  void configure(const WatchdogConfig& config);
  bool active() const { return config_.enabled(); }

  /// Owner-provided snapshot appended to the stall diagnostic (backlog,
  /// calendar depth, last decision — whatever the owner can cheaply
  /// render). Called only when a stall fires.
  void set_diagnostics(std::function<std::string()> fn) {
    diagnostics_ = std::move(fn);
  }

  /// Test hook: replaces steady_clock with a fake monotone clock
  /// (seconds). Null restores the real clock.
  void set_clock(std::function<double()> clock) {
    clock_ = std::move(clock);
  }

  /// While the predicate returns true, stall detection is disarmed and
  /// the freeze baseline resets — a run frozen inside a scripted blackout
  /// or control-loss window (see FaultInjector::in_disruption) is waiting
  /// on the plan, not wedged. The full deadline starts over once the
  /// window closes. Counted in suppressed_checks().
  void set_suppress_when(std::function<bool()> predicate) {
    suppress_when_ = std::move(predicate);
  }

  /// Call once per event/slot. Cheap: one increment and mask compare
  /// between full checks. Throws StallError on a detected stall.
  void tick(double sim_time_sec, std::uint64_t events) {
    if (!active() || (++ticks_ & (kCheckEvery - 1)) != 0) {
      return;
    }
    check(sim_time_sec, events);
  }

  // ---- Counters (exposed in heartbeat status and tests) -----------------
  std::uint64_t checks() const { return checks_; }
  /// Events observed at the currently-frozen sim instant (0 if moving).
  std::uint64_t frozen_events() const { return frozen_events_; }
  /// Wall seconds the sim instant has been frozen (0 if moving).
  double frozen_wall_sec() const { return frozen_wall_sec_; }
  std::uint64_t stalls_detected() const { return stalls_detected_; }
  /// Checks skipped because a scripted disruption window was open.
  std::uint64_t suppressed_checks() const { return suppressed_checks_; }
  /// Full diagnostic text of the last stall (empty until one fires).
  /// Captured before StallError unwinds the owner, so post-mortem
  /// exporters still have it after the simulation objects are gone.
  const std::string& last_stall_diagnostics() const {
    return last_stall_diagnostics_;
  }

  /// Publishes the stall counters (and, after a stall, the owner
  /// diagnostics as a note) into `registry` under `watchdog.<owner>.*` —
  /// the metrics JSON/CSV export is the soak post-mortem artifact, and
  /// before this the counters only ever reached heartbeat stderr lines.
  /// Passive: reads counters only. The simulators call it at run end and
  /// the stall path calls it before StallError unwinds, so interrupted
  /// flushes carry the counters too.
  void export_metrics(obs::Registry& registry, const std::string& owner) const;

 private:
  void check(double sim_time_sec, std::uint64_t events);
  [[noreturn]] void stall(double sim_time_sec, std::uint64_t events,
                          const std::string& why);
  double read_clock() const;

  WatchdogConfig config_;
  std::function<std::string()> diagnostics_;
  std::function<double()> clock_;
  std::function<bool()> suppress_when_;

  std::uint64_t ticks_ = 0;
  std::uint64_t checks_ = 0;
  std::uint64_t suppressed_checks_ = 0;
  bool frozen_ = false;
  double frozen_sim_time_ = 0.0;
  std::uint64_t events_at_freeze_ = 0;
  double wall_at_freeze_ = 0.0;
  std::uint64_t frozen_events_ = 0;
  double frozen_wall_sec_ = 0.0;
  std::uint64_t stalls_detected_ = 0;
  std::string last_stall_diagnostics_;
};

}  // namespace basrpt::fault
