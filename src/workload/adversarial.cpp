#include "workload/adversarial.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace basrpt::workload {

namespace {

FlowArrival make(SimTime t, PortId src, PortId dst, Bytes size,
                 stats::FlowClass cls) {
  FlowArrival a;
  a.time = t;
  a.src = src;
  a.dst = dst;
  a.size = size;
  a.cls = cls;
  return a;
}

}  // namespace

std::vector<FlowArrival> fig1_example(SimTime slot, Bytes packet) {
  BASRPT_REQUIRE(slot.seconds > 0.0, "slot must be positive");
  BASRPT_REQUIRE(packet.count > 0, "packet must be positive");
  // A=0, B=1, C=2, D=3. f1: 5 packets A→C at t=0; f2: 1 packet A→B at
  // t=0; f3: 1 packet D→C at t=1 (beginning of slot 2).
  return {
      make(SimTime{0.0}, 0, 2, packet * 5, stats::FlowClass::kBackground),
      make(SimTime{0.0}, 0, 1, packet, stats::FlowClass::kQuery),
      make(slot, 3, 2, packet, stats::FlowClass::kQuery),
  };
}

std::vector<FlowArrival> srpt_starvation_pattern(
    SimTime slot, Bytes packet, std::int64_t long_packets,
    std::int64_t long_period_slots, std::int64_t rounds) {
  BASRPT_REQUIRE(slot.seconds > 0.0, "slot must be positive");
  BASRPT_REQUIRE(packet.count > 0, "packet must be positive");
  BASRPT_REQUIRE(long_packets >= 2, "long flows need >= 2 packets");
  BASRPT_REQUIRE(long_period_slots > 2 * long_packets,
                 "per-port load would reach 1: need period > 2*long_packets");
  BASRPT_REQUIRE(rounds >= 1, "need at least one round");

  std::vector<FlowArrival> arrivals;
  arrivals.reserve(static_cast<std::size_t>(
      rounds + rounds / long_period_slots + 1));
  for (std::int64_t s = 0; s < rounds; ++s) {
    const SimTime t{slot.seconds * static_cast<double>(s)};
    if (s % long_period_slots == 0) {
      arrivals.push_back(make(t, 0, 2, packet * long_packets,
                              stats::FlowClass::kBackground));
    }
    if (s % 2 == 0) {
      arrivals.push_back(make(t, 0, 1, packet, stats::FlowClass::kQuery));
    } else {
      arrivals.push_back(make(t, 3, 2, packet, stats::FlowClass::kQuery));
    }
  }
  return arrivals;
}

}  // namespace basrpt::workload
