// Per-port offered-load governor.
//
// Sec. V-A: "we focus on the traffic nearly saturating network but
// carefully control the volume between each server pair so that the
// workload on each port does not exceed link capacity ... we generate
// around 9.5Gbps of loads on each ingress/egress port" with the largest
// under the 10 Gbps capacity. With heavy-tailed flow sizes, plain random
// generation violates this over any finite window (a couple of 50 MB
// flows landing on one port push its realized load past 1.0, and the
// resulting backlog growth is overload, not scheduler-induced
// instability — exactly the confound the paper's methodology avoids).
//
// The governor tracks cumulative offered bytes per ingress and egress
// port and admits an arrival only if both ports stay within
// cap_fraction * capacity * elapsed_time + slack. Generators resample
// the port pair (never the size or the arrival time, which would bias
// the distributions) until an admissible pair is found.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "queueing/flow.hpp"

namespace basrpt::workload {

class LoadGovernor {
 public:
  /// `cap_fraction` of `host_link` is the per-port offered-byte budget
  /// rate; `slack` absorbs startup (the first flows arrive at t ≈ 0 when
  /// the budget is still empty).
  LoadGovernor(std::int32_t ports, Rate host_link, double cap_fraction,
               Bytes slack = Bytes{60'000'000});

  /// True if offering `size` from `src` to `dst` at time `t` keeps both
  /// ports within budget.
  bool would_admit(queueing::PortId src, queueing::PortId dst, Bytes size,
                   SimTime t) const;

  /// Commits the arrival to the budgets. Call only after would_admit.
  void commit(queueing::PortId src, queueing::PortId dst, Bytes size);

  /// Offered bytes so far on a port (ingress + egress tracked apart).
  Bytes offered_ingress(queueing::PortId p) const;
  Bytes offered_egress(queueing::PortId p) const;

  double cap_fraction() const { return cap_fraction_; }

 private:
  double budget_bytes(SimTime t) const;

  std::vector<std::int64_t> ingress_bytes_;
  std::vector<std::int64_t> egress_bytes_;
  double bytes_per_sec_;
  double cap_fraction_;
  double slack_bytes_;
};

}  // namespace basrpt::workload
