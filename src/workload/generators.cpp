#include "workload/generators.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "dist/flow_sizes.hpp"

namespace basrpt::workload {

double arrivals_per_host_sec(double load_fraction, Rate host_link,
                             double mean_size_bytes) {
  BASRPT_REQUIRE(load_fraction > 0.0, "load fraction must be positive");
  BASRPT_REQUIRE(mean_size_bytes > 0.0, "mean flow size must be positive");
  return load_fraction * host_link.bits_per_sec / (8.0 * mean_size_bytes);
}

double hyperexponential_gap(Rng& rng, double rate, double cv2) {
  BASRPT_ASSERT(rate > 0.0, "arrival rate must be positive");
  BASRPT_ASSERT(cv2 >= 1.0, "hyperexponential needs CV^2 >= 1");
  if (cv2 <= 1.0 + 1e-12) {
    return rng.exponential(rate);
  }
  // Balanced two-phase hyperexponential: phase probabilities
  // p_{1,2} = (1 ± sqrt((c-1)/(c+1)))/2, phase rates 2*p_i*rate.
  const double s = std::sqrt((cv2 - 1.0) / (cv2 + 1.0));
  const double p1 = 0.5 * (1.0 + s);
  const bool phase1 = rng.bernoulli(p1);
  const double phase_rate = 2.0 * (phase1 ? p1 : (1.0 - p1)) * rate;
  return rng.exponential(phase_rate);
}

namespace {

void check_class(const ClassConfig& config) {
  BASRPT_REQUIRE(config.sizes != nullptr, "traffic class needs a size dist");
  BASRPT_REQUIRE(config.load_fraction > 0.0 && config.load_fraction < 1.0,
                 "per-class load fraction must be in (0, 1)");
  BASRPT_REQUIRE(config.host_link.bits_per_sec > 0.0,
                 "host link rate must be positive");
  BASRPT_REQUIRE(config.burstiness_cv2 >= 1.0,
                 "burstiness CV^2 must be >= 1 (1 = Poisson)");
}

}  // namespace

// ------------------------------------------------------------- QueryTraffic

QueryTraffic::QueryTraffic(ClassConfig config, std::int32_t hosts, Rng rng,
                           std::shared_ptr<LoadGovernor> governor)
    : governor_(std::move(governor)),
      config_(std::move(config)),
      hosts_(hosts),
      rng_(rng) {
  check_class(config_);
  BASRPT_REQUIRE(hosts >= 2, "query traffic needs at least two hosts");
  aggregate_rate_ =
      arrivals_per_host_sec(config_.load_fraction, config_.host_link,
                            config_.sizes->mean_bytes()) *
      static_cast<double>(hosts);
}

std::optional<FlowArrival> QueryTraffic::next() {
  // The outer loop skips arrivals the governor cannot place anywhere;
  // their timestamps are consumed so the admitted process stays Poisson.
  for (;;) {
    clock_ += SimTime{
        hyperexponential_gap(rng_, aggregate_rate_, config_.burstiness_cv2)};
    FlowArrival arrival;
    arrival.time = clock_;
    arrival.size = config_.sizes->sample(rng_);
    arrival.cls = config_.cls;
    // Resample the port pair (never the size or time) until the governor
    // admits it.
    for (int attempt = 0; attempt < 64; ++attempt) {
      arrival.src = static_cast<PortId>(rng_.uniform_int(0, hosts_ - 1));
      PortId dst = static_cast<PortId>(rng_.uniform_int(0, hosts_ - 2));
      if (dst >= arrival.src) {
        ++dst;
      }
      arrival.dst = dst;
      if (!governor_ ||
          governor_->would_admit(arrival.src, arrival.dst, arrival.size,
                                 arrival.time)) {
        if (governor_) {
          governor_->commit(arrival.src, arrival.dst, arrival.size);
        }
        return arrival;
      }
    }
  }
}

// -------------------------------------------------------- BackgroundTraffic

BackgroundTraffic::BackgroundTraffic(ClassConfig config, std::int32_t racks,
                                     std::int32_t hosts_per_rack, Rng rng,
                                     std::shared_ptr<LoadGovernor> governor)
    : governor_(std::move(governor)),
      config_(std::move(config)),
      racks_(racks),
      hosts_per_rack_(hosts_per_rack),
      rng_(rng) {
  check_class(config_);
  BASRPT_REQUIRE(racks >= 1, "background traffic needs at least one rack");
  BASRPT_REQUIRE(hosts_per_rack >= 2,
                 "rack-local traffic needs >= 2 hosts per rack");
  aggregate_rate_ =
      arrivals_per_host_sec(config_.load_fraction, config_.host_link,
                            config_.sizes->mean_bytes()) *
      static_cast<double>(racks) * static_cast<double>(hosts_per_rack);
}

std::optional<FlowArrival> BackgroundTraffic::next() {
  for (;;) {
    clock_ += SimTime{
        hyperexponential_gap(rng_, aggregate_rate_, config_.burstiness_cv2)};
    FlowArrival arrival;
    arrival.time = clock_;
    arrival.size = config_.sizes->sample(rng_);
    arrival.cls = config_.cls;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto rack = static_cast<std::int32_t>(
          rng_.uniform_int(0, racks_ - 1));
      const auto src_slot = static_cast<std::int32_t>(
          rng_.uniform_int(0, hosts_per_rack_ - 1));
      auto dst_slot = static_cast<std::int32_t>(
          rng_.uniform_int(0, hosts_per_rack_ - 2));
      if (dst_slot >= src_slot) {
        ++dst_slot;
      }
      arrival.src = static_cast<PortId>(rack * hosts_per_rack_ + src_slot);
      arrival.dst = static_cast<PortId>(rack * hosts_per_rack_ + dst_slot);
      if (!governor_ ||
          governor_->would_admit(arrival.src, arrival.dst, arrival.size,
                                 arrival.time)) {
        if (governor_) {
          governor_->commit(arrival.src, arrival.dst, arrival.size);
        }
        return arrival;
      }
    }
  }
}

// ---------------------------------------------------------------- paper_mix

TrafficSourcePtr paper_mix(double load, double query_share,
                           std::int32_t racks, std::int32_t hosts_per_rack,
                           Rate host_link, SimTime horizon, Rng rng,
                           double burstiness_cv2, double cap_headroom) {
  // Batch experiments must stay strictly subcritical; an overload (load
  // >= 1) is only meaningful with the governor disabled — the serving
  // soak offers more than capacity on purpose and lets admission control
  // shed the excess.
  BASRPT_REQUIRE(load > 0.0 && (load < 1.0 || cap_headroom < 0.0),
                 "total load must be in (0, 1) of link capacity "
                 "(>= 1 requires disabling the governor: cap_headroom < 0)");
  BASRPT_REQUIRE(query_share > 0.0 && query_share < 1.0,
                 "query share must be in (0, 1)");

  std::shared_ptr<LoadGovernor> governor;
  if (cap_headroom >= 0.0) {
    governor = std::make_shared<LoadGovernor>(
        racks * hosts_per_rack, host_link,
        std::min(load + cap_headroom, 0.995));
  }

  ClassConfig queries;
  queries.load_fraction = load * query_share;
  queries.host_link = host_link;
  queries.sizes = dist::query_size();
  queries.burstiness_cv2 = burstiness_cv2;
  queries.cls = stats::FlowClass::kQuery;

  ClassConfig background;
  background.load_fraction = load * (1.0 - query_share);
  background.host_link = host_link;
  background.sizes = dist::background();
  background.burstiness_cv2 = burstiness_cv2;
  background.cls = stats::FlowClass::kBackground;

  std::vector<TrafficSourcePtr> sources;
  sources.push_back(std::make_unique<QueryTraffic>(
      queries, racks * hosts_per_rack, rng.split(1), governor));
  sources.push_back(std::make_unique<BackgroundTraffic>(
      background, racks, hosts_per_rack, rng.split(2), governor));
  return std::make_unique<TruncatedTraffic>(
      std::make_unique<CompositeTraffic>(std::move(sources)), horizon);
}

}  // namespace basrpt::workload
