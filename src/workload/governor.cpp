#include "workload/governor.hpp"

#include "common/assert.hpp"

namespace basrpt::workload {

LoadGovernor::LoadGovernor(std::int32_t ports, Rate host_link,
                           double cap_fraction, Bytes slack)
    : ingress_bytes_(static_cast<std::size_t>(ports), 0),
      egress_bytes_(static_cast<std::size_t>(ports), 0),
      bytes_per_sec_(host_link.bits_per_sec / 8.0),
      cap_fraction_(cap_fraction),
      slack_bytes_(static_cast<double>(slack.count)) {
  BASRPT_REQUIRE(ports >= 1, "governor needs ports");
  BASRPT_REQUIRE(cap_fraction > 0.0 && cap_fraction <= 1.0,
                 "cap fraction must be in (0, 1]");
  BASRPT_REQUIRE(slack.count >= 0, "slack cannot be negative");
}

double LoadGovernor::budget_bytes(SimTime t) const {
  return cap_fraction_ * bytes_per_sec_ * t.seconds + slack_bytes_;
}

bool LoadGovernor::would_admit(queueing::PortId src, queueing::PortId dst,
                               Bytes size, SimTime t) const {
  const double budget = budget_bytes(t);
  const double in_after =
      static_cast<double>(ingress_bytes_[static_cast<std::size_t>(src)] +
                          size.count);
  const double out_after =
      static_cast<double>(egress_bytes_[static_cast<std::size_t>(dst)] +
                          size.count);
  return in_after <= budget && out_after <= budget;
}

void LoadGovernor::commit(queueing::PortId src, queueing::PortId dst,
                          Bytes size) {
  ingress_bytes_[static_cast<std::size_t>(src)] += size.count;
  egress_bytes_[static_cast<std::size_t>(dst)] += size.count;
}

Bytes LoadGovernor::offered_ingress(queueing::PortId p) const {
  return Bytes{ingress_bytes_[static_cast<std::size_t>(p)]};
}

Bytes LoadGovernor::offered_egress(queueing::PortId p) const {
  return Bytes{egress_bytes_[static_cast<std::size_t>(p)]};
}

}  // namespace basrpt::workload
