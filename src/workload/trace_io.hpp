// Trace recording and replay.
//
// Research workflows need to pin a workload: generate once, save to
// disk, replay byte-for-byte across scheduler variants, commits, and
// machines. The format is a versioned CSV-like text file — one arrival
// per line — so traces are diffable and survive refactors of the binary
// layout.
//
//   basrpt-trace-v1
//   # time_s,src,dst,size_bytes,class
//   0.000125,3,17,20000,q
//   0.000197,5,2,4194304,b
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/traffic.hpp"

namespace basrpt::workload {

/// Serializes arrivals to the v1 text format.
void write_trace(std::ostream& out, const std::vector<FlowArrival>& arrivals);
void write_trace_file(const std::string& path,
                      const std::vector<FlowArrival>& arrivals);

/// Parses a v1 trace; throws ParseError (a ConfigError carrying the
/// offending line number) on malformed input: wrong header, bad field
/// counts, unparsable or overflowing numbers, negative ports, unsorted
/// times, unknown class tags, or a truncated file (final line missing
/// its newline). Tolerates CRLF line endings.
std::vector<FlowArrival> read_trace(std::istream& in);
std::vector<FlowArrival> read_trace_file(const std::string& path);

/// Decorator that records everything a source emits; after the run,
/// `recorded()` holds the trace for write_trace.
class RecordingTraffic final : public TrafficSource {
 public:
  explicit RecordingTraffic(TrafficSourcePtr inner);

  std::optional<FlowArrival> next() override;

  const std::vector<FlowArrival>& recorded() const { return recorded_; }

 private:
  TrafficSourcePtr inner_;
  std::vector<FlowArrival> recorded_;
};

}  // namespace basrpt::workload
