#include "workload/trace_io.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/assert.hpp"

namespace basrpt::workload {

namespace {

constexpr const char* kHeader = "basrpt-trace-v1";
constexpr const char* kContext = "trace";

char class_tag(stats::FlowClass cls) {
  return cls == stats::FlowClass::kQuery ? 'q' : 'b';
}

stats::FlowClass parse_class(const std::string& tag, std::size_t line) {
  if (tag == "q") {
    return stats::FlowClass::kQuery;
  }
  if (tag == "b") {
    return stats::FlowClass::kBackground;
  }
  throw ParseError(kContext, line, "unknown flow class '" + tag + "'");
}

/// Full-consumption finite double. std::stod alone accepts trailing
/// garbage ("1.5x") and throws std::out_of_range — a runtime_error, not
/// a logic_error — on overflow like "1e999", so a plain logic_error
/// catch would let it escape as an unlabelled crash.
double parse_real(const std::string& cell, std::size_t line,
                  const char* what) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(cell, &pos);
    if (pos != cell.size() || !std::isfinite(value)) {
      throw ParseError(kContext, line,
                       std::string(what) + " is not a number: '" + cell + "'");
    }
    return value;
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception&) {
    throw ParseError(kContext, line,
                     std::string(what) + " is not a number: '" + cell + "'");
  }
}

std::int64_t parse_int(const std::string& cell, std::size_t line,
                       const char* what) {
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(cell, &pos);
    if (pos != cell.size()) {
      throw ParseError(kContext, line,
                       std::string(what) + " is not an integer: '" + cell +
                           "'");
    }
    return value;
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception&) {
    throw ParseError(kContext, line,
                     std::string(what) + " is not an integer: '" + cell +
                         "'");
  }
}

}  // namespace

void write_trace(std::ostream& out,
                 const std::vector<FlowArrival>& arrivals) {
  out << kHeader << "\n# time_s,src,dst,size_bytes,class\n";
  char buf[128];
  for (const FlowArrival& a : arrivals) {
    // %.17g round-trips an IEEE double exactly, so a replayed trace
    // reproduces a simulation bit-for-bit.
    std::snprintf(buf, sizeof(buf), "%.17g,%d,%d,%" PRId64 ",%c\n",
                  a.time.seconds, a.src, a.dst, a.size.count,
                  class_tag(a.cls));
    out << buf;
  }
}

void write_trace_file(const std::string& path,
                      const std::vector<FlowArrival>& arrivals) {
  std::ofstream out(path);
  BASRPT_REQUIRE(out.good(), "cannot open trace file for writing: " + path);
  write_trace(out, arrivals);
  BASRPT_REQUIRE(out.good(), "error while writing trace file: " + path);
}

std::vector<FlowArrival> read_trace(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw ParseError(kContext, 1, std::string("expected '") + kHeader + "'");
  }
  if (!line.empty() && line.back() == '\r') {
    line.pop_back();  // tolerate CRLF
  }
  if (line != kHeader) {
    throw ParseError(kContext, 1, std::string("expected '") + kHeader + "'");
  }
  std::vector<FlowArrival> arrivals;
  std::size_t line_no = 1;
  double last_time = 0.0;
  bool saw_newline_at_end = !in.eof();
  while (std::getline(in, line)) {
    ++line_no;
    // The writer terminates every line; a final line without a newline
    // means the file was truncated mid-write. Reject it rather than
    // silently replaying a partial workload.
    saw_newline_at_end = !in.eof();
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();  // tolerate CRLF
    }
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::vector<std::string> fields;
    {
      std::istringstream cells(line);
      std::string cell;
      while (std::getline(cells, cell, ',')) {
        fields.push_back(cell);
      }
      if (!line.empty() && line.back() == ',') {
        fields.emplace_back();  // trailing comma == trailing empty field
      }
    }
    if (fields.size() != 5) {
      throw ParseError(kContext, line_no,
                       "expected 5 fields (time,src,dst,size,class), got " +
                           std::to_string(fields.size()));
    }
    FlowArrival a;
    a.time = SimTime{parse_real(fields[0], line_no, "time")};
    a.src = static_cast<PortId>(parse_int(fields[1], line_no, "src"));
    a.dst = static_cast<PortId>(parse_int(fields[2], line_no, "dst"));
    a.size = Bytes{parse_int(fields[3], line_no, "size")};
    a.cls = parse_class(fields[4], line_no);
    if (a.time.seconds < last_time) {
      throw ParseError(kContext, line_no, "times must be non-decreasing");
    }
    if (a.time.seconds < 0.0) {
      throw ParseError(kContext, line_no, "time must be non-negative");
    }
    if (a.src < 0 || a.dst < 0) {
      throw ParseError(kContext, line_no, "ports must be non-negative");
    }
    if (a.size.count <= 0) {
      throw ParseError(kContext, line_no, "size must be positive");
    }
    last_time = a.time.seconds;
    arrivals.push_back(a);
  }
  if (in.bad()) {
    throw ConfigError("trace: I/O error while reading");
  }
  if (!saw_newline_at_end) {
    throw ParseError(kContext, line_no,
                     "file truncated (no trailing newline)");
  }
  return arrivals;
}

std::vector<FlowArrival> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  BASRPT_REQUIRE(in.good(), "cannot open trace file: " + path);
  return read_trace(in);
}

RecordingTraffic::RecordingTraffic(TrafficSourcePtr inner)
    : inner_(std::move(inner)) {
  BASRPT_REQUIRE(inner_ != nullptr, "recording traffic needs a source");
}

std::optional<FlowArrival> RecordingTraffic::next() {
  auto arrival = inner_->next();
  if (arrival) {
    recorded_.push_back(*arrival);
  }
  return arrival;
}

}  // namespace basrpt::workload
