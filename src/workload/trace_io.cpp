#include "workload/trace_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace basrpt::workload {

namespace {

constexpr const char* kHeader = "basrpt-trace-v1";

char class_tag(stats::FlowClass cls) {
  return cls == stats::FlowClass::kQuery ? 'q' : 'b';
}

stats::FlowClass parse_class(const std::string& tag, std::size_t line) {
  if (tag == "q") {
    return stats::FlowClass::kQuery;
  }
  if (tag == "b") {
    return stats::FlowClass::kBackground;
  }
  throw ConfigError("trace line " + std::to_string(line) +
                    ": unknown flow class '" + tag + "'");
}

}  // namespace

void write_trace(std::ostream& out,
                 const std::vector<FlowArrival>& arrivals) {
  out << kHeader << "\n# time_s,src,dst,size_bytes,class\n";
  char buf[128];
  for (const FlowArrival& a : arrivals) {
    // %.17g round-trips an IEEE double exactly, so a replayed trace
    // reproduces a simulation bit-for-bit.
    std::snprintf(buf, sizeof(buf), "%.17g,%d,%d,%" PRId64 ",%c\n",
                  a.time.seconds, a.src, a.dst, a.size.count,
                  class_tag(a.cls));
    out << buf;
  }
}

void write_trace_file(const std::string& path,
                      const std::vector<FlowArrival>& arrivals) {
  std::ofstream out(path);
  BASRPT_REQUIRE(out.good(), "cannot open trace file for writing: " + path);
  write_trace(out, arrivals);
  BASRPT_REQUIRE(out.good(), "error while writing trace file: " + path);
}

std::vector<FlowArrival> read_trace(std::istream& in) {
  std::string line;
  BASRPT_REQUIRE(std::getline(in, line) && line == kHeader,
                 "not a basrpt-trace-v1 file");
  std::vector<FlowArrival> arrivals;
  std::size_t line_no = 1;
  double last_time = 0.0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string cell;
    FlowArrival a;
    try {
      BASRPT_REQUIRE(std::getline(fields, cell, ','), "missing time");
      a.time = SimTime{std::stod(cell)};
      BASRPT_REQUIRE(std::getline(fields, cell, ','), "missing src");
      a.src = static_cast<PortId>(std::stol(cell));
      BASRPT_REQUIRE(std::getline(fields, cell, ','), "missing dst");
      a.dst = static_cast<PortId>(std::stol(cell));
      BASRPT_REQUIRE(std::getline(fields, cell, ','), "missing size");
      a.size = Bytes{std::stoll(cell)};
      BASRPT_REQUIRE(std::getline(fields, cell, ','), "missing class");
      a.cls = parse_class(cell, line_no);
    } catch (const std::logic_error& e) {
      throw ConfigError("trace line " + std::to_string(line_no) +
                        ": malformed (" + e.what() + ")");
    }
    BASRPT_REQUIRE(a.time.seconds >= last_time,
                   "trace line " + std::to_string(line_no) +
                       ": times must be non-decreasing");
    BASRPT_REQUIRE(a.size.count > 0,
                   "trace line " + std::to_string(line_no) +
                       ": size must be positive");
    last_time = a.time.seconds;
    arrivals.push_back(a);
  }
  return arrivals;
}

std::vector<FlowArrival> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  BASRPT_REQUIRE(in.good(), "cannot open trace file: " + path);
  return read_trace(in);
}

RecordingTraffic::RecordingTraffic(TrafficSourcePtr inner)
    : inner_(std::move(inner)) {
  BASRPT_REQUIRE(inner_ != nullptr, "recording traffic needs a source");
}

std::optional<FlowArrival> RecordingTraffic::next() {
  auto arrival = inner_->next();
  if (arrival) {
    recorded_.push_back(*arrival);
  }
  return arrival;
}

}  // namespace basrpt::workload
