#include "workload/traffic.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace basrpt::workload {

// ------------------------------------------------------------ VectorTraffic

VectorTraffic::VectorTraffic(std::vector<FlowArrival> arrivals)
    : arrivals_(std::move(arrivals)) {
  BASRPT_REQUIRE(
      std::is_sorted(arrivals_.begin(), arrivals_.end(),
                     [](const FlowArrival& a, const FlowArrival& b) {
                       return a.time < b.time;
                     }),
      "vector traffic must be sorted by arrival time");
}

std::optional<FlowArrival> VectorTraffic::next() {
  if (cursor_ >= arrivals_.size()) {
    return std::nullopt;
  }
  return arrivals_[cursor_++];
}

// --------------------------------------------------------- CompositeTraffic

CompositeTraffic::CompositeTraffic(std::vector<TrafficSourcePtr> sources)
    : sources_(std::move(sources)) {
  BASRPT_REQUIRE(!sources_.empty(), "composite traffic needs sources");
  heads_.reserve(sources_.size());
  for (auto& source : sources_) {
    BASRPT_REQUIRE(source != nullptr, "composite traffic source is null");
    heads_.push_back(source->next());
  }
}

std::optional<FlowArrival> CompositeTraffic::next() {
  // Linear scan over heads: the number of merged sources is tiny (2-3 in
  // every experiment), so a heap would be overhead, not optimization.
  std::size_t best = heads_.size();
  for (std::size_t i = 0; i < heads_.size(); ++i) {
    if (heads_[i] &&
        (best == heads_.size() || heads_[i]->time < heads_[best]->time)) {
      best = i;
    }
  }
  if (best == heads_.size()) {
    return std::nullopt;
  }
  FlowArrival out = *heads_[best];
  heads_[best] = sources_[best]->next();
  return out;
}

// --------------------------------------------------------- TruncatedTraffic

TruncatedTraffic::TruncatedTraffic(TrafficSourcePtr inner, SimTime horizon)
    : inner_(std::move(inner)), horizon_(horizon) {
  BASRPT_REQUIRE(inner_ != nullptr, "truncated traffic needs a source");
}

std::optional<FlowArrival> TruncatedTraffic::next() {
  auto arrival = inner_->next();
  if (!arrival || arrival->time > horizon_) {
    return std::nullopt;
  }
  return arrival;
}

}  // namespace basrpt::workload
