// Deterministic adversarial patterns.
//
// Fig. 1 of the paper: flows f1 (5 packets, A→C at t=0), f2 (1 packet,
// A→B at t=0), f3 (1 packet, D→C at t=1). SRPT leaves one packet of f1
// after 6 slots; a backlog-aware schedule finishes everything.
//
// The generalization (`srpt_starvation_pattern`) keeps alternating
// 1-packet flows that hit the long flows' source and destination in
// non-overlapping slots — the exact mechanism Sec. II-B blames for
// instability: "the two 1-packet flows not overlapping in time domain...
// preempt 2 slots from f1 one after another". A fresh long flow is
// injected every `long_period_slots`, so under SRPT the 0→2 backlog
// grows without bound while every port's offered load stays strictly
// below 1 packet/slot.
#pragma once

#include <cstdint>

#include "workload/traffic.hpp"

namespace basrpt::workload {

/// The literal 3-flow example of Fig. 1 on a 4-port fabric
/// (A=0, B=1, C=2, D=3). `slot` is the duration of one model slot (one
/// packet transmission time); `packet` the packet size.
std::vector<FlowArrival> fig1_example(SimTime slot, Bytes packet);

/// Unbounded starvation pattern on 4 ports: a `long_packets`-packet
/// background flow 0→2 every `long_period_slots` slots (starting at
/// t=0), plus 1-packet query flows 0→1 at even slots and 3→2 at odd
/// slots, for `rounds` slots total. Admissible iff
/// 0.5 + long_packets/long_period_slots < 1.
std::vector<FlowArrival> srpt_starvation_pattern(
    SimTime slot, Bytes packet, std::int64_t long_packets,
    std::int64_t long_period_slots, std::int64_t rounds);

}  // namespace basrpt::workload
