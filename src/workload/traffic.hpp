// Traffic-source abstraction for the flow-level simulator.
//
// A TrafficSource yields flow arrivals in non-decreasing time order; the
// simulator pulls the next arrival lazily so workloads of any horizon
// use O(1) memory. CompositeTraffic merges independent sources (the
// paper superimposes fabric-wide query traffic and rack-local background
// traffic on every server).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "queueing/flow.hpp"
#include "stats/fct.hpp"

namespace basrpt::workload {

using queueing::PortId;

/// One flow arrival (the paper's A_ij(t): all packets of a flow arrive
/// at once, so a flow is fully described by its arrival instant).
struct FlowArrival {
  SimTime time{};
  PortId src = 0;
  PortId dst = 0;
  Bytes size{};
  stats::FlowClass cls = stats::FlowClass::kBackground;
};

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// Next arrival, or nullopt when the source is exhausted. Times are
  /// non-decreasing across calls.
  virtual std::optional<FlowArrival> next() = 0;
};

using TrafficSourcePtr = std::unique_ptr<TrafficSource>;

/// Replays a fixed arrival list (tests, the Fig. 1 hand example).
class VectorTraffic final : public TrafficSource {
 public:
  explicit VectorTraffic(std::vector<FlowArrival> arrivals);
  std::optional<FlowArrival> next() override;

 private:
  std::vector<FlowArrival> arrivals_;
  std::size_t cursor_ = 0;
};

/// Time-ordered merge of several sources.
class CompositeTraffic final : public TrafficSource {
 public:
  explicit CompositeTraffic(std::vector<TrafficSourcePtr> sources);
  std::optional<FlowArrival> next() override;

 private:
  std::vector<TrafficSourcePtr> sources_;
  std::vector<std::optional<FlowArrival>> heads_;
};

/// Truncates a source at `horizon` (arrivals strictly after it are
/// dropped); keeps bench runs finite.
class TruncatedTraffic final : public TrafficSource {
 public:
  TruncatedTraffic(TrafficSourcePtr inner, SimTime horizon);
  std::optional<FlowArrival> next() override;

 private:
  TrafficSourcePtr inner_;
  SimTime horizon_;
};

}  // namespace basrpt::workload
