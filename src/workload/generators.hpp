// Random traffic generators reproducing the paper's workload (Sec. V-A):
//
//  * Query traffic — fixed 20 KB flows, Poisson arrivals, destinations
//    uniform over the whole fabric ("queries and responses travel across
//    the whole cluster").
//  * Background traffic — heavy-tailed sizes, destinations uniform within
//    the source's rack ("large transfers usually travel within a rack").
//
// Arrival rates are calibrated from a per-host load target: a class
// carrying fraction `load` of a `host_link` with mean flow size S needs
// arrival rate load * capacity / (8 * S) flows per second per host. By
// symmetry of the destination choices the same load appears on egress
// ports, which is what lets the experiments push every port close to
// (but not beyond) capacity.
//
// Both generators support a burstiness knob: inter-arrival times come
// from a balanced two-phase hyperexponential with a requested squared
// coefficient of variation (1 = Poisson). The paper's stability
// discussion points at burstiness as the aggravating factor, so the
// benches can sweep it.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "dist/distributions.hpp"
#include "workload/governor.hpp"
#include "workload/traffic.hpp"

namespace basrpt::workload {

/// Shared parameters of one traffic class.
struct ClassConfig {
  double load_fraction = 0.1;  // of host link capacity, per host
  Rate host_link = gbps(10.0);
  dist::SizeDistributionPtr sizes;
  double burstiness_cv2 = 1.0;  // squared CV of inter-arrivals; 1 = Poisson
  stats::FlowClass cls = stats::FlowClass::kQuery;
};

/// Flows-per-second-per-host needed to carry `load_fraction` of
/// `host_link` with mean flow size `mean_size_bytes`.
double arrivals_per_host_sec(double load_fraction, Rate host_link,
                             double mean_size_bytes);

/// Fabric-wide query traffic: aggregate arrival process over all hosts
/// (superposition of per-host processes), source uniform, destination
/// uniform over all other hosts.
class QueryTraffic final : public TrafficSource {
 public:
  /// `governor` (optional) enforces per-port offered-load caps by
  /// resampling the port pair; see workload/governor.hpp.
  QueryTraffic(ClassConfig config, std::int32_t hosts, Rng rng,
               std::shared_ptr<LoadGovernor> governor = nullptr);

  std::optional<FlowArrival> next() override;

 private:
  std::shared_ptr<LoadGovernor> governor_;
  ClassConfig config_;
  std::int32_t hosts_;
  double aggregate_rate_;  // flows/sec over the whole fabric
  Rng rng_;
  SimTime clock_{};
};

/// Rack-local background traffic: source uniform, destination uniform
/// among the other hosts of the same rack.
class BackgroundTraffic final : public TrafficSource {
 public:
  BackgroundTraffic(ClassConfig config, std::int32_t racks,
                    std::int32_t hosts_per_rack, Rng rng,
                    std::shared_ptr<LoadGovernor> governor = nullptr);

  std::optional<FlowArrival> next() override;

 private:
  std::shared_ptr<LoadGovernor> governor_;
  ClassConfig config_;
  std::int32_t racks_;
  std::int32_t hosts_per_rack_;
  double aggregate_rate_;
  Rng rng_;
  SimTime clock_{};
};

/// Draws one inter-arrival time with mean 1/rate and squared CV `cv2`
/// (>= 1). cv2 == 1 is exponential; larger values use a balanced
/// hyperexponential, producing bursts.
double hyperexponential_gap(Rng& rng, double rate, double cv2);

/// Convenience: the paper's standard mix. `query_share` of the total
/// per-host `load` goes to 20 KB queries, the rest to heavy-tailed
/// rack-local background flows.
/// The per-port offered load is governed to stay below
/// min(load + cap_headroom, 0.995) of the link (the paper "carefully
/// control[s] the volume ... so that the workload on each port does not
/// exceed link capacity"); pass cap_headroom < 0 to disable governing.
TrafficSourcePtr paper_mix(double load, double query_share,
                           std::int32_t racks, std::int32_t hosts_per_rack,
                           Rate host_link, SimTime horizon, Rng rng,
                           double burstiness_cv2 = 1.0,
                           double cap_headroom = 0.03);

}  // namespace basrpt::workload
