// One implementation of the flow lifecycle shared by all three
// simulators (switchsim, flowsim, pktsim): admission (flow-id
// allocation, arrival accounting, VOQ insertion, tracer notification),
// decision application (preemption / first-service tracing against the
// previous selection), and completion recording (FCT aggregation +
// tracer notification).
//
// Before this class each simulator duplicated the logic, and the two
// matching simulators each carried an O(S²) std::find loop to diff the
// new selection against the previous one. The diff here is a hash-set
// membership test — O(S) per decision — and iterates the previous
// selection in its original decision order, so the emitted preemption
// events are identical to the old loops'.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "obs/trace.hpp"
#include "queueing/flow.hpp"
#include "queueing/voq.hpp"
#include "stats/fct.hpp"

namespace basrpt::fabric {

using queueing::FlowId;
using queueing::PortId;

/// Everything a simulator knows about a flow at admission time. The
/// slotted model passes packets as bytes (1 byte == 1 packet) and the
/// slot index as `arrival.seconds`, exactly as its VoqMatrix does.
struct Admission {
  PortId src = 0;
  PortId dst = 0;
  Bytes size{};
  SimTime arrival{};
  stats::FlowClass cls = stats::FlowClass::kBackground;
};

class FlowLifecycle {
 public:
  /// `voqs` may be null for simulators that keep their own flow table
  /// (pktsim); admission then only allocates ids and accounts arrivals,
  /// and apply_decision must not be called. `tracer` null disables all
  /// tracing at one branch per hook.
  FlowLifecycle(queueing::VoqMatrix* voqs, stats::FctAggregator& fct,
                obs::FlowTracer* tracer);

  /// Forwards to the tracer's begin_run (id scoping across runs).
  void begin_run();

  /// Admits one flow: allocates the next id, bumps the arrival
  /// counters, inserts into the VoqMatrix when attached, and notifies
  /// the tracer. Returns the allocated id.
  FlowId admit(const Admission& a);

  /// Re-admits an evicted flow (fault burst re-arrival): the flow is
  /// reborn under a fresh id carrying only its remaining bytes, with
  /// `now` as its arrival. Deliberately does NOT bump the arrival
  /// counters — the original admit() already accounted the flow, and a
  /// requeue moves bytes, it does not create them — so conservation
  /// (delivered + left == arrived) holds across fault injection. The
  /// caller must already have removed the flow from the VoqMatrix.
  /// Traces as a preemption followed by an arrival. Returns the new id.
  FlowId requeue(const queueing::Flow& evicted, double now);

  /// Applies a new scheduling decision for tracing purposes: flows from
  /// the previous selection that are still queued but absent from
  /// `selected` are reported preempted (in previous-decision order),
  /// then every selected flow is reported served (the tracer keeps only
  /// the first service per flow). No-op without a tracer. Requires an
  /// attached VoqMatrix.
  void apply_decision(const std::vector<FlowId>& selected, double now);

  /// Tracer service hook for simulators without a matching decision
  /// (pktsim's per-packet sender choice). No-op without a tracer.
  void note_service(FlowId id, PortId src, PortId dst, double now,
                    Bytes size, Bytes remaining);

  /// Records one completion: FCT aggregation, completion counter,
  /// tracer notification at `trace_time` (the caller's clock — slots or
  /// seconds).
  void record_completion(stats::FlowClass cls, FlowId id, PortId src,
                         PortId dst, Bytes size, SimTime fct,
                         double trace_time);

  /// Like record_completion, but also tracks slowdown = fct / ideal.
  void record_completion_with_ideal(stats::FlowClass cls, FlowId id,
                                    PortId src, PortId dst, Bytes size,
                                    SimTime fct, SimTime ideal,
                                    double trace_time);

  std::int64_t flows_arrived() const { return flows_arrived_; }
  std::int64_t flows_completed() const { return flows_completed_; }
  std::int64_t flows_requeued() const { return flows_requeued_; }
  Bytes bytes_arrived() const { return bytes_arrived_; }
  bool tracing() const { return tracer_ != nullptr; }

  /// Checkpointable image of the lifecycle tables. `prev_selected`
  /// matters: the first post-resume decision diffs against it, and the
  /// preemption events it emits must match the uninterrupted run's.
  struct State {
    FlowId next_id = 0;
    std::int64_t flows_arrived = 0;
    std::int64_t flows_completed = 0;
    std::int64_t flows_requeued = 0;
    Bytes bytes_arrived{};
    std::vector<FlowId> prev_selected;
  };
  State state() const;
  void restore(const State& s);

 private:
  queueing::VoqMatrix* voqs_;
  stats::FctAggregator& fct_;
  obs::FlowTracer* tracer_;

  FlowId next_id_ = 0;
  std::int64_t flows_arrived_ = 0;
  std::int64_t flows_completed_ = 0;
  std::int64_t flows_requeued_ = 0;
  Bytes bytes_arrived_{};

  std::vector<FlowId> prev_selected_;        // in decision order
  std::unordered_set<FlowId> selected_set_;  // diff scratch
};

}  // namespace basrpt::fabric
