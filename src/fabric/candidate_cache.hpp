// Incrementally maintained per-VOQ candidate lanes.
//
// The simulators previously rebuilt the scheduler's candidate list from
// scratch before every decision — O(#non-empty VOQs) ordered-index
// probes and flow-table lookups each time, even though an arrival or a
// drain touches exactly one VOQ. This cache keeps one VoqCandidate per
// VOQ in a persistently allocated dense array, recomputes only the VOQs
// the matrix reports dirty (VoqMatrix::dirty_voqs), then transposes the
// non-empty entries into contiguous SoA lanes (sched::CandidateView) in
// the matrix's non-empty order — the same order build_candidates
// produces, so order-sensitive schedulers (exact BASRPT's enumeration
// ties, BvN's selection order) behave identically. The transpose is a
// set of strided gathers the src/simd kernels vectorize.
//
// Steady-state cost per refresh: O(#dirty VOQs) candidate recomputes
// plus O(#non-empty VOQs) lane gathers, with zero heap allocation once
// the lanes have warmed to the fabric's footprint.
//
// The cache consumes the matrix's dirty list (clear_dirty), so attach
// at most one cache — or any single dirty-consuming observer — per
// VoqMatrix.
#pragma once

#include <cstdint>
#include <vector>

#include "queueing/voq.hpp"
#include "sched/scheduler.hpp"

namespace basrpt::fabric {

class CandidateCache {
 public:
  /// `unit_bytes` converts bytes to packets for the scheduler keys (1.0
  /// when the matrix already stores packets). `with_arrival` is
  /// typically the consuming scheduler's needs_arrival_lane(): it
  /// controls whether the view carries the oldest_flow/oldest_arrival
  /// lanes (asking the view for a lane built without it is a
  /// ConfigError).
  CandidateCache(const queueing::VoqMatrix& voqs, double unit_bytes,
                 bool with_arrival = true);

  /// Brings the cache up to date with the matrix and returns the packed
  /// candidate view (one entry per non-empty VOQ whose ports are usable,
  /// matrix order). The view stays valid until the next refresh().
  const sched::CandidateView& refresh();

  /// Marks a port usable/unusable (fault blackout): candidates whose
  /// ingress *or* egress is an unusable port are filtered from the
  /// packed view, so decide_into never selects a dead matching edge.
  /// O(1); the next refresh() repacks the view without recomputing any
  /// per-VOQ entry — entries keep tracking matrix mutations while the
  /// port is dark, so recovery costs one repack, not a row+column
  /// recompute. All ports start usable.
  void set_port_usable(queueing::PortId port, bool usable);
  bool port_usable(queueing::PortId port) const;

  double unit_bytes() const { return unit_bytes_; }
  bool with_arrival() const { return with_arrival_; }

  // Work accounting for tests and bench_candidate_cache.
  std::uint64_t refreshes() const { return refreshes_; }
  std::uint64_t voqs_recomputed() const { return voqs_recomputed_; }
  /// Candidates filtered out by the port mask, cumulative over refreshes.
  std::uint64_t candidates_masked() const { return candidates_masked_; }

 private:
  const queueing::VoqMatrix& voqs_;
  double unit_bytes_;
  bool with_arrival_;

  std::uint64_t seen_version_ = 0;
  std::uint64_t refreshes_ = 0;
  std::uint64_t voqs_recomputed_ = 0;
  std::uint64_t candidates_masked_ = 0;

  // Port mask (fault support). mask_epoch_ bumps on every mask change so
  // refresh() repacks even when the matrix itself is unchanged;
  // masked_ports_ lets the common all-usable case skip the filter.
  std::vector<char> port_ok_;
  std::size_t masked_ports_ = 0;
  std::uint64_t mask_epoch_ = 0;
  std::uint64_t seen_mask_epoch_ = 0;

  std::vector<sched::VoqCandidate> entries_;  // dense, by flat VOQ index
  std::vector<std::uint32_t> packed_idx_;     // flat indexes, packed order
  sched::CandidateSoA soa_;                   // packed lanes
  sched::CandidateView view_;
};

}  // namespace basrpt::fabric
