// Incrementally maintained per-VOQ candidate list.
//
// The simulators previously rebuilt the scheduler's candidate list from
// scratch before every decision — O(#non-empty VOQs) ordered-index
// probes and flow-table lookups each time, even though an arrival or a
// drain touches exactly one VOQ. This cache keeps one VoqCandidate per
// VOQ in a persistently allocated dense array and recomputes only the
// VOQs the matrix reports dirty (VoqMatrix::dirty_voqs), then packs the
// non-empty entries into a contiguous view in the matrix's non-empty
// order — the same order build_candidates produces, so order-sensitive
// schedulers (exact BASRPT's enumeration ties, BvN's selection order)
// behave identically.
//
// Steady-state cost per refresh: O(#dirty VOQs) candidate recomputes
// plus O(#non-empty VOQs) POD copies, with zero heap allocation once
// the view has warmed to the fabric's footprint.
//
// The cache consumes the matrix's dirty list (clear_dirty), so attach
// at most one cache — or any single dirty-consuming observer — per
// VoqMatrix.
#pragma once

#include <cstdint>
#include <vector>

#include "queueing/voq.hpp"
#include "sched/scheduler.hpp"

namespace basrpt::fabric {

class CandidateCache {
 public:
  /// `unit_bytes` converts bytes to packets for the scheduler keys (1.0
  /// when the matrix already stores packets). `needs` is typically the
  /// consuming scheduler's needs() mask.
  CandidateCache(const queueing::VoqMatrix& voqs, double unit_bytes,
                 sched::CandidateNeeds needs = {});

  /// Brings the cache up to date with the matrix and returns the packed
  /// candidate view (one entry per non-empty VOQ, matrix order). The
  /// reference stays valid until the next refresh().
  const std::vector<sched::VoqCandidate>& refresh();

  double unit_bytes() const { return unit_bytes_; }
  sched::CandidateNeeds needs() const { return needs_; }

  // Work accounting for tests and bench_candidate_cache.
  std::uint64_t refreshes() const { return refreshes_; }
  std::uint64_t voqs_recomputed() const { return voqs_recomputed_; }

 private:
  const queueing::VoqMatrix& voqs_;
  double unit_bytes_;
  sched::CandidateNeeds needs_;

  std::uint64_t seen_version_ = 0;
  std::uint64_t refreshes_ = 0;
  std::uint64_t voqs_recomputed_ = 0;

  std::vector<sched::VoqCandidate> entries_;  // dense, by flat VOQ index
  std::vector<sched::VoqCandidate> view_;     // packed, non-empty order
};

}  // namespace basrpt::fabric
