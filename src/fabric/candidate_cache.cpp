#include "fabric/candidate_cache.hpp"

#include <cstdint>
#include <limits>

#include "common/assert.hpp"
#include "perf/profiler.hpp"
#include "simd/kernels.hpp"

namespace basrpt::fabric {
namespace {

// The AVX2 gather variants compute byte offsets as idx * stride in
// 32-bit lanes, so the vectorized transpose is only safe while every
// entry of the dense array is addressable within int32 bytes. 64-byte
// records put the limit near 5792 ports — far past any modeled fabric —
// but the scalar fallback keeps huge configurations correct.
bool gatherable(std::size_t entries, std::size_t stride) {
  return entries <= static_cast<std::size_t>(
                        std::numeric_limits<std::int32_t>::max()) /
                        stride;
}

}  // namespace

CandidateCache::CandidateCache(const queueing::VoqMatrix& voqs,
                               double unit_bytes, bool with_arrival)
    : voqs_(voqs), unit_bytes_(unit_bytes), with_arrival_(with_arrival) {
  BASRPT_REQUIRE(unit_bytes > 0.0, "unit must be positive");
  const auto n = static_cast<std::size_t>(voqs.ports());
  entries_.resize(n * n);
  packed_idx_.reserve(n);
  soa_.with_arrival = with_arrival;
  port_ok_.assign(n, 1);
}

const sched::CandidateView& CandidateCache::refresh() {
  const perf::ScopedPhase phase(perf::Phase::kCandidateRepack);
  ++refreshes_;
  if (voqs_.version() == seen_version_ && mask_epoch_ == seen_mask_epoch_) {
    return view_;  // nothing changed since the last decision
  }
  for (const std::size_t idx : voqs_.dirty_voqs()) {
    const queueing::PortId i = voqs_.voq_ingress(idx);
    const queueing::PortId j = voqs_.voq_egress(idx);
    if (voqs_.flow_count(i, j) == 0) {
      continue;  // drained empty; the repack below skips it
    }
    // Masked VOQs still recompute: entries_ stays warm so recovery is a
    // pure repack.
    sched::fill_candidate(voqs_, i, j, unit_bytes_, with_arrival_,
                          entries_[idx]);
    ++voqs_recomputed_;
  }
  voqs_.clear_dirty();
  seen_version_ = voqs_.version();
  seen_mask_epoch_ = mask_epoch_;

  packed_idx_.clear();
  if (masked_ports_ == 0) {
    for (const std::size_t idx : voqs_.non_empty_indices()) {
      packed_idx_.push_back(static_cast<std::uint32_t>(idx));
    }
  } else {
    for (const std::size_t idx : voqs_.non_empty_indices()) {
      const auto i = static_cast<std::size_t>(voqs_.voq_ingress(idx));
      const auto j = static_cast<std::size_t>(voqs_.voq_egress(idx));
      if (port_ok_[i] == 0 || port_ok_[j] == 0) {
        ++candidates_masked_;
        continue;
      }
      packed_idx_.push_back(static_cast<std::uint32_t>(idx));
    }
  }

  // Transpose the packed entries into lanes: one strided gather per lane.
  const std::size_t m = packed_idx_.size();
  soa_.resize_lanes(m);
  constexpr std::size_t kStride = sizeof(sched::VoqCandidate);
  if (m > 0 && gatherable(entries_.size(), kStride)) {
    const auto* base = reinterpret_cast<const char*>(entries_.data());
    const std::uint32_t* idx = packed_idx_.data();
    simd::gather_i32(base + offsetof(sched::VoqCandidate, ingress), kStride,
                     idx, m, soa_.ingress.data());
    simd::gather_i32(base + offsetof(sched::VoqCandidate, egress), kStride,
                     idx, m, soa_.egress.data());
    simd::gather_f64(base + offsetof(sched::VoqCandidate, backlog), kStride,
                     idx, m, soa_.backlog.data());
    simd::gather_u32_from_size(base + offsetof(sched::VoqCandidate, flow_count),
                               kStride, idx, m, soa_.flow_count.data());
    simd::gather_i64(base + offsetof(sched::VoqCandidate, shortest_flow),
                     kStride, idx, m, soa_.shortest_flow.data());
    simd::gather_f64(base + offsetof(sched::VoqCandidate, shortest_remaining),
                     kStride, idx, m, soa_.shortest_remaining.data());
    simd::gather_f64(base + offsetof(sched::VoqCandidate, shortest_arrival),
                     kStride, idx, m, soa_.shortest_arrival.data());
    if (with_arrival_) {
      simd::gather_i64(base + offsetof(sched::VoqCandidate, oldest_flow),
                       kStride, idx, m, soa_.oldest_flow.data());
      simd::gather_f64(base + offsetof(sched::VoqCandidate, oldest_arrival),
                       kStride, idx, m, soa_.oldest_arrival.data());
    }
  } else {
    for (std::size_t k = 0; k < m; ++k) {
      const sched::VoqCandidate& c = entries_[packed_idx_[k]];
      soa_.ingress[k] = c.ingress;
      soa_.egress[k] = c.egress;
      soa_.backlog[k] = c.backlog;
      soa_.flow_count[k] = static_cast<std::uint32_t>(c.flow_count);
      soa_.shortest_flow[k] = c.shortest_flow;
      soa_.shortest_remaining[k] = c.shortest_remaining;
      soa_.shortest_arrival[k] = c.shortest_arrival;
      if (with_arrival_) {
        soa_.oldest_flow[k] = c.oldest_flow;
        soa_.oldest_arrival[k] = c.oldest_arrival;
      }
    }
  }
  view_ = soa_.view();
  return view_;
}

void CandidateCache::set_port_usable(queueing::PortId port, bool usable) {
  const auto p = static_cast<std::size_t>(port);
  BASRPT_REQUIRE(p < port_ok_.size(), "port out of range");
  const char next = usable ? 1 : 0;
  if (port_ok_[p] == next) {
    return;
  }
  port_ok_[p] = next;
  if (usable) {
    --masked_ports_;
  } else {
    ++masked_ports_;
  }
  ++mask_epoch_;
}

bool CandidateCache::port_usable(queueing::PortId port) const {
  const auto p = static_cast<std::size_t>(port);
  BASRPT_REQUIRE(p < port_ok_.size(), "port out of range");
  return port_ok_[p] != 0;
}

}  // namespace basrpt::fabric
