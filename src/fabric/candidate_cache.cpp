#include "fabric/candidate_cache.hpp"

#include "common/assert.hpp"

namespace basrpt::fabric {

CandidateCache::CandidateCache(const queueing::VoqMatrix& voqs,
                               double unit_bytes, sched::CandidateNeeds needs)
    : voqs_(voqs), unit_bytes_(unit_bytes), needs_(needs) {
  BASRPT_REQUIRE(unit_bytes > 0.0, "unit must be positive");
  const auto n = static_cast<std::size_t>(voqs.ports());
  entries_.resize(n * n);
  view_.reserve(n);
}

const std::vector<sched::VoqCandidate>& CandidateCache::refresh() {
  ++refreshes_;
  if (voqs_.version() == seen_version_) {
    return view_;  // nothing changed since the last decision
  }
  for (const std::size_t idx : voqs_.dirty_voqs()) {
    const queueing::PortId i = voqs_.voq_ingress(idx);
    const queueing::PortId j = voqs_.voq_egress(idx);
    if (voqs_.flow_count(i, j) == 0) {
      continue;  // drained empty; the view pass below skips it
    }
    sched::fill_candidate(voqs_, i, j, unit_bytes_, needs_, entries_[idx]);
    ++voqs_recomputed_;
  }
  voqs_.clear_dirty();
  seen_version_ = voqs_.version();

  view_.clear();
  for (const std::size_t idx : voqs_.non_empty_indices()) {
    view_.push_back(entries_[idx]);
  }
  return view_;
}

}  // namespace basrpt::fabric
