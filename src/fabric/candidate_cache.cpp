#include "fabric/candidate_cache.hpp"

#include "common/assert.hpp"
#include "perf/profiler.hpp"

namespace basrpt::fabric {

CandidateCache::CandidateCache(const queueing::VoqMatrix& voqs,
                               double unit_bytes, sched::CandidateNeeds needs)
    : voqs_(voqs), unit_bytes_(unit_bytes), needs_(needs) {
  BASRPT_REQUIRE(unit_bytes > 0.0, "unit must be positive");
  const auto n = static_cast<std::size_t>(voqs.ports());
  entries_.resize(n * n);
  view_.reserve(n);
  port_ok_.assign(n, 1);
}

const std::vector<sched::VoqCandidate>& CandidateCache::refresh() {
  const perf::ScopedPhase phase(perf::Phase::kCandidateRepack);
  ++refreshes_;
  if (voqs_.version() == seen_version_ && mask_epoch_ == seen_mask_epoch_) {
    return view_;  // nothing changed since the last decision
  }
  for (const std::size_t idx : voqs_.dirty_voqs()) {
    const queueing::PortId i = voqs_.voq_ingress(idx);
    const queueing::PortId j = voqs_.voq_egress(idx);
    if (voqs_.flow_count(i, j) == 0) {
      continue;  // drained empty; the view pass below skips it
    }
    // Masked VOQs still recompute: entries_ stays warm so recovery is a
    // pure repack.
    sched::fill_candidate(voqs_, i, j, unit_bytes_, needs_, entries_[idx]);
    ++voqs_recomputed_;
  }
  voqs_.clear_dirty();
  seen_version_ = voqs_.version();
  seen_mask_epoch_ = mask_epoch_;

  view_.clear();
  if (masked_ports_ == 0) {
    for (const std::size_t idx : voqs_.non_empty_indices()) {
      view_.push_back(entries_[idx]);
    }
  } else {
    for (const std::size_t idx : voqs_.non_empty_indices()) {
      const auto i = static_cast<std::size_t>(voqs_.voq_ingress(idx));
      const auto j = static_cast<std::size_t>(voqs_.voq_egress(idx));
      if (port_ok_[i] == 0 || port_ok_[j] == 0) {
        ++candidates_masked_;
        continue;
      }
      view_.push_back(entries_[idx]);
    }
  }
  return view_;
}

void CandidateCache::set_port_usable(queueing::PortId port, bool usable) {
  const auto p = static_cast<std::size_t>(port);
  BASRPT_REQUIRE(p < port_ok_.size(), "port out of range");
  const char next = usable ? 1 : 0;
  if (port_ok_[p] == next) {
    return;
  }
  port_ok_[p] = next;
  if (usable) {
    --masked_ports_;
  } else {
    ++masked_ports_;
  }
  ++mask_epoch_;
}

bool CandidateCache::port_usable(queueing::PortId port) const {
  const auto p = static_cast<std::size_t>(port);
  BASRPT_REQUIRE(p < port_ok_.size(), "port out of range");
  return port_ok_[p] != 0;
}

}  // namespace basrpt::fabric
