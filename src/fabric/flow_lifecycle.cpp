#include "fabric/flow_lifecycle.hpp"

#include "common/assert.hpp"
#include "perf/profiler.hpp"

namespace basrpt::fabric {

FlowLifecycle::FlowLifecycle(queueing::VoqMatrix* voqs,
                             stats::FctAggregator& fct,
                             obs::FlowTracer* tracer)
    : voqs_(voqs), fct_(fct), tracer_(tracer) {}

void FlowLifecycle::begin_run() {
  if (tracer_ != nullptr) {
    tracer_->begin_run();
  }
}

FlowId FlowLifecycle::admit(const Admission& a) {
  BASRPT_ASSERT(a.size.count > 0, "arriving flow must carry bytes");
  const FlowId id = next_id_++;
  if (voqs_ != nullptr) {
    queueing::Flow flow;
    flow.id = id;
    flow.src = a.src;
    flow.dst = a.dst;
    flow.size = a.size;
    flow.remaining = a.size;
    flow.arrival = a.arrival;
    flow.cls = a.cls;
    voqs_->add_flow(flow);
  }
  ++flows_arrived_;
  bytes_arrived_ += a.size;
  if (tracer_ != nullptr) {
    tracer_->on_arrival(id, a.src, a.dst, a.arrival.seconds,
                        static_cast<double>(a.size.count));
  }
  return id;
}

FlowId FlowLifecycle::requeue(const queueing::Flow& evicted, double now) {
  BASRPT_ASSERT(evicted.remaining.count > 0,
                "requeued flow must carry remaining bytes");
  const FlowId id = next_id_++;
  if (voqs_ != nullptr) {
    BASRPT_ASSERT(!voqs_->contains(evicted.id),
                  "requeue expects the flow already evicted");
    queueing::Flow flow;
    flow.id = id;
    flow.src = evicted.src;
    flow.dst = evicted.dst;
    flow.size = evicted.remaining;
    flow.remaining = evicted.remaining;
    flow.arrival = SimTime{now};
    flow.cls = evicted.cls;
    voqs_->add_flow(flow);
  }
  ++flows_requeued_;
  if (tracer_ != nullptr) {
    tracer_->on_preemption(evicted.id, evicted.src, evicted.dst, now,
                           static_cast<double>(evicted.size.count),
                           static_cast<double>(evicted.remaining.count));
    tracer_->on_arrival(id, evicted.src, evicted.dst, now,
                        static_cast<double>(evicted.remaining.count));
  }
  return id;
}

void FlowLifecycle::apply_decision(const std::vector<FlowId>& selected,
                                   double now) {
  if (tracer_ == nullptr) {
    return;
  }
  const perf::ScopedPhase phase(perf::Phase::kLifecycleApply);
  BASRPT_ASSERT(voqs_ != nullptr,
                "apply_decision needs an attached VoqMatrix");
  selected_set_.clear();
  selected_set_.insert(selected.begin(), selected.end());
  for (const FlowId id : prev_selected_) {
    if (!voqs_->contains(id)) {
      continue;  // completed, not preempted
    }
    if (selected_set_.count(id) != 0) {
      continue;  // still selected
    }
    const queueing::Flow& f = voqs_->flow(id);
    tracer_->on_preemption(f.id, f.src, f.dst, now,
                           static_cast<double>(f.size.count),
                           static_cast<double>(f.remaining.count));
  }
  for (const FlowId id : selected) {
    const queueing::Flow& f = voqs_->flow(id);
    tracer_->on_service(f.id, f.src, f.dst, now,
                        static_cast<double>(f.size.count),
                        static_cast<double>(f.remaining.count));
  }
  prev_selected_.assign(selected.begin(), selected.end());
}

FlowLifecycle::State FlowLifecycle::state() const {
  return {next_id_,     flows_arrived_, flows_completed_,
          flows_requeued_, bytes_arrived_, prev_selected_};
}

void FlowLifecycle::restore(const State& s) {
  next_id_ = s.next_id;
  flows_arrived_ = s.flows_arrived;
  flows_completed_ = s.flows_completed;
  flows_requeued_ = s.flows_requeued;
  bytes_arrived_ = s.bytes_arrived;
  prev_selected_ = s.prev_selected;
  selected_set_.clear();  // scratch; rebuilt by the next apply_decision
}

void FlowLifecycle::note_service(FlowId id, PortId src, PortId dst,
                                 double now, Bytes size, Bytes remaining) {
  if (tracer_ != nullptr) {
    tracer_->on_service(id, src, dst, now,
                        static_cast<double>(size.count),
                        static_cast<double>(remaining.count));
  }
}

void FlowLifecycle::record_completion(stats::FlowClass cls, FlowId id,
                                      PortId src, PortId dst, Bytes size,
                                      SimTime fct, double trace_time) {
  fct_.record(cls, fct, size);
  ++flows_completed_;
  if (tracer_ != nullptr) {
    tracer_->on_completion(id, src, dst, trace_time,
                           static_cast<double>(size.count));
  }
}

void FlowLifecycle::record_completion_with_ideal(
    stats::FlowClass cls, FlowId id, PortId src, PortId dst, Bytes size,
    SimTime fct, SimTime ideal, double trace_time) {
  fct_.record_with_ideal(cls, fct, size, ideal);
  ++flows_completed_;
  if (tracer_ != nullptr) {
    tracer_->on_completion(id, src, dst, trace_time,
                           static_cast<double>(size.count));
  }
}

}  // namespace basrpt::fabric
