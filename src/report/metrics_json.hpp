// Exporters for the obs metrics registry.
//
// JSON for machine consumption (one document: counters, gauges,
// histograms with their log-scale buckets and derived quantiles) and a
// flat CSV (kind,name,field,value) for spreadsheets / quick grep.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace basrpt::report {

/// `status` marks how the run ended: "ok" for a clean finish,
/// "interrupted" when partial metrics were flushed from a signal, stall,
/// or parse-failure path (see docs/CHECKPOINT.md). It lands as a
/// top-level `"status"` field in JSON and a `run,status,,<v>` row in CSV
/// so downstream tooling can refuse to treat partial numbers as final.
void write_metrics_json(std::ostream& out, const obs::Registry& registry,
                        const std::string& status = "ok");
void write_metrics_json_file(const std::string& path,
                             const obs::Registry& registry,
                             const std::string& status = "ok");

void write_metrics_csv(std::ostream& out, const obs::Registry& registry,
                       const std::string& status = "ok");
void write_metrics_csv_file(const std::string& path,
                            const obs::Registry& registry,
                            const std::string& status = "ok");

/// Dispatches on the path suffix: ".csv" writes CSV, anything else JSON.
void write_metrics_file(const std::string& path,
                        const obs::Registry& registry,
                        const std::string& status = "ok");

}  // namespace basrpt::report
