// Exporters for the obs metrics registry.
//
// JSON for machine consumption (one document: counters, gauges,
// histograms with their log-scale buckets and derived quantiles) and a
// flat CSV (kind,name,field,value) for spreadsheets / quick grep.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace basrpt::report {

void write_metrics_json(std::ostream& out, const obs::Registry& registry);
void write_metrics_json_file(const std::string& path,
                             const obs::Registry& registry);

void write_metrics_csv(std::ostream& out, const obs::Registry& registry);
void write_metrics_csv_file(const std::string& path,
                            const obs::Registry& registry);

/// Dispatches on the path suffix: ".csv" writes CSV, anything else JSON.
void write_metrics_file(const std::string& path,
                        const obs::Registry& registry);

}  // namespace basrpt::report
