#include "report/gnuplot.hpp"

#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace basrpt::report {

GnuplotScript::GnuplotScript(std::string title, std::string xlabel,
                             std::string ylabel)
    : title_(std::move(title)),
      xlabel_(std::move(xlabel)),
      ylabel_(std::move(ylabel)) {}

GnuplotScript& GnuplotScript::with_data(std::string csv_path) {
  csv_path_ = std::move(csv_path);
  return *this;
}

GnuplotScript& GnuplotScript::add_series(std::string title, int column) {
  BASRPT_REQUIRE(column >= 2, "column 1 is the time axis");
  series_.push_back({std::move(title), column});
  return *this;
}

GnuplotScript& GnuplotScript::with_output(std::string png_path) {
  png_path_ = std::move(png_path);
  return *this;
}

GnuplotScript& GnuplotScript::with_logscale_y(bool enable) {
  logscale_y_ = enable;
  return *this;
}

std::string GnuplotScript::render() const {
  BASRPT_REQUIRE(!csv_path_.empty(), "no data file set: call with_data()");
  BASRPT_REQUIRE(!series_.empty(), "no series added");
  std::ostringstream out;
  out << "set terminal pngcairo size 900,540 enhanced\n"
      << "set output '" << png_path_ << "'\n"
      << "set datafile separator ','\n"
      << "set title '" << title_ << "'\n"
      << "set xlabel '" << xlabel_ << "'\n"
      << "set ylabel '" << ylabel_ << "'\n"
      << "set key left top\n"
      << "set grid\n";
  if (logscale_y_) {
    out << "set logscale y\n";
  }
  out << "plot ";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i > 0) {
      out << ", \\\n     ";
    }
    out << "'" << csv_path_ << "' using 1:" << series_[i].column
        << " with lines lw 2 title '" << series_[i].title << "'";
  }
  out << "\n";
  return out.str();
}

void GnuplotScript::write_file(const std::string& path) const {
  std::ofstream out(path);
  BASRPT_REQUIRE(out.good(), "cannot open gnuplot file: " + path);
  out << render();
  BASRPT_REQUIRE(out.good(), "error writing gnuplot file: " + path);
}

}  // namespace basrpt::report
