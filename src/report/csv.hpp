// CSV export of simulation traces.
//
// The bench harnesses print tables; for the actual figures you want the
// raw series on disk. write_series() aligns several TimeSeries on a
// common uniform time grid (sample-and-hold resampling — traces from
// different runs never share timestamps exactly) and writes one column
// per series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "stats/timeseries.hpp"

namespace basrpt::report {

struct NamedSeries {
  std::string name;
  const stats::TimeSeries* series;
};

/// Writes "time,<name1>,<name2>,..." rows on a uniform grid of
/// `points` timestamps spanning the union of the series' time ranges.
/// Values are sample-and-hold (last value at or before the grid time;
/// empty prefix renders as 0).
void write_series(std::ostream& out, const std::vector<NamedSeries>& series,
                  std::size_t points = 256);

void write_series_file(const std::string& path,
                       const std::vector<NamedSeries>& series,
                       std::size_t points = 256);

}  // namespace basrpt::report
