#include "report/csv.hpp"

#include <algorithm>
#include <fstream>
#include <limits>

#include "common/assert.hpp"

namespace basrpt::report {

namespace {

/// Last value at or before time t; 0 before the first sample.
double sample_and_hold(const stats::TimeSeries& series, double t) {
  const auto& points = series.points();
  double value = 0.0;
  // Series are small (bounded by the recorder's max_points); linear scan
  // per query would be O(n^2) over the grid, so binary search instead.
  const auto it = std::upper_bound(
      points.begin(), points.end(), t,
      [](double time, const stats::TimeSeries::Point& p) {
        return time < p.t;
      });
  if (it != points.begin()) {
    value = std::prev(it)->value;
  }
  return value;
}

}  // namespace

void write_series(std::ostream& out, const std::vector<NamedSeries>& series,
                  std::size_t points) {
  BASRPT_REQUIRE(!series.empty(), "need at least one series");
  BASRPT_REQUIRE(points >= 2, "need at least two grid points");

  double t_lo = std::numeric_limits<double>::infinity();
  double t_hi = -std::numeric_limits<double>::infinity();
  for (const NamedSeries& s : series) {
    BASRPT_REQUIRE(s.series != nullptr, "null series: " + s.name);
    if (s.series->empty()) {
      continue;
    }
    t_lo = std::min(t_lo, s.series->points().front().t);
    t_hi = std::max(t_hi, s.series->points().back().t);
  }
  BASRPT_REQUIRE(t_lo <= t_hi, "all series are empty");

  out << "time";
  for (const NamedSeries& s : series) {
    BASRPT_REQUIRE(s.name.find(',') == std::string::npos,
                   "series name contains a comma");
    out << "," << s.name;
  }
  out << "\n";

  for (std::size_t i = 0; i < points; ++i) {
    const double t =
        t_lo + (t_hi - t_lo) * static_cast<double>(i) /
                   static_cast<double>(points - 1);
    out << t;
    for (const NamedSeries& s : series) {
      out << "," << sample_and_hold(*s.series, t);
    }
    out << "\n";
  }
}

void write_series_file(const std::string& path,
                       const std::vector<NamedSeries>& series,
                       std::size_t points) {
  std::ofstream out(path);
  BASRPT_REQUIRE(out.good(), "cannot open CSV file for writing: " + path);
  write_series(out, series, points);
  BASRPT_REQUIRE(out.good(), "error writing CSV file: " + path);
}

}  // namespace basrpt::report
