// Gnuplot script generation for the paper's figures.
//
// Each figure bench can emit a CSV (report/csv.hpp) plus a matching .gp
// script; `gnuplot fig5b.gp` then renders a PNG that can sit next to the
// paper's figure. Scripts are plain text so they remain hand-editable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace basrpt::report {

/// One plotted line: a column of a CSV data file.
struct PlotSeries {
  std::string title;
  int column = 2;  // 1-based; column 1 is time
};

class GnuplotScript {
 public:
  GnuplotScript(std::string title, std::string xlabel, std::string ylabel);

  GnuplotScript& with_data(std::string csv_path);
  GnuplotScript& add_series(std::string title, int column);
  GnuplotScript& with_output(std::string png_path);
  GnuplotScript& with_logscale_y(bool enable = true);

  /// Renders the gnuplot program text.
  std::string render() const;

  void write_file(const std::string& path) const;

 private:
  std::string title_;
  std::string xlabel_;
  std::string ylabel_;
  std::string csv_path_;
  std::string png_path_ = "figure.png";
  bool logscale_y_ = false;
  std::vector<PlotSeries> series_;
};

}  // namespace basrpt::report
