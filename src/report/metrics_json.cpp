#include "report/metrics_json.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/assert.hpp"

namespace basrpt::report {

namespace {

/// Metric names are code-controlled identifiers, but escape the JSON
/// specials anyway so a stray name can't corrupt the document.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_histogram_json(std::ostream& out,
                          const obs::LatencyHistogram& h) {
  out << "{\"count\":" << h.count() << ",\"sum\":" << h.sum()
      << ",\"min\":" << h.min() << ",\"max\":" << h.max()
      << ",\"mean\":" << h.mean() << ",\"p50\":" << h.quantile(0.5)
      << ",\"p90\":" << h.quantile(0.9) << ",\"p99\":" << h.quantile(0.99)
      << ",\"p999\":" << h.quantile(0.999)
      << ",\"p9999\":" << h.quantile(0.9999) << ",\"buckets\":[";
  bool first = true;
  for (std::size_t k = 0; k < obs::LatencyHistogram::kBuckets; ++k) {
    if (h.bucket_count(k) == 0) {
      continue;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"lo\":" << obs::LatencyHistogram::bucket_lower(k)
        << ",\"count\":" << h.bucket_count(k) << "}";
  }
  out << "]}";
}

/// Note values are free-form text (stall diagnostics carry commas), so
/// CSV cells holding them are RFC-4180-quoted.
std::string csv_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else if (c == '\n' || c == '\r') {
      out += ' ';  // keep the file line-oriented for grep
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  BASRPT_REQUIRE(out.good(), "cannot open metrics output file: " + path);
  return out;
}

}  // namespace

void write_metrics_json(std::ostream& out, const obs::Registry& registry,
                        const std::string& status) {
  out << "{\n\"status\":\"" << json_escape(status) << "\",\n\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : registry.counters()) {
    out << (first ? "" : ",") << "\n\"" << json_escape(name)
        << "\":" << counter.value();
    first = false;
  }
  out << "\n},\n\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : registry.gauges()) {
    out << (first ? "" : ",") << "\n\"" << json_escape(name)
        << "\":{\"value\":" << gauge.value() << ",\"max\":" << gauge.max()
        << "}";
    first = false;
  }
  out << "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : registry.histograms()) {
    out << (first ? "" : ",") << "\n\"" << json_escape(name) << "\":";
    write_histogram_json(out, hist);
    first = false;
  }
  out << "\n},\n\"notes\":{";
  first = true;
  for (const auto& [name, note] : registry.notes()) {
    out << (first ? "" : ",") << "\n\"" << json_escape(name) << "\":\""
        << json_escape(note) << "\"";
    first = false;
  }
  out << "\n}\n}\n";
}

void write_metrics_csv(std::ostream& out, const obs::Registry& registry,
                       const std::string& status) {
  out << "kind,name,field,value\n";
  out << "run,status,," << status << "\n";
  for (const auto& [name, counter] : registry.counters()) {
    out << "counter," << name << ",value," << counter.value() << "\n";
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    out << "gauge," << name << ",value," << gauge.value() << "\n";
    out << "gauge," << name << ",max," << gauge.max() << "\n";
  }
  for (const auto& [name, hist] : registry.histograms()) {
    out << "histogram," << name << ",count," << hist.count() << "\n";
    out << "histogram," << name << ",sum," << hist.sum() << "\n";
    out << "histogram," << name << ",min," << hist.min() << "\n";
    out << "histogram," << name << ",max," << hist.max() << "\n";
    out << "histogram," << name << ",mean," << hist.mean() << "\n";
    out << "histogram," << name << ",p50," << hist.quantile(0.5) << "\n";
    out << "histogram," << name << ",p90," << hist.quantile(0.9) << "\n";
    out << "histogram," << name << ",p99," << hist.quantile(0.99) << "\n";
    out << "histogram," << name << ",p999," << hist.quantile(0.999) << "\n";
    out << "histogram," << name << ",p9999," << hist.quantile(0.9999) << "\n";
  }
  for (const auto& [name, note] : registry.notes()) {
    out << "note," << name << ",value," << csv_quote(note) << "\n";
  }
}

void write_metrics_json_file(const std::string& path,
                             const obs::Registry& registry,
                             const std::string& status) {
  auto out = open_or_throw(path);
  write_metrics_json(out, registry, status);
}

void write_metrics_csv_file(const std::string& path,
                            const obs::Registry& registry,
                            const std::string& status) {
  auto out = open_or_throw(path);
  write_metrics_csv(out, registry, status);
}

void write_metrics_file(const std::string& path,
                        const obs::Registry& registry,
                        const std::string& status) {
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    write_metrics_csv_file(path, registry, status);
  } else {
    write_metrics_json_file(path, registry, status);
  }
}

}  // namespace basrpt::report
