// Slotted input-queued switch simulator — the Sec. III model, verbatim.
//
// Time advances in unit slots. Packets all have the same length; during
// one slot at most one packet leaves each ingress port and at most one
// packet arrives at each egress port (the crossbar constraint). Flows
// arrive with all their packets at once. Queue evolution follows Eq. (1):
//   X_ij(t+1) = X_ij(t) + A_ij(t) − R_ij(t) + L_ij(t).
//
// Convention: arrivals stamped with slot t are visible to the scheduling
// decision of slot t (equivalently, they arrived "at the end of slot
// t−1" in the paper's phrasing). A flow arriving at slot t and finishing
// its last packet during slot c has FCT c − t + 1 slots.
//
// This simulator exists to validate the theory (Theorem 1's O(V) backlog
// and O(1/V) penalty-gap shapes, BvN stability, the Fig. 1 example) in a
// setting where the model's assumptions hold exactly; the flow-level
// simulator (src/flowsim) is the paper's evaluation vehicle.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "fabric/flow_lifecycle.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/watchdog.hpp"
#include "obs/trace.hpp"
#include "queueing/backlog_recorder.hpp"
#include "queueing/flow.hpp"
#include "queueing/lyapunov.hpp"
#include "queueing/voq.hpp"
#include "sched/scheduler.hpp"
#include "stats/fct.hpp"
#include "stats/timeseries.hpp"

namespace basrpt::switchsim {

using queueing::PortId;
using Slot = std::int64_t;

/// One flow arrival for the slotted model (sizes in packets).
struct SlottedArrival {
  Slot slot = 0;
  PortId src = 0;
  PortId dst = 0;
  Packets size = 0;
  stats::FlowClass cls = stats::FlowClass::kBackground;
};

/// Pull-based arrival stream, non-decreasing in slot.
using ArrivalStream = std::function<std::optional<SlottedArrival>()>;

/// Complete mid-run state, captured at the top of a slot before any of
/// that slot's processing. Resuming from it continues the run
/// bit-identically: every container below is serialized/restored in a
/// deterministic order (flows in VoqMatrix::for_each_flow order, which
/// re-adding reproduces exactly), and the arrival stream is replayed by
/// pull count against a freshly-seeded generator.
///
/// Plain data on purpose: the simulator exposes state, src/ckpt owns the
/// on-disk encoding, and neither depends on the other's internals.
struct SlottedSimState {
  Slot slot = 0;                    // next slot to execute
  std::uint64_t arrival_pulls = 0;  // total arrivals() invocations so far
  bool has_pending = false;
  SlottedArrival pending{};  // last pull not yet admitted (if has_pending)
  Slot last_slot_seen = 0;
  std::uint64_t scheduler_invocations = 0;
  std::int64_t delivered_packets = 0;
  /// Scheduler-internal state (Scheduler::checkpoint_state); empty for
  /// the stateless schedulers, the RNG words for randomized BvN.
  std::vector<std::uint64_t> scheduler_state;
  fabric::FlowLifecycle::State lifecycle;
  std::vector<queueing::Flow> flows;  // in for_each_flow order
  stats::FctAggregator::State fct;
  queueing::BacklogRecorder::State backlog;
  queueing::DriftTracker::State drift;
  stats::StreamingMoments::State penalty;
  stats::StreamingMoments::State backlog_packets;
  // Fault layer (populated only while a plan is attached).
  std::uint64_t fault_cursor = 0;        // transitions already applied
  fault::FaultStats fault_stats{};       // counters at capture time
  std::vector<double> credit;            // duty-cycle credit per port
  std::vector<queueing::FlowId> last_selected;
  /// candidates_masked accumulated before the capture; the resumed run's
  /// cache restarts its counter at zero, so the final stat is base + new.
  std::int64_t candidates_masked_base = 0;
};

struct SlottedConfig {
  PortId n_ports = 4;
  Slot horizon = 10'000;
  Slot sample_every = 16;      // backlog/Lyapunov sampling period
  PortId watched_src = 0;      // VOQ plotted as "queue length at a port"
  PortId watched_dst = 2;
  /// Optional flow-lifecycle tracer (times are slot indices). Purely
  /// passive; null disables.
  obs::FlowTracer* tracer = nullptr;
  /// Logs slot progress every N wall-seconds (<= 0 disables).
  double heartbeat_wall_sec = 0.0;
  /// Fault schedule in slot units (non-owning; must outlive the run).
  /// Degraded ports serve on a deterministic duty cycle (factor 0.5 =
  /// every other slot), dark ports are masked from scheduling,
  /// drop-decisions slots reuse the previous selection, rearrivals
  /// re-admit parked flows. Null/empty plan is pay-for-use.
  const fault::FaultPlan* fault_plan = nullptr;
  /// No-progress stall watchdog; default-disabled. The slotted clock
  /// advances every slot by construction, so only the wall-clock
  /// criterion is meaningful here.
  fault::WatchdogConfig watchdog{};
  /// Conservation auditing at every sampling instant (--paranoid); see
  /// fault::InvariantAuditor. Ledgers are exact packet counts.
  bool paranoid = false;

  // ---- Checkpoint/resume (see docs/CHECKPOINT.md) ----
  /// Capture cadence in slots (0 disables). At each multiple the run
  /// hands a SlottedSimState to `on_checkpoint` before processing the
  /// slot. Purely observational: results are bit-identical either way.
  Slot checkpoint_every = 0;
  std::function<void(const SlottedSimState&)> on_checkpoint;
  /// Resume point. The caller must pass the *same* config and a freshly
  /// constructed arrival stream seeded identically to the original run;
  /// the stream is replayed `arrival_pulls` times and cross-checked
  /// against the stored pending arrival. Non-owning.
  const SlottedSimState* resume_from = nullptr;
};

struct SlottedResult {
  stats::FctAggregator fct;                // FCTs in "seconds" == slots
  queueing::BacklogRecorder backlog;       // packets
  queueing::DriftTracker drift;            // Lyapunov drift per sample
  std::int64_t delivered_packets = 0;
  std::int64_t left_packets = 0;           // backlog at horizon
  std::int64_t left_flows = 0;
  Slot horizon = 0;
  /// Scheduler decide() calls (slots with at least one non-empty VOQ) —
  /// the counter flowsim already exposes, for decision-rate parity.
  std::uint64_t scheduler_invocations = 0;
  /// Time-average of the per-decision penalty ȳ(t) — the mean remaining
  /// size of the selected flows — the quantity Theorem 1 bounds within
  /// B'/V of the optimum.
  stats::StreamingMoments penalty;
  /// Time-average total backlog (packets), sampled every slot; Theorem 1
  /// bounds its mean as O(V).
  stats::StreamingMoments backlog_packets;
  fault::FaultStats fault_stats;  // zeros when no plan was attached

  SlottedResult(PortId watched_src, PortId watched_dst)
      : backlog(watched_src, watched_dst) {}

  /// Average service rate, packets per slot over all ports. A zero
  /// horizon (result inspected before/without a run) yields 0, not
  /// inf/NaN.
  double throughput_pkts_per_slot() const {
    if (horizon <= 0) {
      return 0.0;
    }
    return static_cast<double>(delivered_packets) /
           static_cast<double>(horizon);
  }
};

/// Runs the slotted simulation to `config.horizon`.
SlottedResult run_slotted(const SlottedConfig& config,
                          sched::Scheduler& scheduler,
                          const ArrivalStream& arrivals);

/// Adapts a vector of arrivals (e.g. workload::fig1_example converted to
/// packets) into an ArrivalStream.
ArrivalStream stream_from_vector(std::vector<SlottedArrival> arrivals);

}  // namespace basrpt::switchsim
