// Random flow-arrival processes for the slotted model.
//
// Per VOQ (i, j) with packet rate λ_ij, flows of mean size m packets
// arrive as a Bernoulli process with per-slot probability λ_ij / m — at
// most one flow per VOQ per slot, exactly the model assumption of
// Sec. III-B. Sizes come from a two-point small/large mix, the minimal
// distribution that exhibits the paper's "small queries preempt large
// transfers" mechanism and keeps E[A^2] bounded (the theorem's B).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "switchsim/slotted_sim.hpp"

namespace basrpt::switchsim {

/// Two-point flow-size mix (packets).
struct SizeMix {
  Packets small = 1;
  Packets large = 16;
  double p_small = 0.9;

  double mean() const {
    return p_small * static_cast<double>(small) +
           (1.0 - p_small) * static_cast<double>(large);
  }
};

/// Builds an ArrivalStream producing Bernoulli flow arrivals with packet
/// rates `rates[i][j]` (packets/slot; all line sums should be < 1 for a
/// stabilizable workload) and sizes from `mix`, up to `horizon`. Flows
/// of size > `query_cutoff` packets are classed kBackground, others
/// kQuery.
ArrivalStream bernoulli_arrivals(std::vector<std::vector<double>> rates,
                                 SizeMix mix, Slot horizon, Rng rng,
                                 Packets query_cutoff = 4);

/// Uniform admissible rate matrix: every off-diagonal entry carries
/// load/(N−1) packets/slot so each line sums to `load`.
std::vector<std::vector<double>> uniform_rates(PortId n_ports, double load);

/// Skewed matrix modeled on the paper's traffic spatial pattern: a
/// rack-local heavy entry per port pair plus a uniform query background.
/// `local_share` of the load goes to the designated partner port.
std::vector<std::vector<double>> skewed_rates(PortId n_ports, double load,
                                              double local_share);

}  // namespace basrpt::switchsim
