#include "switchsim/arrivals.hpp"

#include <cmath>
#include <memory>
#include <queue>

#include "common/assert.hpp"

namespace basrpt::switchsim {

namespace {

/// Geometric inter-arrival sampling: next success strictly after `t` for
/// a Bernoulli(p) process.
Slot next_arrival_after(Slot t, double p, Rng& rng) {
  BASRPT_ASSERT(p > 0.0 && p <= 1.0, "Bernoulli probability out of range");
  if (p >= 1.0) {
    return t + 1;
  }
  const double u = rng.uniform01();
  const auto gap = static_cast<Slot>(
      std::floor(std::log(1.0 - u) / std::log(1.0 - p))) + 1;
  return t + std::max<Slot>(gap, 1);
}

struct VoqProcess {
  Slot next_slot;
  PortId src;
  PortId dst;
  double p;
};

struct Later {
  bool operator()(const VoqProcess& a, const VoqProcess& b) const {
    if (a.next_slot != b.next_slot) {
      return a.next_slot > b.next_slot;
    }
    if (a.src != b.src) {
      return a.src > b.src;
    }
    return a.dst > b.dst;
  }
};

struct BernoulliState {
  std::priority_queue<VoqProcess, std::vector<VoqProcess>, Later> heap;
  SizeMix mix;
  Slot horizon;
  Rng rng;
  Packets query_cutoff;
};

}  // namespace

ArrivalStream bernoulli_arrivals(std::vector<std::vector<double>> rates,
                                 SizeMix mix, Slot horizon, Rng rng,
                                 Packets query_cutoff) {
  BASRPT_REQUIRE(mix.small >= 1 && mix.large >= mix.small,
                 "size mix must satisfy 1 <= small <= large");
  BASRPT_REQUIRE(mix.p_small >= 0.0 && mix.p_small <= 1.0,
                 "p_small must be a probability");
  const auto n = static_cast<PortId>(rates.size());
  BASRPT_REQUIRE(n >= 1, "rate matrix must be non-empty");

  auto state = std::make_shared<BernoulliState>();
  state->mix = mix;
  state->horizon = horizon;
  state->rng = rng;
  state->query_cutoff = query_cutoff;

  const double mean_size = mix.mean();
  Rng seeder = rng.split(0xBEEF);
  for (PortId i = 0; i < n; ++i) {
    BASRPT_REQUIRE(rates[static_cast<std::size_t>(i)].size() ==
                       static_cast<std::size_t>(n),
                   "rate matrix must be square");
    for (PortId j = 0; j < n; ++j) {
      const double lambda =
          rates[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (lambda <= 0.0) {
        continue;
      }
      const double p = lambda / mean_size;
      BASRPT_REQUIRE(p <= 1.0,
                     "per-slot flow probability exceeds 1; lower the load "
                     "or raise the mean flow size");
      VoqProcess proc{0, i, j, p};
      proc.next_slot = next_arrival_after(-1, p, seeder);
      state->heap.push(proc);
    }
  }

  return [state]() -> std::optional<SlottedArrival> {
    while (!state->heap.empty()) {
      VoqProcess proc = state->heap.top();
      state->heap.pop();
      if (proc.next_slot >= state->horizon) {
        continue;  // this VOQ's process ran past the horizon; drop it
      }
      SlottedArrival arrival;
      arrival.slot = proc.next_slot;
      arrival.src = proc.src;
      arrival.dst = proc.dst;
      const bool small = state->rng.bernoulli(state->mix.p_small);
      arrival.size = small ? state->mix.small : state->mix.large;
      arrival.cls = arrival.size <= state->query_cutoff
                        ? stats::FlowClass::kQuery
                        : stats::FlowClass::kBackground;
      proc.next_slot = next_arrival_after(proc.next_slot, proc.p, state->rng);
      state->heap.push(proc);
      return arrival;
    }
    return std::nullopt;
  };
}

std::vector<std::vector<double>> uniform_rates(PortId n_ports, double load) {
  BASRPT_REQUIRE(n_ports >= 2, "uniform rates need at least 2 ports");
  BASRPT_REQUIRE(load > 0.0 && load <= 1.0, "load must be in (0, 1]");
  const auto n = static_cast<std::size_t>(n_ports);
  std::vector<std::vector<double>> rates(n, std::vector<double>(n, 0.0));
  const double entry = load / static_cast<double>(n_ports - 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        rates[i][j] = entry;
      }
    }
  }
  return rates;
}

std::vector<std::vector<double>> skewed_rates(PortId n_ports, double load,
                                              double local_share) {
  BASRPT_REQUIRE(n_ports >= 4 && n_ports % 2 == 0,
                 "skewed rates pair up ports; need an even count >= 4");
  BASRPT_REQUIRE(load > 0.0 && load <= 1.0, "load must be in (0, 1]");
  BASRPT_REQUIRE(local_share > 0.0 && local_share < 1.0,
                 "local share must be in (0, 1)");
  const auto n = static_cast<std::size_t>(n_ports);
  std::vector<std::vector<double>> rates(n, std::vector<double>(n, 0.0));
  const double uniform_entry =
      load * (1.0 - local_share) / static_cast<double>(n_ports - 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        rates[i][j] = uniform_entry;
      }
    }
    // Partner of port i is i^1 (ports paired 0-1, 2-3, ...): the
    // "rack-local large transfer" destination.
    rates[i][i ^ 1] += load * local_share;
  }
  return rates;
}

}  // namespace basrpt::switchsim
