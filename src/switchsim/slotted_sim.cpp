#include "switchsim/slotted_sim.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "fabric/candidate_cache.hpp"
#include "fabric/flow_lifecycle.hpp"
#include "obs/heartbeat.hpp"

namespace basrpt::switchsim {

SlottedResult run_slotted(const SlottedConfig& config,
                          sched::Scheduler& scheduler,
                          const ArrivalStream& arrivals) {
  BASRPT_REQUIRE(config.n_ports >= 1, "need at least one port");
  BASRPT_REQUIRE(config.horizon >= 1, "horizon must be positive");
  BASRPT_REQUIRE(config.sample_every >= 1, "sample period must be positive");
  BASRPT_REQUIRE(config.watched_src >= 0 &&
                     config.watched_src < config.n_ports &&
                     config.watched_dst >= 0 &&
                     config.watched_dst < config.n_ports,
                 "watched VOQ out of range");

  queueing::VoqMatrix voqs(config.n_ports);
  SlottedResult result(config.watched_src, config.watched_dst);
  result.horizon = config.horizon;

  fabric::FlowLifecycle lifecycle(&voqs, result.fct, config.tracer);
  fabric::CandidateCache cache(voqs, /*unit_bytes=*/1.0, scheduler.needs());
  sched::Decision decision;

  std::optional<SlottedArrival> pending = arrivals();
  Slot last_slot_seen = pending ? pending->slot : 0;

  obs::Heartbeat heartbeat;
  if (config.heartbeat_wall_sec > 0.0) {
    heartbeat.configure(config.heartbeat_wall_sec);
  }
  fault::Watchdog watchdog;
  if (config.watchdog.enabled()) {
    watchdog.configure(config.watchdog);
  }

  // Fault support. Degraded ports serve on a deterministic duty cycle:
  // each slot a port's credit gains its capacity factor (capped at 1);
  // serving a packet costs one credit at the ingress and one at the
  // egress, so a factor-0.5 port forwards every other slot. Healthy
  // ports pin at credit 1 and never block. A blackout zeroes the credit
  // so the port doesn't spend a pre-fault surplus while dark.
  std::unique_ptr<fault::FaultInjector> injector;
  std::vector<double> credit;
  std::vector<queueing::FlowId> last_selected;  // for suppressed slots
  std::unordered_set<queueing::FlowId> scratch_set;
  std::vector<queueing::Flow> scratch_flows;
  Slot fault_now = 0;  // slot the injector hooks see as "now"
  if (config.fault_plan != nullptr && !config.fault_plan->empty()) {
    BASRPT_REQUIRE(config.fault_plan->max_port() <
                       static_cast<std::int32_t>(config.n_ports),
                   "fault plan references a port outside the fabric");
    credit.assign(static_cast<std::size_t>(config.n_ports), 1.0);
    fault::FaultHooks hooks;
    hooks.on_port_factor = [&cache, &credit](std::int32_t port,
                                             double factor) {
      cache.set_port_usable(static_cast<PortId>(port), factor > 0.0);
      if (factor <= 0.0) {
        credit[static_cast<std::size_t>(port)] = 0.0;
      }
    };
    hooks.on_rearrival = [&](std::int64_t count) {
      // Evict up to `count` parked flows (queued, not in the previous
      // slot's selection) and re-admit their remaining packets.
      scratch_set.clear();
      scratch_set.insert(last_selected.begin(), last_selected.end());
      scratch_flows.clear();
      voqs.for_each_flow([&](const queueing::Flow& f) {
        if (static_cast<std::int64_t>(scratch_flows.size()) >= count ||
            scratch_set.count(f.id) != 0) {
          return;
        }
        scratch_flows.push_back(f);
      });
      for (const queueing::Flow& f : scratch_flows) {
        voqs.remove(f.id);
        lifecycle.requeue(f, static_cast<double>(fault_now));
      }
    };
    injector = std::make_unique<fault::FaultInjector>(
        *config.fault_plan, static_cast<std::int32_t>(config.n_ports),
        std::move(hooks));
  }

  lifecycle.begin_run();

  for (Slot t = 0; t < config.horizon; ++t) {
    heartbeat.tick(static_cast<double>(t), static_cast<std::uint64_t>(t));
    watchdog.tick(static_cast<double>(t), static_cast<std::uint64_t>(t));
    if (injector != nullptr) {
      fault_now = t;
      injector->advance_to(static_cast<double>(t));
      for (PortId p = 0; p < config.n_ports; ++p) {
        const auto ip = static_cast<std::size_t>(p);
        credit[ip] = std::min(1.0, credit[ip] + injector->port_factor(p));
      }
    }
    // Admit arrivals stamped with this slot (visible to this decision).
    while (pending && pending->slot <= t) {
      BASRPT_ASSERT(pending->slot >= last_slot_seen,
                    "arrival stream went backwards in time");
      last_slot_seen = pending->slot;
      BASRPT_ASSERT(pending->size > 0, "flow must carry packets");
      lifecycle.admit({pending->src, pending->dst,
                       Bytes{pending->size},  // 1 byte == 1 packet here
                       SimTime{static_cast<double>(pending->slot)},
                       pending->cls});
      pending = arrivals();
    }

    result.backlog_packets.add(
        static_cast<double>(voqs.total_backlog().count));

    // Decide and serve one packet per selected flow.
    const auto& candidates = cache.refresh();
    decision.selected.clear();
    if (injector != nullptr && injector->decisions_suppressed()) {
      // Control loss: the new decision never reaches the crossbar, so
      // the previous slot's selection persists (minus completed flows —
      // a matching stays a matching under deletion).
      if (!candidates.empty()) {
        ++injector->stats().decisions_suppressed;
      }
      for (const queueing::FlowId id : last_selected) {
        if (voqs.contains(id)) {
          decision.selected.push_back(id);
        }
      }
    } else if (!candidates.empty()) {
      ++result.scheduler_invocations;
      scheduler.decide_into(config.n_ports, candidates, decision);
      BASRPT_ASSERT(sched::decision_is_matching(decision, voqs),
                    "scheduler violated the crossbar constraint");
    }
    if (injector != nullptr) {
      // Ports without a credit this slot (degraded duty cycle, dark)
      // cannot move a packet; their flows drop out of the served set.
      auto& sel = decision.selected;
      sel.erase(std::remove_if(sel.begin(), sel.end(),
                               [&](queueing::FlowId id) {
                                 const queueing::Flow& f = voqs.flow(id);
                                 const auto si =
                                     static_cast<std::size_t>(f.src);
                                 const auto di =
                                     static_cast<std::size_t>(f.dst);
                                 return credit[si] < 1.0 || credit[di] < 1.0;
                               }),
                sel.end());
      for (const queueing::FlowId id : sel) {
        const queueing::Flow& f = voqs.flow(id);
        credit[static_cast<std::size_t>(f.src)] -= 1.0;
        credit[static_cast<std::size_t>(f.dst)] -= 1.0;
      }
      last_selected = sel;
    }
    const std::vector<queueing::FlowId>& selected = decision.selected;
    lifecycle.apply_decision(selected, static_cast<double>(t));
    if (!selected.empty()) {
      double selected_size = 0.0;
      for (const queueing::FlowId id : selected) {
        selected_size +=
            static_cast<double>(voqs.flow(id).remaining.count);
      }
      result.penalty.add(selected_size /
                         static_cast<double>(selected.size()));
    }
    for (const queueing::FlowId id : selected) {
      const queueing::Flow flow_copy = voqs.flow(id);
      const bool completed = voqs.drain(id, Bytes{1});
      ++result.delivered_packets;
      if (completed) {
        // Flow::arrival stores the arrival slot.
        const Slot fct_slots =
            t - static_cast<Slot>(flow_copy.arrival.seconds) + 1;
        lifecycle.record_completion(flow_copy.cls, flow_copy.id,
                                    flow_copy.src, flow_copy.dst,
                                    flow_copy.size,
                                    SimTime{static_cast<double>(fct_slots)},
                                    static_cast<double>(t));
      }
    }

    if (t % config.sample_every == 0) {
      const SimTime now{static_cast<double>(t)};
      result.backlog.sample(now, voqs);
      result.drift.observe(queueing::lyapunov_value(voqs, 1.0));
    }
  }

  heartbeat.flush(static_cast<double>(config.horizon),
                  static_cast<std::uint64_t>(config.horizon));
  result.left_packets = voqs.total_backlog().count;
  result.left_flows = static_cast<std::int64_t>(voqs.active_flows());
  if (injector != nullptr) {
    result.fault_stats = injector->stats();
    result.fault_stats.flows_requeued = lifecycle.flows_requeued();
    result.fault_stats.candidates_masked =
        static_cast<std::int64_t>(cache.candidates_masked());
  }
  return result;
}

ArrivalStream stream_from_vector(std::vector<SlottedArrival> arrivals) {
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    BASRPT_REQUIRE(arrivals[i].slot >= arrivals[i - 1].slot,
                   "slotted arrivals must be sorted by slot");
  }
  auto state = std::make_shared<std::pair<std::vector<SlottedArrival>,
                                          std::size_t>>(std::move(arrivals),
                                                        0);
  return [state]() -> std::optional<SlottedArrival> {
    if (state->second >= state->first.size()) {
      return std::nullopt;
    }
    return state->first[state->second++];
  };
}

}  // namespace basrpt::switchsim
