#include "switchsim/slotted_sim.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "obs/heartbeat.hpp"

namespace basrpt::switchsim {

SlottedResult run_slotted(const SlottedConfig& config,
                          sched::Scheduler& scheduler,
                          const ArrivalStream& arrivals) {
  BASRPT_REQUIRE(config.n_ports >= 1, "need at least one port");
  BASRPT_REQUIRE(config.horizon >= 1, "horizon must be positive");
  BASRPT_REQUIRE(config.sample_every >= 1, "sample period must be positive");
  BASRPT_REQUIRE(config.watched_src >= 0 &&
                     config.watched_src < config.n_ports &&
                     config.watched_dst >= 0 &&
                     config.watched_dst < config.n_ports,
                 "watched VOQ out of range");

  queueing::VoqMatrix voqs(config.n_ports);
  SlottedResult result(config.watched_src, config.watched_dst);
  result.horizon = config.horizon;

  std::unordered_map<queueing::FlowId, Slot> arrival_slot;
  queueing::FlowId next_id = 0;

  std::optional<SlottedArrival> pending = arrivals();
  Slot last_slot_seen = pending ? pending->slot : 0;

  obs::Heartbeat heartbeat;
  if (config.heartbeat_wall_sec > 0.0) {
    heartbeat.configure(config.heartbeat_wall_sec);
  }
  if (config.tracer != nullptr) {
    config.tracer->begin_run();
  }
  // Previous slot's selected flows, tracked only when tracing (for
  // preemption detection); instrumentation never alters the decisions.
  std::vector<queueing::FlowId> prev_selected;

  for (Slot t = 0; t < config.horizon; ++t) {
    heartbeat.tick(static_cast<double>(t), static_cast<std::uint64_t>(t));
    // Admit arrivals stamped with this slot (visible to this decision).
    while (pending && pending->slot <= t) {
      BASRPT_ASSERT(pending->slot >= last_slot_seen,
                    "arrival stream went backwards in time");
      last_slot_seen = pending->slot;
      BASRPT_ASSERT(pending->size > 0, "flow must carry packets");
      queueing::Flow flow;
      flow.id = next_id++;
      flow.src = pending->src;
      flow.dst = pending->dst;
      flow.size = Bytes{pending->size};  // 1 byte == 1 packet here
      flow.remaining = flow.size;
      flow.arrival = SimTime{static_cast<double>(pending->slot)};
      flow.cls = pending->cls;
      voqs.add_flow(flow);
      arrival_slot.emplace(flow.id, pending->slot);
      if (config.tracer != nullptr) {
        config.tracer->on_arrival(flow.id, flow.src, flow.dst,
                                  static_cast<double>(pending->slot),
                                  static_cast<double>(pending->size));
      }
      pending = arrivals();
    }

    result.backlog_packets.add(
        static_cast<double>(voqs.total_backlog().count));

    // Decide and serve one packet per selected flow.
    const auto candidates = sched::build_candidates(voqs, 1.0);
    std::vector<queueing::FlowId> selected;
    if (!candidates.empty()) {
      ++result.scheduler_invocations;
      auto decision = scheduler.decide(config.n_ports, candidates);
      BASRPT_ASSERT(sched::decision_is_matching(decision, voqs),
                    "scheduler violated the crossbar constraint");
      selected = std::move(decision.selected);
    }
    if (config.tracer != nullptr) {
      // Preempted: served last slot, still backlogged, not served now.
      const double now = static_cast<double>(t);
      for (const queueing::FlowId id : prev_selected) {
        if (!voqs.contains(id) ||
            std::find(selected.begin(), selected.end(), id) !=
                selected.end()) {
          continue;
        }
        const queueing::Flow& f = voqs.flow(id);
        config.tracer->on_preemption(f.id, f.src, f.dst, now,
                                     static_cast<double>(f.size.count),
                                     static_cast<double>(f.remaining.count));
      }
      for (const queueing::FlowId id : selected) {
        const queueing::Flow& f = voqs.flow(id);
        config.tracer->on_service(f.id, f.src, f.dst, now,
                                  static_cast<double>(f.size.count),
                                  static_cast<double>(f.remaining.count));
      }
    }
    if (!selected.empty()) {
      double selected_size = 0.0;
      for (const queueing::FlowId id : selected) {
        selected_size +=
            static_cast<double>(voqs.flow(id).remaining.count);
      }
      result.penalty.add(selected_size /
                         static_cast<double>(selected.size()));
    }
    for (const queueing::FlowId id : selected) {
      const queueing::Flow flow_copy = voqs.flow(id);
      const bool completed = voqs.drain(id, Bytes{1});
      ++result.delivered_packets;
      if (completed) {
        const auto it = arrival_slot.find(id);
        BASRPT_ASSERT(it != arrival_slot.end(), "unknown completed flow");
        const Slot fct_slots = t - it->second + 1;
        result.fct.record(flow_copy.cls,
                          SimTime{static_cast<double>(fct_slots)},
                          flow_copy.size);
        arrival_slot.erase(it);
        if (config.tracer != nullptr) {
          config.tracer->on_completion(
              flow_copy.id, flow_copy.src, flow_copy.dst,
              static_cast<double>(t),
              static_cast<double>(flow_copy.size.count));
        }
      }
    }
    if (config.tracer != nullptr) {
      prev_selected = std::move(selected);
    }

    if (t % config.sample_every == 0) {
      const SimTime now{static_cast<double>(t)};
      result.backlog.sample(now, voqs);
      result.drift.observe(queueing::lyapunov_value(voqs, 1.0));
    }
  }

  heartbeat.flush(static_cast<double>(config.horizon),
                  static_cast<std::uint64_t>(config.horizon));
  result.left_packets = voqs.total_backlog().count;
  result.left_flows = static_cast<std::int64_t>(voqs.active_flows());
  return result;
}

ArrivalStream stream_from_vector(std::vector<SlottedArrival> arrivals) {
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    BASRPT_REQUIRE(arrivals[i].slot >= arrivals[i - 1].slot,
                   "slotted arrivals must be sorted by slot");
  }
  auto state = std::make_shared<std::pair<std::vector<SlottedArrival>,
                                          std::size_t>>(std::move(arrivals),
                                                        0);
  return [state]() -> std::optional<SlottedArrival> {
    if (state->second >= state->first.size()) {
      return std::nullopt;
    }
    return state->first[state->second++];
  };
}

}  // namespace basrpt::switchsim
