#include "switchsim/slotted_sim.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/interrupt.hpp"
#include "fabric/candidate_cache.hpp"
#include "fabric/flow_lifecycle.hpp"
#include "fault/auditor.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "perf/profiler.hpp"

namespace basrpt::switchsim {

SlottedResult run_slotted(const SlottedConfig& config,
                          sched::Scheduler& scheduler,
                          const ArrivalStream& arrivals) {
  BASRPT_REQUIRE(config.n_ports >= 1, "need at least one port");
  BASRPT_REQUIRE(config.horizon >= 1, "horizon must be positive");
  BASRPT_REQUIRE(config.sample_every >= 1, "sample period must be positive");
  BASRPT_REQUIRE(config.watched_src >= 0 &&
                     config.watched_src < config.n_ports &&
                     config.watched_dst >= 0 &&
                     config.watched_dst < config.n_ports,
                 "watched VOQ out of range");

  queueing::VoqMatrix voqs(config.n_ports);
  SlottedResult result(config.watched_src, config.watched_dst);
  result.horizon = config.horizon;

  fabric::FlowLifecycle lifecycle(&voqs, result.fct, config.tracer);
  fabric::CandidateCache cache(voqs, /*unit_bytes=*/1.0,
                               scheduler.needs_arrival_lane());
  sched::Decision decision;
  fault::InvariantAuditor auditor("switchsim");

  // Every arrivals() call is counted so a resumed run can replay the
  // deterministic stream to the exact pull the checkpoint was taken at.
  std::uint64_t arrival_pulls = 0;
  auto pull = [&]() {
    ++arrival_pulls;
    return arrivals();
  };
  std::optional<SlottedArrival> pending;
  Slot last_slot_seen = 0;
  if (config.resume_from == nullptr) {
    pending = pull();
    last_slot_seen = pending ? pending->slot : 0;
  }

  obs::Heartbeat heartbeat;
  if (config.heartbeat_wall_sec > 0.0) {
    heartbeat.configure(config.heartbeat_wall_sec);
  }
  fault::Watchdog watchdog;
  if (config.watchdog.enabled()) {
    watchdog.configure(config.watchdog);
  }

  // Fault support. Degraded ports serve on a deterministic duty cycle:
  // each slot a port's credit gains its capacity factor (capped at 1);
  // serving a packet costs one credit at the ingress and one at the
  // egress, so a factor-0.5 port forwards every other slot. Healthy
  // ports pin at credit 1 and never block. A blackout zeroes the credit
  // so the port doesn't spend a pre-fault surplus while dark.
  std::unique_ptr<fault::FaultInjector> injector;
  std::vector<double> credit;
  std::vector<queueing::FlowId> last_selected;  // for suppressed slots
  std::unordered_set<queueing::FlowId> scratch_set;
  std::vector<queueing::Flow> scratch_flows;
  Slot fault_now = 0;  // slot the injector hooks see as "now"
  if (config.fault_plan != nullptr && !config.fault_plan->empty()) {
    BASRPT_REQUIRE(config.fault_plan->max_port() <
                       static_cast<std::int32_t>(config.n_ports),
                   "fault plan references a port outside the fabric");
    credit.assign(static_cast<std::size_t>(config.n_ports), 1.0);
    fault::FaultHooks hooks;
    hooks.on_port_factor = [&cache, &credit](std::int32_t port,
                                             double factor) {
      cache.set_port_usable(static_cast<PortId>(port), factor > 0.0);
      if (factor <= 0.0) {
        credit[static_cast<std::size_t>(port)] = 0.0;
      }
    };
    hooks.on_rearrival = [&](std::int64_t count) {
      // Evict up to `count` parked flows (queued, not in the previous
      // slot's selection) and re-admit their remaining packets.
      scratch_set.clear();
      scratch_set.insert(last_selected.begin(), last_selected.end());
      scratch_flows.clear();
      voqs.for_each_flow([&](const queueing::Flow& f) {
        if (static_cast<std::int64_t>(scratch_flows.size()) >= count ||
            scratch_set.count(f.id) != 0) {
          return;
        }
        scratch_flows.push_back(f);
      });
      for (const queueing::Flow& f : scratch_flows) {
        voqs.remove(f.id);
        lifecycle.requeue(f, static_cast<double>(fault_now));
      }
    };
    injector = std::make_unique<fault::FaultInjector>(
        *config.fault_plan, static_cast<std::int32_t>(config.n_ports),
        std::move(hooks));
    if (config.watchdog.enabled()) {
      // A scripted blackout/control-loss window legitimately freezes
      // progress; the watchdog must wait the window out (see
      // FaultInjector::in_disruption).
      watchdog.set_suppress_when(
          [&injector]() { return injector->in_disruption(); });
    }
  }
  std::int64_t candidates_masked_base = 0;

  /// Top-of-slot snapshot: slot t's processing has not begun, so every
  /// container is at its end-of-slot-(t-1) value. Flows travel in
  /// for_each_flow order; re-adding them in that order rebuilds the
  /// VoqMatrix (and hence the candidate view) bit-identically.
  auto capture = [&](Slot t) {
    SlottedSimState s;
    s.slot = t;
    s.arrival_pulls = arrival_pulls;
    s.has_pending = pending.has_value();
    if (pending) {
      s.pending = *pending;
    }
    s.last_slot_seen = last_slot_seen;
    s.scheduler_invocations = result.scheduler_invocations;
    s.delivered_packets = result.delivered_packets;
    s.scheduler_state = scheduler.checkpoint_state();
    s.lifecycle = lifecycle.state();
    s.flows.reserve(voqs.active_flows());
    voqs.for_each_flow(
        [&s](const queueing::Flow& f) { s.flows.push_back(f); });
    s.fct = result.fct.state();
    s.backlog = result.backlog.state();
    s.drift = result.drift.state();
    s.penalty = result.penalty.state();
    s.backlog_packets = result.backlog_packets.state();
    if (injector != nullptr) {
      s.fault_cursor = injector->cursor();
      s.fault_stats = injector->stats();
      s.credit = credit;
      s.last_selected = last_selected;
      s.candidates_masked_base =
          candidates_masked_base +
          static_cast<std::int64_t>(cache.candidates_masked());
    }
    return s;
  };

  Slot start_slot = 0;
  if (config.resume_from != nullptr) {
    const SlottedSimState& s = *config.resume_from;
    BASRPT_REQUIRE(s.slot >= 0 && s.slot <= config.horizon,
                   "checkpoint slot " + std::to_string(s.slot) +
                       " outside the configured horizon");
    // Replay the deterministic stream up to the checkpointed pull count;
    // the final pull must reproduce the stored pending arrival, or the
    // stream is not the one the checkpoint was taken against.
    for (std::uint64_t i = 0; i < s.arrival_pulls; ++i) {
      pending = pull();
    }
    BASRPT_REQUIRE(pending.has_value() == s.has_pending &&
                       (!pending ||
                        (pending->slot == s.pending.slot &&
                         pending->src == s.pending.src &&
                         pending->dst == s.pending.dst &&
                         pending->size == s.pending.size &&
                         pending->cls == s.pending.cls)),
                   "arrival stream diverged from checkpoint (wrong seed or "
                   "workload config?)");
    last_slot_seen = s.last_slot_seen;
    for (const queueing::Flow& f : s.flows) {
      voqs.add_flow(f);
    }
    lifecycle.restore(s.lifecycle);
    result.fct.restore(s.fct);
    result.backlog.restore(s.backlog);
    result.drift.restore(s.drift);
    result.penalty.restore(s.penalty);
    result.backlog_packets.restore(s.backlog_packets);
    result.scheduler_invocations = s.scheduler_invocations;
    result.delivered_packets = s.delivered_packets;
    scheduler.restore_checkpoint_state(s.scheduler_state);
    if (injector != nullptr) {
      injector->restore_cursor(s.fault_cursor);
      injector->stats() = s.fault_stats;
      BASRPT_REQUIRE(s.credit.size() ==
                         static_cast<std::size_t>(config.n_ports),
                     "checkpoint credit vector does not match port count");
      credit = s.credit;
      last_selected = s.last_selected;
      candidates_masked_base = s.candidates_masked_base;
      // Rebuild derived masking (restore_cursor fires no hooks).
      for (PortId p = 0; p < config.n_ports; ++p) {
        cache.set_port_usable(p, injector->port_usable(p));
      }
    } else {
      BASRPT_REQUIRE(s.fault_cursor == 0 && s.credit.empty(),
                     "checkpoint carries fault state but no plan is attached");
    }
    start_slot = s.slot;
  }

  lifecycle.begin_run();

  for (Slot t = start_slot; t < config.horizon; ++t) {
    if ((t & 63) == 0 && interrupt_requested()) {
      // SIGINT/SIGTERM under a ckpt::SignalGuard: hand the caller a final
      // snapshot (slot boundary, fully consistent) before unwinding.
      if (config.on_checkpoint) {
        config.on_checkpoint(capture(t));
      }
      throw InterruptedError(interrupt_signal());
    }
    if (config.checkpoint_every > 0 && config.on_checkpoint &&
        t > start_slot && t % config.checkpoint_every == 0) {
      config.on_checkpoint(capture(t));
    }
    heartbeat.tick(static_cast<double>(t), static_cast<std::uint64_t>(t));
    try {
      watchdog.tick(static_cast<double>(t), static_cast<std::uint64_t>(t));
    } catch (const fault::StallError&) {
      // Nothing of slot t has run yet, so the snapshot is consistent:
      // a stalled run leaves a resume point behind.
      if (config.on_checkpoint) {
        config.on_checkpoint(capture(t));
      }
      throw;
    }
    if (injector != nullptr) {
      fault_now = t;
      injector->advance_to(static_cast<double>(t));
      for (PortId p = 0; p < config.n_ports; ++p) {
        const auto ip = static_cast<std::size_t>(p);
        credit[ip] = std::min(1.0, credit[ip] + injector->port_factor(p));
      }
    }
    // Admit arrivals stamped with this slot (visible to this decision).
    while (pending && pending->slot <= t) {
      BASRPT_ASSERT(pending->slot >= last_slot_seen,
                    "arrival stream went backwards in time");
      last_slot_seen = pending->slot;
      BASRPT_ASSERT(pending->size > 0, "flow must carry packets");
      lifecycle.admit({pending->src, pending->dst,
                       Bytes{pending->size},  // 1 byte == 1 packet here
                       SimTime{static_cast<double>(pending->slot)},
                       pending->cls});
      pending = pull();
    }

    result.backlog_packets.add(
        static_cast<double>(voqs.total_backlog().count));

    // Decide and serve one packet per selected flow.
    const auto& candidates = cache.refresh();
    decision.selected.clear();
    if (injector != nullptr && injector->decisions_suppressed()) {
      // Control loss: the new decision never reaches the crossbar, so
      // the previous slot's selection persists (minus completed flows —
      // a matching stays a matching under deletion).
      if (!candidates.empty()) {
        ++injector->stats().decisions_suppressed;
      }
      for (const queueing::FlowId id : last_selected) {
        if (voqs.contains(id)) {
          decision.selected.push_back(id);
        }
      }
    } else if (!candidates.empty()) {
      ++result.scheduler_invocations;
      {
        const perf::ScopedPhase phase(perf::Phase::kDecide);
        scheduler.decide_into(config.n_ports, candidates, decision);
      }
      BASRPT_ASSERT(sched::decision_is_matching(decision, voqs),
                    "scheduler violated the crossbar constraint");
    }
    if (injector != nullptr) {
      // Ports without a credit this slot (degraded duty cycle, dark)
      // cannot move a packet; their flows drop out of the served set.
      auto& sel = decision.selected;
      sel.erase(std::remove_if(sel.begin(), sel.end(),
                               [&](queueing::FlowId id) {
                                 const queueing::Flow& f = voqs.flow(id);
                                 const auto si =
                                     static_cast<std::size_t>(f.src);
                                 const auto di =
                                     static_cast<std::size_t>(f.dst);
                                 return credit[si] < 1.0 || credit[di] < 1.0;
                               }),
                sel.end());
      for (const queueing::FlowId id : sel) {
        const queueing::Flow& f = voqs.flow(id);
        credit[static_cast<std::size_t>(f.src)] -= 1.0;
        credit[static_cast<std::size_t>(f.dst)] -= 1.0;
      }
      last_selected = sel;
    }
    const std::vector<queueing::FlowId>& selected = decision.selected;
    lifecycle.apply_decision(selected, static_cast<double>(t));
    if (!selected.empty()) {
      double selected_size = 0.0;
      for (const queueing::FlowId id : selected) {
        selected_size +=
            static_cast<double>(voqs.flow(id).remaining.count);
      }
      result.penalty.add(selected_size /
                         static_cast<double>(selected.size()));
    }
    for (const queueing::FlowId id : selected) {
      const queueing::Flow flow_copy = voqs.flow(id);
      const bool completed = voqs.drain(id, Bytes{1});
      ++result.delivered_packets;
      if (completed) {
        // Flow::arrival stores the arrival slot.
        const Slot fct_slots =
            t - static_cast<Slot>(flow_copy.arrival.seconds) + 1;
        lifecycle.record_completion(flow_copy.cls, flow_copy.id,
                                    flow_copy.src, flow_copy.dst,
                                    flow_copy.size,
                                    SimTime{static_cast<double>(fct_slots)},
                                    static_cast<double>(t));
      }
    }

    if (t % config.sample_every == 0) {
      const SimTime now{static_cast<double>(t)};
      result.backlog.sample(now, voqs);
      result.drift.observe(queueing::lyapunov_value(voqs, 1.0));
      if (config.paranoid) {
        // Admission stores packets as bytes (1 byte == 1 packet), so the
        // lifecycle's byte counter IS the admitted-packet ledger.
        auditor.audit(
            static_cast<double>(t),
            {{"packets",
              {{"packets_arrived", lifecycle.bytes_arrived().count}},
              {{"delivered", result.delivered_packets},
               {"backlog", voqs.total_backlog().count}}},
             {"flows",
              {{"flows_arrived", lifecycle.flows_arrived()}},
              {{"completed", lifecycle.flows_completed()},
               {"active",
                static_cast<std::int64_t>(voqs.active_flows())}}}});
      }
    }
  }

  heartbeat.flush(static_cast<double>(config.horizon),
                  static_cast<std::uint64_t>(config.horizon));
  if (watchdog.active() && obs::enabled()) {
    watchdog.export_metrics(obs::Registry::active(), "switchsim");
  }
  result.left_packets = voqs.total_backlog().count;
  result.left_flows = static_cast<std::int64_t>(voqs.active_flows());
  if (injector != nullptr) {
    result.fault_stats = injector->stats();
    result.fault_stats.flows_requeued = lifecycle.flows_requeued();
    result.fault_stats.candidates_masked =
        candidates_masked_base +
        static_cast<std::int64_t>(cache.candidates_masked());
  }
  return result;
}

ArrivalStream stream_from_vector(std::vector<SlottedArrival> arrivals) {
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    BASRPT_REQUIRE(arrivals[i].slot >= arrivals[i - 1].slot,
                   "slotted arrivals must be sorted by slot");
  }
  auto state = std::make_shared<std::pair<std::vector<SlottedArrival>,
                                          std::size_t>>(std::move(arrivals),
                                                        0);
  return [state]() -> std::optional<SlottedArrival> {
    if (state->second >= state->first.size()) {
      return std::nullopt;
    }
    return state->first[state->second++];
  };
}

}  // namespace basrpt::switchsim
