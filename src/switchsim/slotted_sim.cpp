#include "switchsim/slotted_sim.hpp"

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "fabric/candidate_cache.hpp"
#include "fabric/flow_lifecycle.hpp"
#include "obs/heartbeat.hpp"

namespace basrpt::switchsim {

SlottedResult run_slotted(const SlottedConfig& config,
                          sched::Scheduler& scheduler,
                          const ArrivalStream& arrivals) {
  BASRPT_REQUIRE(config.n_ports >= 1, "need at least one port");
  BASRPT_REQUIRE(config.horizon >= 1, "horizon must be positive");
  BASRPT_REQUIRE(config.sample_every >= 1, "sample period must be positive");
  BASRPT_REQUIRE(config.watched_src >= 0 &&
                     config.watched_src < config.n_ports &&
                     config.watched_dst >= 0 &&
                     config.watched_dst < config.n_ports,
                 "watched VOQ out of range");

  queueing::VoqMatrix voqs(config.n_ports);
  SlottedResult result(config.watched_src, config.watched_dst);
  result.horizon = config.horizon;

  fabric::FlowLifecycle lifecycle(&voqs, result.fct, config.tracer);
  fabric::CandidateCache cache(voqs, /*unit_bytes=*/1.0, scheduler.needs());
  sched::Decision decision;

  std::optional<SlottedArrival> pending = arrivals();
  Slot last_slot_seen = pending ? pending->slot : 0;

  obs::Heartbeat heartbeat;
  if (config.heartbeat_wall_sec > 0.0) {
    heartbeat.configure(config.heartbeat_wall_sec);
  }
  lifecycle.begin_run();

  for (Slot t = 0; t < config.horizon; ++t) {
    heartbeat.tick(static_cast<double>(t), static_cast<std::uint64_t>(t));
    // Admit arrivals stamped with this slot (visible to this decision).
    while (pending && pending->slot <= t) {
      BASRPT_ASSERT(pending->slot >= last_slot_seen,
                    "arrival stream went backwards in time");
      last_slot_seen = pending->slot;
      BASRPT_ASSERT(pending->size > 0, "flow must carry packets");
      lifecycle.admit({pending->src, pending->dst,
                       Bytes{pending->size},  // 1 byte == 1 packet here
                       SimTime{static_cast<double>(pending->slot)},
                       pending->cls});
      pending = arrivals();
    }

    result.backlog_packets.add(
        static_cast<double>(voqs.total_backlog().count));

    // Decide and serve one packet per selected flow.
    const auto& candidates = cache.refresh();
    decision.selected.clear();
    if (!candidates.empty()) {
      ++result.scheduler_invocations;
      scheduler.decide_into(config.n_ports, candidates, decision);
      BASRPT_ASSERT(sched::decision_is_matching(decision, voqs),
                    "scheduler violated the crossbar constraint");
    }
    const std::vector<queueing::FlowId>& selected = decision.selected;
    lifecycle.apply_decision(selected, static_cast<double>(t));
    if (!selected.empty()) {
      double selected_size = 0.0;
      for (const queueing::FlowId id : selected) {
        selected_size +=
            static_cast<double>(voqs.flow(id).remaining.count);
      }
      result.penalty.add(selected_size /
                         static_cast<double>(selected.size()));
    }
    for (const queueing::FlowId id : selected) {
      const queueing::Flow flow_copy = voqs.flow(id);
      const bool completed = voqs.drain(id, Bytes{1});
      ++result.delivered_packets;
      if (completed) {
        // Flow::arrival stores the arrival slot.
        const Slot fct_slots =
            t - static_cast<Slot>(flow_copy.arrival.seconds) + 1;
        lifecycle.record_completion(flow_copy.cls, flow_copy.id,
                                    flow_copy.src, flow_copy.dst,
                                    flow_copy.size,
                                    SimTime{static_cast<double>(fct_slots)},
                                    static_cast<double>(t));
      }
    }

    if (t % config.sample_every == 0) {
      const SimTime now{static_cast<double>(t)};
      result.backlog.sample(now, voqs);
      result.drift.observe(queueing::lyapunov_value(voqs, 1.0));
    }
  }

  heartbeat.flush(static_cast<double>(config.horizon),
                  static_cast<std::uint64_t>(config.horizon));
  result.left_packets = voqs.total_backlog().count;
  result.left_flows = static_cast<std::int64_t>(voqs.active_flows());
  return result;
}

ArrivalStream stream_from_vector(std::vector<SlottedArrival> arrivals) {
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    BASRPT_REQUIRE(arrivals[i].slot >= arrivals[i - 1].slot,
                   "slotted arrivals must be sorted by slot");
  }
  auto state = std::make_shared<std::pair<std::vector<SlottedArrival>,
                                          std::size_t>>(std::move(arrivals),
                                                        0);
  return [state]() -> std::optional<SlottedArrival> {
    if (state->second >= state->first.size()) {
      return std::nullopt;
    }
    return state->first[state->second++];
  };
}

}  // namespace basrpt::switchsim
