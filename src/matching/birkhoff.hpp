// Doubly-stochastic completion and Birkhoff–von-Neumann decomposition.
//
// Sec. IV-A of the paper: any admissible rate matrix Λ (all line sums
// <= 1) can be raised to a doubly stochastic matrix M, and by Birkhoff's
// theorem M = Σ u(σ) · M(σ) is a convex combination of permutation
// matrices. A scheduler that draws permutation σ with probability u(σ)
// serves every VOQ at rate >= λ_ij; the paper uses this construction to
// define the delay-optimal reference α* in the proof of Theorem 1. We
// implement it both to validate that argument in tests and to provide the
// randomized BvN reference scheduler.
#pragma once

#include <vector>

#include "matching/bipartite.hpp"

namespace basrpt::matching {

/// Square non-negative matrix, rates[i][j] in "packets per slot".
using RateMatrix = std::vector<std::vector<double>>;

/// Maximum line (row or column) sum of a square matrix.
double max_line_sum(const RateMatrix& rates);

/// Raises entries of `rates` (never lowers) until every row and column
/// sums to exactly 1. Requires all line sums <= 1 + tolerance.
/// Throws ConfigError otherwise.
RateMatrix complete_to_doubly_stochastic(RateMatrix rates,
                                         double tolerance = 1e-9);

/// One term of a Birkhoff decomposition.
struct BvnTerm {
  Matching permutation;  // perfect matching over N ports
  double weight;         // convex coefficient u(sigma)
};

/// Decomposes a doubly stochastic matrix into at most N^2 - 2N + 2
/// permutation terms (Birkhoff). Weights sum to ~1 within `tolerance`.
std::vector<BvnTerm> birkhoff_decompose(RateMatrix doubly_stochastic,
                                        double tolerance = 1e-9);

/// Reconstructs Σ weight · M(σ) from decomposition terms (test helper).
RateMatrix reconstruct(const std::vector<BvnTerm>& terms, PortId n);

}  // namespace basrpt::matching
