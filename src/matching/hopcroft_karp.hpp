// Hopcroft–Karp maximum-cardinality bipartite matching, O(E * sqrt(V)).
//
// Used by the Birkhoff–von-Neumann decomposition (each extracted
// permutation must be a perfect matching on the positive support) and by
// tests as a ground-truth cardinality oracle for the greedy matchers.
#pragma once

#include <vector>

#include "matching/bipartite.hpp"

namespace basrpt::matching {

/// Adjacency-list bipartite graph: adj[l] lists right vertices reachable
/// from left vertex l.
struct BipartiteGraph {
  PortId n_left = 0;
  PortId n_right = 0;
  std::vector<std::vector<PortId>> adj;

  BipartiteGraph(PortId left, PortId right)
      : n_left(left),
        n_right(right),
        adj(static_cast<std::size_t>(left)) {}

  void add_edge(PortId l, PortId r) {
    adj[static_cast<std::size_t>(l)].push_back(r);
  }
};

/// Computes a maximum-cardinality matching.
Matching hopcroft_karp(const BipartiteGraph& graph);

/// Convenience: maximum matching cardinality.
std::size_t maximum_matching_size(const BipartiteGraph& graph);

}  // namespace basrpt::matching
