#include "matching/hopcroft_karp.hpp"

#include <limits>
#include <queue>

#include "common/assert.hpp"

namespace basrpt::matching {

namespace {

constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max();

struct HkState {
  const BipartiteGraph& graph;
  std::vector<PortId> match_left;   // left -> right or kUnmatched
  std::vector<PortId> match_right;  // right -> left or kUnmatched
  std::vector<std::int32_t> dist;   // BFS layers over left vertices

  explicit HkState(const BipartiteGraph& g)
      : graph(g),
        match_left(static_cast<std::size_t>(g.n_left), kUnmatched),
        match_right(static_cast<std::size_t>(g.n_right), kUnmatched),
        dist(static_cast<std::size_t>(g.n_left), kInf) {}

  bool bfs() {
    std::queue<PortId> frontier;
    for (PortId l = 0; l < graph.n_left; ++l) {
      if (match_left[static_cast<std::size_t>(l)] == kUnmatched) {
        dist[static_cast<std::size_t>(l)] = 0;
        frontier.push(l);
      } else {
        dist[static_cast<std::size_t>(l)] = kInf;
      }
    }
    bool found_augmenting = false;
    while (!frontier.empty()) {
      const PortId l = frontier.front();
      frontier.pop();
      for (PortId r : graph.adj[static_cast<std::size_t>(l)]) {
        const PortId next = match_right[static_cast<std::size_t>(r)];
        if (next == kUnmatched) {
          found_augmenting = true;
        } else if (dist[static_cast<std::size_t>(next)] == kInf) {
          dist[static_cast<std::size_t>(next)] =
              dist[static_cast<std::size_t>(l)] + 1;
          frontier.push(next);
        }
      }
    }
    return found_augmenting;
  }

  bool dfs(PortId l) {
    for (PortId r : graph.adj[static_cast<std::size_t>(l)]) {
      const PortId next = match_right[static_cast<std::size_t>(r)];
      if (next == kUnmatched ||
          (dist[static_cast<std::size_t>(next)] ==
               dist[static_cast<std::size_t>(l)] + 1 &&
           dfs(next))) {
        match_left[static_cast<std::size_t>(l)] = r;
        match_right[static_cast<std::size_t>(r)] = l;
        return true;
      }
    }
    dist[static_cast<std::size_t>(l)] = kInf;
    return false;
  }
};

}  // namespace

Matching hopcroft_karp(const BipartiteGraph& graph) {
  for (PortId l = 0; l < graph.n_left; ++l) {
    for (PortId r : graph.adj[static_cast<std::size_t>(l)]) {
      BASRPT_ASSERT(r >= 0 && r < graph.n_right, "edge endpoint out of range");
    }
  }
  HkState state(graph);
  while (state.bfs()) {
    for (PortId l = 0; l < graph.n_left; ++l) {
      if (state.match_left[static_cast<std::size_t>(l)] == kUnmatched) {
        (void)state.dfs(l);
      }
    }
  }
  return Matching{std::move(state.match_left)};
}

std::size_t maximum_matching_size(const BipartiteGraph& graph) {
  return hopcroft_karp(graph).size();
}

}  // namespace basrpt::matching
