#include "matching/birkhoff.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "matching/hopcroft_karp.hpp"

namespace basrpt::matching {

namespace {

void check_square(const RateMatrix& m) {
  BASRPT_REQUIRE(!m.empty(), "rate matrix must be non-empty");
  for (const auto& row : m) {
    BASRPT_REQUIRE(row.size() == m.size(), "rate matrix must be square");
    for (double v : row) {
      BASRPT_REQUIRE(v >= 0.0, "rate matrix entries must be non-negative");
    }
  }
}

std::vector<double> row_sums(const RateMatrix& m) {
  std::vector<double> sums(m.size(), 0.0);
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (double v : m[i]) {
      sums[i] += v;
    }
  }
  return sums;
}

std::vector<double> col_sums(const RateMatrix& m) {
  std::vector<double> sums(m.size(), 0.0);
  for (const auto& row : m) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      sums[j] += row[j];
    }
  }
  return sums;
}

}  // namespace

double max_line_sum(const RateMatrix& rates) {
  check_square(rates);
  double result = 0.0;
  for (double s : row_sums(rates)) {
    result = std::max(result, s);
  }
  for (double s : col_sums(rates)) {
    result = std::max(result, s);
  }
  return result;
}

RateMatrix complete_to_doubly_stochastic(RateMatrix rates, double tolerance) {
  check_square(rates);
  const std::size_t n = rates.size();
  auto rows = row_sums(rates);
  auto cols = col_sums(rates);
  for (double s : rows) {
    BASRPT_REQUIRE(s <= 1.0 + tolerance, "row sum exceeds 1: inadmissible");
  }
  for (double s : cols) {
    BASRPT_REQUIRE(s <= 1.0 + tolerance, "column sum exceeds 1: inadmissible");
  }

  // Greedy water-filling: total row deficiency equals total column
  // deficiency, so pairing any deficient row with any deficient column
  // and raising that entry terminates in at most 2N steps per pass.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < n && j < n) {
    const double row_deficit = 1.0 - rows[i];
    const double col_deficit = 1.0 - cols[j];
    if (row_deficit <= tolerance) {
      ++i;
      continue;
    }
    if (col_deficit <= tolerance) {
      ++j;
      continue;
    }
    const double add = std::min(row_deficit, col_deficit);
    rates[i][j] += add;
    rows[i] += add;
    cols[j] += add;
  }

  rows = row_sums(rates);
  cols = col_sums(rates);
  for (std::size_t k = 0; k < n; ++k) {
    BASRPT_ASSERT(std::abs(rows[k] - 1.0) <= n * tolerance + 1e-7,
                  "row completion failed");
    BASRPT_ASSERT(std::abs(cols[k] - 1.0) <= n * tolerance + 1e-7,
                  "column completion failed");
  }
  return rates;
}

std::vector<BvnTerm> birkhoff_decompose(RateMatrix m, double tolerance) {
  check_square(m);
  const PortId n = static_cast<PortId>(m.size());

  std::vector<BvnTerm> terms;
  double remaining = 1.0;
  // Birkhoff's theorem guarantees at most (N-1)^2 + 1 terms; the extra
  // slack below absorbs floating-point dust.
  const std::size_t max_terms = m.size() * m.size() + 2;

  while (remaining > tolerance * static_cast<double>(n)) {
    // Support graph of entries that still carry mass.
    BipartiteGraph support(n, n);
    for (PortId i = 0; i < n; ++i) {
      for (PortId j = 0; j < n; ++j) {
        if (m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] >
            tolerance) {
          support.add_edge(i, j);
        }
      }
    }
    Matching perm = hopcroft_karp(support);
    if (perm.size() != static_cast<std::size_t>(n)) {
      // Residual mass is numerical dust that no longer supports a perfect
      // matching; stop.
      break;
    }
    double weight = remaining;
    for (PortId i = 0; i < n; ++i) {
      const PortId j = perm.match_of_left[static_cast<std::size_t>(i)];
      weight = std::min(
          weight,
          m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
    BASRPT_ASSERT(weight > 0.0, "BvN extracted a zero-weight permutation");
    for (PortId i = 0; i < n; ++i) {
      const PortId j = perm.match_of_left[static_cast<std::size_t>(i)];
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] -= weight;
    }
    remaining -= weight;
    terms.push_back(BvnTerm{std::move(perm), weight});
    BASRPT_ASSERT(terms.size() <= max_terms, "BvN did not terminate");
  }
  return terms;
}

RateMatrix reconstruct(const std::vector<BvnTerm>& terms, PortId n) {
  RateMatrix sum(static_cast<std::size_t>(n),
                 std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (const BvnTerm& t : terms) {
    BASRPT_ASSERT(t.permutation.match_of_left.size() ==
                      static_cast<std::size_t>(n),
                  "term dimension mismatch");
    for (PortId i = 0; i < n; ++i) {
      const PortId j = t.permutation.match_of_left[static_cast<std::size_t>(i)];
      if (j != kUnmatched) {
        sum[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +=
            t.weight;
      }
    }
  }
  return sum;
}

}  // namespace basrpt::matching
