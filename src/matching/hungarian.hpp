// Hungarian algorithm (Jonker–Volgenant potentials variant), O(N^3).
//
// Computes a maximum-weight perfect matching on a complete N x N
// bipartite graph. This is the engine of the MaxWeight reference
// scheduler: weights are the VOQ backlogs X_ij, and MaxWeight matchings
// are the classical throughput-optimal baseline the paper's stability
// discussion is implicitly measured against.
#pragma once

#include <vector>

#include "matching/bipartite.hpp"

namespace basrpt::matching {

/// Square weight matrix: weights[i][j] is the gain of matching ingress i
/// to egress j. Entries may be zero (a "no traffic" pairing) or negative.
/// Returns a perfect matching maximizing the total weight.
Matching max_weight_perfect(const std::vector<std::vector<double>>& weights);

/// Total weight of `m` under `weights`; unmatched rows contribute 0.
double matching_weight(const Matching& m,
                       const std::vector<std::vector<double>>& weights);

}  // namespace basrpt::matching
