#include "matching/bipartite.hpp"

namespace basrpt::matching {

bool is_valid_matching(const Matching& m, PortId n_right) {
  std::vector<bool> right_used(static_cast<std::size_t>(n_right), false);
  for (PortId r : m.match_of_left) {
    if (r == kUnmatched) {
      continue;
    }
    if (r < 0 || r >= n_right) {
      return false;
    }
    if (right_used[static_cast<std::size_t>(r)]) {
      return false;
    }
    right_used[static_cast<std::size_t>(r)] = true;
  }
  return true;
}

bool is_maximal_matching(const Matching& m, const std::vector<Edge>& edges,
                         PortId n_right) {
  if (!is_valid_matching(m, n_right)) {
    return false;
  }
  std::vector<bool> right_used(static_cast<std::size_t>(n_right), false);
  for (PortId r : m.match_of_left) {
    if (r != kUnmatched) {
      right_used[static_cast<std::size_t>(r)] = true;
    }
  }
  for (const Edge& e : edges) {
    const bool left_free =
        e.left >= 0 &&
        static_cast<std::size_t>(e.left) < m.match_of_left.size() &&
        m.match_of_left[static_cast<std::size_t>(e.left)] == kUnmatched;
    const bool right_free =
        e.right >= 0 && e.right < n_right &&
        !right_used[static_cast<std::size_t>(e.right)];
    if (left_free && right_free) {
      return false;  // this edge could still be added
    }
  }
  return true;
}

}  // namespace basrpt::matching
