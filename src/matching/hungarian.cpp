#include "matching/hungarian.hpp"

#include <limits>

#include "common/assert.hpp"

namespace basrpt::matching {

Matching max_weight_perfect(const std::vector<std::vector<double>>& weights) {
  const std::size_t n = weights.size();
  BASRPT_ASSERT(n > 0, "empty weight matrix");
  for (const auto& row : weights) {
    BASRPT_ASSERT(row.size() == n, "weight matrix must be square");
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Classic potentials formulation solves the *minimization* assignment
  // problem with 1-based sentinel row/column 0; negate for maximization.
  const auto cost = [&](std::size_t i, std::size_t j) {
    return -weights[i - 1][j - 1];
  };

  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<std::size_t> p(n + 1, 0), way(n + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) {
          continue;
        }
        const double cur = cost(i0, j) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      BASRPT_ASSERT(delta < kInf, "assignment search stalled");
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Unwind augmenting path.
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  Matching result;
  result.match_of_left.assign(n, kUnmatched);
  for (std::size_t j = 1; j <= n; ++j) {
    result.match_of_left[p[j] - 1] = static_cast<PortId>(j - 1);
  }
  return result;
}

double matching_weight(const Matching& m,
                       const std::vector<std::vector<double>>& weights) {
  double total = 0.0;
  for (std::size_t i = 0; i < m.match_of_left.size(); ++i) {
    const PortId j = m.match_of_left[i];
    if (j != kUnmatched) {
      total += weights[i][static_cast<std::size_t>(j)];
    }
  }
  return total;
}

}  // namespace basrpt::matching
