// Shared vocabulary for the bipartite-matching substrate.
//
// A scheduling decision in the big-switch model is a matching between
// ingress ports (left side) and egress ports (right side); see Sec. III-B
// of the paper. All matching algorithms in this module speak these types.
#pragma once

#include <cstdint>
#include <vector>

namespace basrpt::matching {

/// Port index in [0, N).
using PortId = std::int32_t;

constexpr PortId kUnmatched = -1;

/// A (possibly partial) matching: match_of_left[i] is the egress matched
/// to ingress i, or kUnmatched.
struct Matching {
  std::vector<PortId> match_of_left;

  std::size_t size() const {
    std::size_t n = 0;
    for (PortId p : match_of_left) {
      if (p != kUnmatched) {
        ++n;
      }
    }
    return n;
  }
};

/// An edge of the candidate graph (a non-empty VOQ, or one candidate flow).
struct Edge {
  PortId left;
  PortId right;
};

/// Returns true if no left or right vertex appears twice.
bool is_valid_matching(const Matching& m, PortId n_right);

/// Returns true if `m` is maximal over `edges`: no edge has both
/// endpoints free.
bool is_maximal_matching(const Matching& m, const std::vector<Edge>& edges,
                         PortId n_right);

}  // namespace basrpt::matching
