// Greedy maximal matching over scored candidates.
//
// This is the primitive behind SRPT and fast BASRPT (Algorithm 1 of the
// paper): iterate candidates in non-decreasing score order and accept a
// candidate iff its ingress and egress ports are both still free. The
// result is a maximal matching over the candidate support.
#pragma once

#include <cstdint>
#include <vector>

#include "matching/bipartite.hpp"

namespace basrpt::matching {

/// One candidate for selection: typically one active flow.
struct ScoredCandidate {
  PortId left;
  PortId right;
  double score;       // lower is better (e.g. remaining size for SRPT)
  std::int64_t payload = 0;  // caller's identifier (flow id)
};

/// Result of a greedy pass: the matching plus which candidates won.
struct GreedyResult {
  Matching matching;
  std::vector<std::int64_t> selected_payloads;
};

/// Sorts candidates by (score, payload) — the payload tiebreak makes the
/// algorithm deterministic — and greedily accepts. O(K log K) for K
/// candidates. `n_left`/`n_right` are port counts.
GreedyResult greedy_maximal(std::vector<ScoredCandidate> candidates,
                            PortId n_left, PortId n_right);

/// Allocation-free variant of greedy_maximal for hot decision loops:
/// port-usage scratch persists across calls, the candidate buffer is the
/// caller's (sorted in place), and winners are appended to `out`. The
/// selection is identical to greedy_maximal *provided payloads are
/// distinct* (they are flow ids in the schedulers): the (score, payload)
/// key is then a total order, so the unstable in-place sort cannot
/// reorder equivalent elements differently than the stable one.
class GreedyMatcher {
 public:
  /// Clears `out`, then appends the payloads of the accepted candidates
  /// in selection (sorted) order. O(K log K), no heap allocation once
  /// the scratch has warmed to the fabric size.
  void match_into(std::vector<ScoredCandidate>& candidates, PortId n_left,
                  PortId n_right, std::vector<std::int64_t>& out);

 private:
  std::vector<char> left_used_;
  std::vector<char> right_used_;
};

}  // namespace basrpt::matching
