// Greedy maximal matching over scored candidates.
//
// This is the primitive behind SRPT and fast BASRPT (Algorithm 1 of the
// paper): iterate candidates in non-decreasing score order and accept a
// candidate iff its ingress and egress ports are both still free. The
// result is a maximal matching over the candidate support.
#pragma once

#include <cstdint>
#include <vector>

#include "matching/bipartite.hpp"

namespace basrpt::matching {

/// One candidate for selection: typically one active flow.
struct ScoredCandidate {
  PortId left;
  PortId right;
  double score;       // lower is better (e.g. remaining size for SRPT)
  std::int64_t payload = 0;  // caller's identifier (flow id)
};

/// Result of a greedy pass: the matching plus which candidates won.
struct GreedyResult {
  Matching matching;
  std::vector<std::int64_t> selected_payloads;
};

/// Sorts candidates by (score, payload) — the payload tiebreak makes the
/// algorithm deterministic — and greedily accepts. O(K log K) for K
/// candidates. `n_left`/`n_right` are port counts.
GreedyResult greedy_maximal(std::vector<ScoredCandidate> candidates,
                            PortId n_left, PortId n_right);

/// Allocation-free variant of greedy_maximal for hot decision loops:
/// port-usage scratch persists across calls, the candidate buffer is the
/// caller's, and winners are appended to `out`. The selection is
/// identical to greedy_maximal *provided payloads are distinct* (they
/// are flow ids in the schedulers): the (score, payload) key is then a
/// total order, so no two sort algorithms can disagree on the order.
///
/// Large candidate sets take an LSD radix sort over compact 12-byte
/// records — a 32-bit order-preserving score key, the ports, and the
/// candidate's index — instead of comparison-sorting the 24-byte
/// candidates; runs whose coarse keys collide are re-sorted with the
/// full (score, payload) comparator, so the order is exact. Small sets
/// use std::sort in place. Either way the scan stops once min(n_left,
/// n_right) winners are accepted — every later candidate would be
/// rejected anyway. The candidate buffer may be reordered (small-set
/// path) or left untouched (radix path); callers must not rely on its
/// order afterwards.
class GreedyMatcher {
 public:
  /// Clears `out`, then appends the payloads of the accepted candidates
  /// in selection (sorted) order. No heap allocation once the scratch
  /// has warmed to the fabric size.
  void match_into(std::vector<ScoredCandidate>& candidates, PortId n_left,
                  PortId n_right, std::vector<std::int64_t>& out);

  /// Below this many candidates, comparison sort beats the radix
  /// histogram setup cost. Port counts >= 65536 also take the
  /// comparison path (ports are packed into 16 bits in the records).
  static constexpr std::size_t kRadixThreshold = 128;

 private:
  /// Radix record: coarse score key (top 32 bits of the sortable-double
  /// transform), the candidate's ports for the accept scan, and its
  /// index for payload fetch and tie fixups. 12 bytes, so a sort pass
  /// moves half the bytes a ScoredCandidate sort would.
  struct Rec {
    std::uint32_t key;
    std::uint16_t left;
    std::uint16_t right;
    std::uint32_t idx;
  };

  /// Sorts recs_a_ into (score, payload) order for `candidates`.
  void sort_recs_radix(const std::vector<ScoredCandidate>& candidates);

  std::vector<char> left_used_;
  std::vector<char> right_used_;
  std::vector<Rec> recs_a_;
  std::vector<Rec> recs_b_;
};

}  // namespace basrpt::matching
