// Greedy maximal matching over scored candidates.
//
// This is the primitive behind SRPT and fast BASRPT (Algorithm 1 of the
// paper): iterate candidates in non-decreasing score order and accept a
// candidate iff its ingress and egress ports are both still free. The
// result is a maximal matching over the candidate support.
#pragma once

#include <cstdint>
#include <vector>

#include "matching/bipartite.hpp"

namespace basrpt::matching {

/// One candidate for selection: typically one active flow.
struct ScoredCandidate {
  PortId left;
  PortId right;
  double score;       // lower is better (e.g. remaining size for SRPT)
  std::int64_t payload = 0;  // caller's identifier (flow id)
};

/// Result of a greedy pass: the matching plus which candidates won.
struct GreedyResult {
  Matching matching;
  std::vector<std::int64_t> selected_payloads;
};

/// Sorts candidates by (score, payload) — the payload tiebreak makes the
/// algorithm deterministic — and greedily accepts. O(K log K) for K
/// candidates. `n_left`/`n_right` are port counts.
GreedyResult greedy_maximal(std::vector<ScoredCandidate> candidates,
                            PortId n_left, PortId n_right);

/// Allocation-free variant of greedy_maximal for hot decision loops:
/// port-usage and sort scratch persist across calls, candidates arrive
/// as SoA lanes (the sched::CandidateView layout — the score lane is
/// often a view lane streamed with zero copies), and winners are
/// appended to `out`. The selection is identical to greedy_maximal
/// *provided payloads are distinct* (they are flow ids in the
/// schedulers): the (score, payload) key is then a total order, so no
/// two sort algorithms can disagree on the order.
///
/// Ordering strategy, chosen per call:
///  * already sorted (nondecreasing scores, payload-ordered ties — a
///    simd scan that bails on the first inversion): skip sorting
///    entirely and scan the lanes in place;
///  * small sets: comparison-sort compact 16-byte records;
///  * large sets: a value-linear bucket scatter — a monotone bucket map
///    fitted to ~128 strided score samples (one linear piece, or two
///    pieces split at the dominant sample gap so bimodal keys like
///    threshold-SRPT's class offset still spread evenly) — followed by
///    one adaptive insertion sweep (O(n + inversions)); buckets the
///    distribution overloads are pre-sorted, unsampled outliers clamp
///    into the edge buckets, and distributions no piecewise-linear map
///    can spread (zero/infinite range, heavy duplicate mass) fall back
///    to the LSD radix sort over coarse 32-bit score keys.
/// Either way the accept scan stops once min(n_left, n_right) winners
/// are accepted — every later candidate would be rejected anyway. Input
/// lanes are never reordered.
class GreedyMatcher {
 public:
  /// Clears `out`, then appends the payloads of the accepted candidates
  /// in selection (sorted) order. Lane pointers must each hold `n`
  /// elements; scores must be NaN-free. No heap allocation once the
  /// scratch has warmed to the fabric size.
  void match_lanes_into(const double* score, const PortId* left,
                        const PortId* right, const std::int64_t* payload,
                        std::size_t n, PortId n_left, PortId n_right,
                        std::vector<std::int64_t>& out);

  /// AoS adapter over match_lanes_into for callers holding
  /// ScoredCandidate buffers (repacks into lane scratch per call; the
  /// buffer is left untouched).
  void match_into(const std::vector<ScoredCandidate>& candidates,
                  PortId n_left, PortId n_right,
                  std::vector<std::int64_t>& out);

  /// Below this many candidates, comparison sort beats the bucket
  /// histogram setup cost. Port counts >= 65536 also take a comparison
  /// path (ports are packed into 16 bits in the sort records).
  static constexpr std::size_t kRadixThreshold = 128;

 private:
  /// Bucket-sort record: the exact score for comparisons, the
  /// candidate's index for payload fetch, and its ports for the accept
  /// scan. 16 bytes, so the scatter and sweep move compact rows.
  struct Rec {
    double score;
    std::uint32_t idx;
    std::uint16_t left;
    std::uint16_t right;
  };

  /// Radix-fallback record: coarse score key (top 32 bits of the
  /// sortable-double transform) instead of the score. 12 bytes.
  struct RadixRec {
    std::uint32_t key;
    std::uint16_t left;
    std::uint16_t right;
    std::uint32_t idx;
  };

  /// Sorts recs_ (n entries) into exact (score, payload) order via the
  /// sampled piecewise-linear bucket scatter. Returns false when the
  /// distribution defeats the map (caller then radix-sorts instead).
  bool sort_recs_bucket(const double* score, const PortId* left,
                        const PortId* right, const std::int64_t* payload,
                        std::size_t n);

  /// Sorts rrecs_a_ into exact (score, payload) order via LSD radix
  /// over coarse keys; handles any score distribution.
  void sort_recs_radix(const double* score, const std::int64_t* payload,
                       const PortId* left, const PortId* right,
                       std::size_t n);

  std::vector<char> left_used_;
  std::vector<char> right_used_;
  std::vector<double> samples_;        // strided score sample, sorted
  std::vector<Rec> recs_;
  std::vector<std::uint32_t> bidx_;
  std::vector<std::uint32_t> hist_;
  std::vector<std::uint32_t> starts_;
  std::vector<RadixRec> rrecs_a_;
  std::vector<RadixRec> rrecs_b_;
  std::vector<std::uint32_t> order_;   // huge-port-count fallback
  // Lane scratch for the AoS adapter.
  std::vector<double> score_s_;
  std::vector<PortId> left_s_;
  std::vector<PortId> right_s_;
  std::vector<std::int64_t> payload_s_;
};

}  // namespace basrpt::matching
