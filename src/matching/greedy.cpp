#include "matching/greedy.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace basrpt::matching {

GreedyResult greedy_maximal(std::vector<ScoredCandidate> candidates,
                            PortId n_left, PortId n_right) {
  BASRPT_ASSERT(n_left > 0 && n_right > 0, "port counts must be positive");

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const ScoredCandidate& a, const ScoredCandidate& b) {
                     if (a.score != b.score) {
                       return a.score < b.score;
                     }
                     return a.payload < b.payload;
                   });

  GreedyResult result;
  result.matching.match_of_left.assign(static_cast<std::size_t>(n_left),
                                       kUnmatched);
  std::vector<bool> right_used(static_cast<std::size_t>(n_right), false);

  for (const ScoredCandidate& c : candidates) {
    BASRPT_ASSERT(c.left >= 0 && c.left < n_left, "ingress out of range");
    BASRPT_ASSERT(c.right >= 0 && c.right < n_right, "egress out of range");
    auto& slot = result.matching.match_of_left[static_cast<std::size_t>(c.left)];
    if (slot == kUnmatched && !right_used[static_cast<std::size_t>(c.right)]) {
      slot = c.right;
      right_used[static_cast<std::size_t>(c.right)] = true;
      result.selected_payloads.push_back(c.payload);
    }
  }
  return result;
}

void GreedyMatcher::match_into(std::vector<ScoredCandidate>& candidates,
                               PortId n_left, PortId n_right,
                               std::vector<std::int64_t>& out) {
  BASRPT_ASSERT(n_left > 0 && n_right > 0, "port counts must be positive");
  out.clear();

  std::sort(candidates.begin(), candidates.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              if (a.score != b.score) {
                return a.score < b.score;
              }
              return a.payload < b.payload;
            });

  left_used_.assign(static_cast<std::size_t>(n_left), 0);
  right_used_.assign(static_cast<std::size_t>(n_right), 0);

  for (const ScoredCandidate& c : candidates) {
    BASRPT_ASSERT(c.left >= 0 && c.left < n_left, "ingress out of range");
    BASRPT_ASSERT(c.right >= 0 && c.right < n_right, "egress out of range");
    if (!left_used_[static_cast<std::size_t>(c.left)] &&
        !right_used_[static_cast<std::size_t>(c.right)]) {
      left_used_[static_cast<std::size_t>(c.left)] = 1;
      right_used_[static_cast<std::size_t>(c.right)] = 1;
      out.push_back(c.payload);
    }
  }
}

}  // namespace basrpt::matching
