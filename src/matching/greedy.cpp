#include "matching/greedy.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/assert.hpp"
#include "perf/profiler.hpp"
#include "simd/kernels.hpp"

namespace basrpt::matching {

GreedyResult greedy_maximal(std::vector<ScoredCandidate> candidates,
                            PortId n_left, PortId n_right) {
  BASRPT_ASSERT(n_left > 0 && n_right > 0, "port counts must be positive");

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const ScoredCandidate& a, const ScoredCandidate& b) {
                     if (a.score != b.score) {
                       return a.score < b.score;
                     }
                     return a.payload < b.payload;
                   });

  GreedyResult result;
  result.matching.match_of_left.assign(static_cast<std::size_t>(n_left),
                                       kUnmatched);
  std::vector<bool> right_used(static_cast<std::size_t>(n_right), false);

  for (const ScoredCandidate& c : candidates) {
    BASRPT_ASSERT(c.left >= 0 && c.left < n_left, "ingress out of range");
    BASRPT_ASSERT(c.right >= 0 && c.right < n_right, "egress out of range");
    auto& slot = result.matching.match_of_left[static_cast<std::size_t>(c.left)];
    if (slot == kUnmatched && !right_used[static_cast<std::size_t>(c.right)]) {
      slot = c.right;
      right_used[static_cast<std::size_t>(c.right)] = true;
      result.selected_payloads.push_back(c.payload);
    }
  }
  return result;
}

namespace {

/// Maps a double to a 32-bit key whose integer order matches the
/// double's numeric order coarsened to the top 32 bits: flip all bits
/// of negatives, flip only the sign bit of non-negatives, keep the
/// sign, exponent and top 20 mantissa bits. Distinct scores may
/// collide (the fixup pass resolves those runs exactly); equal scores
/// always map to equal keys — -0.0 is first collapsed onto +0.0 so the
/// payload tie-break fires exactly where the comparison path's would.
std::uint32_t coarse_score_key(double score) {
  if (score == 0.0) {
    score = 0.0;  // normalizes -0.0
  }
  std::uint64_t bits;
  std::memcpy(&bits, &score, sizeof(bits));
  const std::uint64_t full = (bits & 0x8000000000000000ull) != 0
                                 ? ~bits
                                 : bits | 0x8000000000000000ull;
  return static_cast<std::uint32_t>(full >> 32);
}

/// 8-bit LSD digits, four passes over the 32-bit key. 256 bins keep
/// the scatter's active write lines (one per bin) inside L1; wider
/// digits save a pass but thrash the cache and measure slower.
constexpr std::uint32_t kRadixBits = 8;
constexpr std::uint32_t kRadixBins = 1u << kRadixBits;
constexpr std::uint32_t kRadixMask = kRadixBins - 1;
constexpr std::size_t kRadixPasses = 4;

/// Bucket-sort tuning. Half a bucket per candidate (power of two,
/// clamped) spreads a uniform-in-value score distribution to ~2 records
/// per bucket; the insertion sweep then pays O(n), and the histogram +
/// prefix pass touches half the bucket array a full-size table would.
/// Buckets the distribution overloads past kBigBucket records are
/// pre-sorted outright — the sweep's quadratic-in-run cost never sees a
/// long run.
constexpr std::size_t kMinBuckets = 64;
constexpr std::size_t kMaxBuckets = 16384;
constexpr std::uint32_t kBigBucket = 32;

/// Strided sample size for fitting the bucket map. 128 sorted samples
/// locate the bulk of the distribution (outliers the sample misses just
/// clamp into the edge buckets) and expose a dominant gap when the
/// scores are bimodal.
constexpr std::size_t kSampleCount = 128;

/// Per-piece map slope: buckets / sample range. A degenerate piece (all
/// sampled values equal) gets slope 1.0 — any finite positive slope is
/// valid, the clamps keep the map monotone — so the kernels never see a
/// 0 * inf = NaN. A subnormal-range piece whose slope overflows is
/// rejected by returning 0.0 (caller falls back to radix).
double piece_slope(double range, double buckets) {
  if (range <= 0.0) {
    return 1.0;
  }
  const double inv = buckets / range;
  if (!std::isfinite(inv) || inv <= 0.0) {
    return 0.0;
  }
  return inv;
}

}  // namespace

bool GreedyMatcher::sort_recs_bucket(const double* score, const PortId* left,
                                     const PortId* right,
                                     const std::int64_t* payload,
                                     std::size_t n) {
  // Fit the map to a sorted strided sample instead of a full min/max
  // scan: the sample bounds are robust enough (clamps catch what it
  // misses), and the sorted sample's largest adjacent gap tells us
  // whether one linear piece suffices or the distribution is bimodal
  // (threshold-SRPT keys sit in two clusters a class offset apart, which
  // would pile every record into two buckets of a single-piece map).
  samples_.resize(kSampleCount);
  for (std::size_t i = 0; i < kSampleCount; ++i) {
    samples_[i] = score[i * n / kSampleCount];
  }
  std::sort(samples_.begin(), samples_.end());
  const double slo = samples_.front();
  const double shi = samples_.back();
  const double range = shi - slo;
  if (!(std::isfinite(range) && range > 0.0)) {
    return false;  // all-equal sample or overflowing spread
  }

  const auto nb = static_cast<std::uint32_t>(std::clamp<std::size_t>(
      std::bit_ceil(n) / 2, kMinBuckets, kMaxBuckets));

  std::size_t gap_at = 0;
  double gap = 0.0;
  for (std::size_t i = 0; i + 1 < kSampleCount; ++i) {
    const double g = samples_[i + 1] - samples_[i];
    if (g > gap) {
      gap = g;
      gap_at = i;
    }
  }

  bidx_.resize(n);
  if (gap >= 0.5 * range) {
    // Two clusters separated by a dominant gap: give each its own
    // linear piece, with buckets split in proportion to the sample mass
    // on each side. cap0 < base1 <= cap keeps the map monotone.
    const std::size_t lo_mass = gap_at + 1;
    const double lo0 = slo;
    const double hi0 = samples_[gap_at];
    const double lo1 = samples_[gap_at + 1];
    const double hi1 = shi;
    const auto base1 = static_cast<std::uint32_t>(std::clamp<std::size_t>(
        (static_cast<std::size_t>(nb) * lo_mass) / kSampleCount, 1,
        static_cast<std::size_t>(nb) - 1));
    const double inv0 =
        piece_slope(hi0 - lo0, static_cast<double>(base1));
    const double inv1 =
        piece_slope(hi1 - lo1, static_cast<double>(nb - base1));
    if (inv0 == 0.0 || inv1 == 0.0) {
      return false;
    }
    simd::bucket_indexes_2piece(score, lo1, lo0, inv0, base1 - 1, lo1, inv1,
                                base1, nb - 1, n, bidx_.data());
  } else {
    const double inv = piece_slope(range, static_cast<double>(nb));
    if (inv == 0.0) {
      return false;
    }
    simd::bucket_indexes(score, slo, inv, nb - 1, n, bidx_.data());
  }

  hist_.assign(nb, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++hist_[bidx_[i]];
  }

  std::uint32_t sum = 0;
  std::uint32_t maxb = 0;
  for (std::uint32_t b = 0; b < nb; ++b) {
    const std::uint32_t count = hist_[b];
    if (count > maxb) {
      maxb = count;
    }
    hist_[b] = sum;  // becomes the scatter's write cursor
    sum += count;
  }
  // A distribution the piecewise map still cannot spread (heavy
  // duplicate mass, log-spread scores) piles most records into a few
  // buckets and the sort degenerates to comparison sorting those piles —
  // radix handles that shape in guaranteed linear passes instead.
  if (maxb > n / 4) {
    return false;
  }

  // Bucket boundaries are only needed to pre-sort overloaded buckets;
  // the usual spread-out case (every bucket <= kBigBucket) skips the
  // starts_ pass entirely — the insertion sweep needs no boundaries.
  const bool any_big = maxb > kBigBucket;
  if (any_big) {
    starts_.resize(nb + 1);
    for (std::uint32_t b = 0; b < nb; ++b) {
      starts_[b] = hist_[b];
    }
    starts_[nb] = sum;
  }

  recs_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    recs_[hist_[bidx_[i]]++] =
        Rec{score[i], static_cast<std::uint32_t>(i),
            static_cast<std::uint16_t>(left[i]),
            static_cast<std::uint16_t>(right[i])};
  }

  const auto less = [&](const Rec& a, const Rec& b) {
    if (a.score != b.score) {
      return a.score < b.score;
    }
    return payload[a.idx] < payload[b.idx];
  };

  if (any_big) {
    for (std::uint32_t b = 0; b < nb; ++b) {
      if (starts_[b + 1] - starts_[b] > kBigBucket) {
        std::sort(recs_.begin() + starts_[b], recs_.begin() + starts_[b + 1],
                  less);
      }
    }
  }

  // The piecewise map is monotone and equal scores share a bucket, so
  // every remaining inversion is intra-bucket: one adaptive insertion
  // sweep costs O(n + inversions) and lands the exact (score, payload)
  // order.
  for (std::size_t i = 1; i < n; ++i) {
    if (!less(recs_[i], recs_[i - 1])) {
      continue;
    }
    const Rec t = recs_[i];
    std::size_t j = i;
    do {
      recs_[j] = recs_[j - 1];
      --j;
    } while (j > 0 && less(t, recs_[j - 1]));
    recs_[j] = t;
  }
  return true;
}

void GreedyMatcher::sort_recs_radix(const double* score,
                                    const std::int64_t* payload,
                                    const PortId* left, const PortId* right,
                                    std::size_t n) {
  rrecs_a_.resize(n);
  rrecs_b_.resize(n);

  // Build the records and all four digit histograms in one pass.
  std::uint32_t hist[kRadixPasses][kRadixBins];
  std::memset(hist, 0, sizeof(hist));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t key = coarse_score_key(score[i]);
    rrecs_a_[i] = {key, static_cast<std::uint16_t>(left[i]),
                   static_cast<std::uint16_t>(right[i]),
                   static_cast<std::uint32_t>(i)};
    ++hist[0][key & kRadixMask];
    ++hist[1][(key >> kRadixBits) & kRadixMask];
    ++hist[2][(key >> (2 * kRadixBits)) & kRadixMask];
    ++hist[3][key >> (3 * kRadixBits)];
  }

  // LSD passes; a digit position where all keys agree permutes nothing
  // and is skipped (scores from one decision often share sign and
  // exponent range, so a pass or two usually vanishes).
  RadixRec* src = rrecs_a_.data();
  RadixRec* dst = rrecs_b_.data();
  for (std::size_t p = 0; p < kRadixPasses; ++p) {
    std::uint32_t* h = hist[p];
    bool trivial = false;
    for (std::size_t v = 0; v < kRadixBins; ++v) {
      if (h[v] == n) {
        trivial = true;
        break;
      }
      if (h[v] != 0) {
        break;
      }
    }
    if (trivial) {
      continue;
    }
    std::uint32_t sum = 0;
    for (std::size_t v = 0; v < kRadixBins; ++v) {
      const std::uint32_t count = h[v];
      h[v] = sum;
      sum += count;
    }
    const std::uint32_t shift = static_cast<std::uint32_t>(p) * kRadixBits;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t v = (src[i].key >> shift) & kRadixMask;
      dst[h[v]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != rrecs_a_.data()) {
    rrecs_a_.swap(rrecs_b_);
  }

  // Radix LSD is stable, so equal-coarse-key runs are in original
  // candidate order — but the contract is exact (score, payload) order,
  // and a coarse key can collide for distinct scores. Re-sort each run
  // with the full comparator; runs are rare and short in practice.
  for (std::size_t i = 0; i + 1 < n;) {
    std::size_t j = i + 1;
    while (j < n && rrecs_a_[j].key == rrecs_a_[i].key) {
      ++j;
    }
    if (j - i > 1) {
      std::sort(rrecs_a_.begin() + static_cast<std::ptrdiff_t>(i),
                rrecs_a_.begin() + static_cast<std::ptrdiff_t>(j),
                [&](const RadixRec& a, const RadixRec& b) {
                  const double sa = score[a.idx];
                  const double sb = score[b.idx];
                  if (sa != sb) {
                    return sa < sb;
                  }
                  return payload[a.idx] < payload[b.idx];
                });
    }
    i = j;
  }
}

void GreedyMatcher::match_lanes_into(const double* score, const PortId* left,
                                     const PortId* right,
                                     const std::int64_t* payload,
                                     std::size_t n, PortId n_left,
                                     PortId n_right,
                                     std::vector<std::int64_t>& out) {
  BASRPT_ASSERT(n_left > 0 && n_right > 0, "port counts must be positive");
  out.clear();
  left_used_.assign(static_cast<std::size_t>(n_left), 0);
  right_used_.assign(static_cast<std::size_t>(n_right), 0);
  if (n == 0) {
    return;
  }
  BASRPT_ASSERT(simd::bounds_ok_i32(left, n, n_left),
                "ingress out of range");
  BASRPT_ASSERT(simd::bounds_ok_i32(right, n, n_right),
                "egress out of range");

  // No candidate can be accepted once every left (or every right) port
  // is taken, so the scan stops at max_accept winners — identical
  // selection, and on dense candidate sets most of the tail is skipped.
  const std::size_t max_accept =
      static_cast<std::size_t>(n_left < n_right ? n_left : n_right);
  std::size_t accepted = 0;

  // Monotone fast path: when the scores arrive nondecreasing (and ties,
  // if any, are payload-ordered) the lanes already ARE the selection
  // order — scan them in place. The simd scan bails on the first
  // inversion, so unsorted inputs pay a handful of comparisons.
  const simd::SortedScan scan = simd::sorted_scan_f64(score, n);
  bool presorted = scan.nondecreasing;
  if (presorted && scan.any_equal_adjacent) {
    for (std::size_t i = 1; i < n; ++i) {
      if (score[i - 1] == score[i] && payload[i] < payload[i - 1]) {
        presorted = false;
        break;
      }
    }
  }
  if (presorted) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto l = static_cast<std::size_t>(left[i]);
      const auto r = static_cast<std::size_t>(right[i]);
      if (!left_used_[l] && !right_used_[r]) {
        left_used_[l] = 1;
        right_used_[r] = 1;
        out.push_back(payload[i]);
        if (++accepted == max_accept) {
          break;
        }
      }
    }
    return;
  }

  if (n_left > 0xffff || n_right > 0xffff) {
    // Ports don't fit the 16-bit record fields: comparison-sort an index
    // permutation instead. Cold path — no real fabric has 64k ports.
    perf::ScopedPhase sort_phase(perf::Phase::kMatchSort);
    order_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      order_[i] = static_cast<std::uint32_t>(i);
    }
    std::sort(order_.begin(), order_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (score[a] != score[b]) {
                  return score[a] < score[b];
                }
                return payload[a] < payload[b];
              });
    for (const std::uint32_t i : order_) {
      const auto l = static_cast<std::size_t>(left[i]);
      const auto r = static_cast<std::size_t>(right[i]);
      if (!left_used_[l] && !right_used_[r]) {
        left_used_[l] = 1;
        right_used_[r] = 1;
        out.push_back(payload[i]);
        if (++accepted == max_accept) {
          break;
        }
      }
    }
    return;
  }

  bool in_recs = true;
  {
    perf::ScopedPhase sort_phase(perf::Phase::kMatchSort);
    if (n < kRadixThreshold) {
      recs_.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        recs_[i] = Rec{score[i], static_cast<std::uint32_t>(i),
                       static_cast<std::uint16_t>(left[i]),
                       static_cast<std::uint16_t>(right[i])};
      }
      std::sort(recs_.begin(), recs_.end(),
                [&](const Rec& a, const Rec& b) {
                  if (a.score != b.score) {
                    return a.score < b.score;
                  }
                  return payload[a.idx] < payload[b.idx];
                });
    } else if (!sort_recs_bucket(score, left, right, payload, n)) {
      sort_recs_radix(score, payload, left, right, n);
      in_recs = false;
    }
  }

  if (in_recs) {
    for (const Rec& e : recs_) {
      if (!left_used_[e.left] && !right_used_[e.right]) {
        left_used_[e.left] = 1;
        right_used_[e.right] = 1;
        out.push_back(payload[e.idx]);
        if (++accepted == max_accept) {
          break;
        }
      }
    }
  } else {
    for (const RadixRec& e : rrecs_a_) {
      if (!left_used_[e.left] && !right_used_[e.right]) {
        left_used_[e.left] = 1;
        right_used_[e.right] = 1;
        out.push_back(payload[e.idx]);
        if (++accepted == max_accept) {
          break;
        }
      }
    }
  }
}

void GreedyMatcher::match_into(const std::vector<ScoredCandidate>& candidates,
                               PortId n_left, PortId n_right,
                               std::vector<std::int64_t>& out) {
  const std::size_t n = candidates.size();
  score_s_.resize(n);
  left_s_.resize(n);
  right_s_.resize(n);
  payload_s_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ScoredCandidate& c = candidates[i];
    score_s_[i] = c.score;
    left_s_[i] = c.left;
    right_s_[i] = c.right;
    payload_s_[i] = c.payload;
  }
  match_lanes_into(score_s_.data(), left_s_.data(), right_s_.data(),
                   payload_s_.data(), n, n_left, n_right, out);
}

}  // namespace basrpt::matching
