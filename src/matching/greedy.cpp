#include "matching/greedy.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"

namespace basrpt::matching {

GreedyResult greedy_maximal(std::vector<ScoredCandidate> candidates,
                            PortId n_left, PortId n_right) {
  BASRPT_ASSERT(n_left > 0 && n_right > 0, "port counts must be positive");

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const ScoredCandidate& a, const ScoredCandidate& b) {
                     if (a.score != b.score) {
                       return a.score < b.score;
                     }
                     return a.payload < b.payload;
                   });

  GreedyResult result;
  result.matching.match_of_left.assign(static_cast<std::size_t>(n_left),
                                       kUnmatched);
  std::vector<bool> right_used(static_cast<std::size_t>(n_right), false);

  for (const ScoredCandidate& c : candidates) {
    BASRPT_ASSERT(c.left >= 0 && c.left < n_left, "ingress out of range");
    BASRPT_ASSERT(c.right >= 0 && c.right < n_right, "egress out of range");
    auto& slot = result.matching.match_of_left[static_cast<std::size_t>(c.left)];
    if (slot == kUnmatched && !right_used[static_cast<std::size_t>(c.right)]) {
      slot = c.right;
      right_used[static_cast<std::size_t>(c.right)] = true;
      result.selected_payloads.push_back(c.payload);
    }
  }
  return result;
}

namespace {

/// Maps a double to a 32-bit key whose integer order matches the
/// double's numeric order coarsened to the top 32 bits: flip all bits
/// of negatives, flip only the sign bit of non-negatives, keep the
/// sign, exponent and top 20 mantissa bits. Distinct scores may
/// collide (the fixup pass resolves those runs exactly); equal scores
/// always map to equal keys — -0.0 is first collapsed onto +0.0 so the
/// payload tie-break fires exactly where the comparison path's would.
std::uint32_t coarse_score_key(double score) {
  if (score == 0.0) {
    score = 0.0;  // normalizes -0.0
  }
  std::uint64_t bits;
  std::memcpy(&bits, &score, sizeof(bits));
  const std::uint64_t full = (bits & 0x8000000000000000ull) != 0
                                 ? ~bits
                                 : bits | 0x8000000000000000ull;
  return static_cast<std::uint32_t>(full >> 32);
}

/// 8-bit LSD digits, four passes over the 32-bit key. 256 bins keep
/// the scatter's active write lines (one per bin) inside L1; wider
/// digits save a pass but thrash the cache and measure slower.
constexpr std::uint32_t kRadixBits = 8;
constexpr std::uint32_t kRadixBins = 1u << kRadixBits;
constexpr std::uint32_t kRadixMask = kRadixBins - 1;
constexpr std::size_t kRadixPasses = 4;

}  // namespace

void GreedyMatcher::sort_recs_radix(
    const std::vector<ScoredCandidate>& candidates) {
  const std::size_t n = candidates.size();
  recs_a_.resize(n);
  recs_b_.resize(n);

  // Build the records and all three digit histograms in one pass.
  std::uint32_t hist[kRadixPasses][kRadixBins];
  std::memset(hist, 0, sizeof(hist));
  for (std::size_t i = 0; i < n; ++i) {
    const ScoredCandidate& c = candidates[i];
    const std::uint32_t key = coarse_score_key(c.score);
    recs_a_[i] = {key, static_cast<std::uint16_t>(c.left),
                  static_cast<std::uint16_t>(c.right),
                  static_cast<std::uint32_t>(i)};
    ++hist[0][key & kRadixMask];
    ++hist[1][(key >> kRadixBits) & kRadixMask];
    ++hist[2][(key >> (2 * kRadixBits)) & kRadixMask];
    ++hist[3][key >> (3 * kRadixBits)];
  }

  // LSD passes; a digit position where all keys agree permutes nothing
  // and is skipped (scores from one decision often share sign and
  // exponent range, so a pass or two usually vanishes).
  Rec* src = recs_a_.data();
  Rec* dst = recs_b_.data();
  for (std::size_t p = 0; p < kRadixPasses; ++p) {
    std::uint32_t* h = hist[p];
    bool trivial = false;
    for (std::size_t v = 0; v < kRadixBins; ++v) {
      if (h[v] == n) {
        trivial = true;
        break;
      }
      if (h[v] != 0) {
        break;
      }
    }
    if (trivial) {
      continue;
    }
    std::uint32_t sum = 0;
    for (std::size_t v = 0; v < kRadixBins; ++v) {
      const std::uint32_t count = h[v];
      h[v] = sum;
      sum += count;
    }
    const std::uint32_t shift = static_cast<std::uint32_t>(p) * kRadixBits;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t v = (src[i].key >> shift) & kRadixMask;
      dst[h[v]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != recs_a_.data()) {
    recs_a_.swap(recs_b_);
  }

  // Radix LSD is stable, so equal-coarse-key runs are in original
  // candidate order — but the contract is exact (score, payload) order,
  // and a coarse key can collide for distinct scores. Re-sort each run
  // with the full comparator; runs are rare and short in practice.
  for (std::size_t i = 0; i + 1 < n;) {
    std::size_t j = i + 1;
    while (j < n && recs_a_[j].key == recs_a_[i].key) {
      ++j;
    }
    if (j - i > 1) {
      std::sort(recs_a_.begin() + static_cast<std::ptrdiff_t>(i),
                recs_a_.begin() + static_cast<std::ptrdiff_t>(j),
                [&](const Rec& a, const Rec& b) {
                  const double sa = candidates[a.idx].score;
                  const double sb = candidates[b.idx].score;
                  if (sa != sb) {
                    return sa < sb;
                  }
                  return candidates[a.idx].payload < candidates[b.idx].payload;
                });
    }
    i = j;
  }
}

void GreedyMatcher::match_into(std::vector<ScoredCandidate>& candidates,
                               PortId n_left, PortId n_right,
                               std::vector<std::int64_t>& out) {
  BASRPT_ASSERT(n_left > 0 && n_right > 0, "port counts must be positive");
  out.clear();

  left_used_.assign(static_cast<std::size_t>(n_left), 0);
  right_used_.assign(static_cast<std::size_t>(n_right), 0);

  // No candidate can be accepted once every left (or every right) port
  // is taken, so the scan stops at max_accept winners — identical
  // selection, and on dense candidate sets most of the tail is skipped.
  const std::size_t max_accept =
      static_cast<std::size_t>(n_left < n_right ? n_left : n_right);
  std::size_t accepted = 0;

  if (candidates.size() >= kRadixThreshold && n_left <= 0xffff &&
      n_right <= 0xffff) {
    // Radix path: counting passes over compact records instead of
    // comparison-sorting 24-byte candidates; the accept scan then walks
    // the records sequentially (ports ride inside them) and only
    // touches a candidate when it wins, to fetch the payload. The
    // candidate buffer itself is left untouched.
    for (const ScoredCandidate& c : candidates) {
      BASRPT_ASSERT(c.left >= 0 && c.left < n_left, "ingress out of range");
      BASRPT_ASSERT(c.right >= 0 && c.right < n_right,
                    "egress out of range");
    }
    sort_recs_radix(candidates);
    for (const Rec& e : recs_a_) {
      if (!left_used_[e.left] && !right_used_[e.right]) {
        left_used_[e.left] = 1;
        right_used_[e.right] = 1;
        out.push_back(candidates[e.idx].payload);
        if (++accepted == max_accept) {
          break;
        }
      }
    }
    return;
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              if (a.score != b.score) {
                return a.score < b.score;
              }
              return a.payload < b.payload;
            });

  for (const ScoredCandidate& c : candidates) {
    BASRPT_ASSERT(c.left >= 0 && c.left < n_left, "ingress out of range");
    BASRPT_ASSERT(c.right >= 0 && c.right < n_right, "egress out of range");
    if (!left_used_[static_cast<std::size_t>(c.left)] &&
        !right_used_[static_cast<std::size_t>(c.right)]) {
      left_used_[static_cast<std::size_t>(c.left)] = 1;
      right_used_[static_cast<std::size_t>(c.right)] = 1;
      out.push_back(c.payload);
      if (++accepted == max_accept) {
        break;
      }
    }
  }
}

}  // namespace basrpt::matching
