// Exhaustive enumeration of maximal matchings over a candidate edge set.
//
// Exact BASRPT (Sec. IV-A) "iterates through all possible scheduling
// schemes" — all maximal matchings over the non-empty VOQs — and picks
// the one minimizing V·ȳ(t) − Σ X_ij R_ij. That traversal is exponential
// (up to N! schemes), which is precisely the paper's argument for fast
// BASRPT; we implement it anyway for small fabrics so tests can compare
// the heuristic against the exact optimizer.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "matching/bipartite.hpp"

namespace basrpt::matching {

/// Invokes `visit` once for every maximal matching of `edges` (maximal
/// w.r.t. the edge set: no edge can be added). Duplicate edges are
/// ignored. Complexity is exponential; guarded by `max_ports`.
void for_each_maximal_matching(const std::vector<Edge>& edges, PortId n_left,
                               PortId n_right,
                               const std::function<void(const Matching&)>& visit,
                               PortId max_ports = 12);

/// Counts maximal matchings (test helper).
std::size_t count_maximal_matchings(const std::vector<Edge>& edges,
                                    PortId n_left, PortId n_right);

}  // namespace basrpt::matching
