#include "matching/enumerate.hpp"

#include <algorithm>
#include <set>

#include "common/assert.hpp"

namespace basrpt::matching {

namespace {

struct Enumerator {
  PortId n_left;
  PortId n_right;
  std::vector<std::vector<PortId>> neighbors;  // per left vertex, sorted
  std::vector<Edge> edges;
  const std::function<void(const Matching&)>& visit;

  Matching current;
  std::vector<bool> right_used;

  void recurse(PortId l) {
    if (l == n_left) {
      if (is_maximal_matching(current, edges, n_right)) {
        visit(current);
      }
      return;
    }
    // Option 1: leave l unmatched.
    recurse(l + 1);
    // Option 2: match l to each free neighbor.
    for (PortId r : neighbors[static_cast<std::size_t>(l)]) {
      if (!right_used[static_cast<std::size_t>(r)]) {
        right_used[static_cast<std::size_t>(r)] = true;
        current.match_of_left[static_cast<std::size_t>(l)] = r;
        recurse(l + 1);
        current.match_of_left[static_cast<std::size_t>(l)] = kUnmatched;
        right_used[static_cast<std::size_t>(r)] = false;
      }
    }
  }
};

}  // namespace

void for_each_maximal_matching(
    const std::vector<Edge>& edges, PortId n_left, PortId n_right,
    const std::function<void(const Matching&)>& visit, PortId max_ports) {
  BASRPT_REQUIRE(n_left <= max_ports && n_right <= max_ports,
                 "maximal-matching enumeration is exponential; refusing "
                 "fabric larger than max_ports");

  Enumerator e{n_left, n_right, {}, {}, visit, {}, {}};
  e.neighbors.assign(static_cast<std::size_t>(n_left), {});
  std::set<std::pair<PortId, PortId>> seen;
  for (const Edge& edge : edges) {
    BASRPT_ASSERT(edge.left >= 0 && edge.left < n_left,
                  "edge left endpoint out of range");
    BASRPT_ASSERT(edge.right >= 0 && edge.right < n_right,
                  "edge right endpoint out of range");
    if (seen.insert({edge.left, edge.right}).second) {
      e.neighbors[static_cast<std::size_t>(edge.left)].push_back(edge.right);
      e.edges.push_back(edge);
    }
  }
  for (auto& adj : e.neighbors) {
    std::sort(adj.begin(), adj.end());
  }
  e.current.match_of_left.assign(static_cast<std::size_t>(n_left), kUnmatched);
  e.right_used.assign(static_cast<std::size_t>(n_right), false);
  e.recurse(0);
}

std::size_t count_maximal_matchings(const std::vector<Edge>& edges,
                                    PortId n_left, PortId n_right) {
  std::size_t count = 0;
  for_each_maximal_matching(edges, n_left, n_right,
                            [&count](const Matching&) { ++count; });
  return count;
}

}  // namespace basrpt::matching
