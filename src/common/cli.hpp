// Tiny command-line option parser used by benches and examples.
//
// Supports `--name=value`, `--name value`, and boolean `--flag` /
// `--no-flag`. Unknown options are an error (typos in sweep scripts must
// not silently fall back to defaults). Positional arguments are rejected.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace basrpt {

class CliParser {
 public:
  /// `description` is printed by --help along with registered options.
  explicit CliParser(std::string program, std::string description);

  /// Registers options with default values. Returns *this for chaining.
  CliParser& flag(const std::string& name, bool default_value,
                  const std::string& help);
  CliParser& integer(const std::string& name, std::int64_t default_value,
                     const std::string& help);
  CliParser& real(const std::string& name, double default_value,
                  const std::string& help);
  CliParser& text(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parses argv. Throws ConfigError on unknown, malformed, or repeated
  /// options (a repeated option is a sweep-script bug, not a override).
  /// If --help is present, prints usage and returns false (caller exits 0).
  bool parse(int argc, const char* const* argv);

  bool get_flag(const std::string& name) const;
  std::int64_t get_integer(const std::string& name) const;
  double get_real(const std::string& name) const;
  const std::string& get_text(const std::string& name) const;

  std::string usage() const;

  /// One "name=value\n" line per registered option, in name order, with
  /// the options named in `exclude` omitted. Defaults and explicit values
  /// are indistinguishable on purpose: two invocations that resolve to
  /// the same effective configuration fingerprint identically, which is
  /// what checkpoint/resume compatibility checks need.
  std::string canonical_values(const std::vector<std::string>& exclude) const;

 private:
  enum class Kind { kFlag, kInteger, kReal, kText };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;  // stored textually; typed getters convert
  };

  const Option& find(const std::string& name, Kind kind) const;
  void require_unregistered(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;  // registration order, for usage()
};

}  // namespace basrpt
