// Endpoint parsing and socket setup for the serving transport.
//
// Two endpoint kinds, one spec grammar:
//
//   uds:/path/to.sock      — unix-domain stream socket (the default for
//                            basrptd: no network exposure, filesystem
//                            permissions apply)
//   tcp:127.0.0.1:9321     — TCP loopback; the host must be a numeric
//                            IPv4 address (no resolver in the hot path,
//                            and a scheduling daemon has no business
//                            binding a public interface by accident)
//
// Lives in src/common (not src/srv) because fault::ChaosLink — a layer
// below the serving code — proxies these endpoints too.
#pragma once

#include <cstdint>
#include <string>

#include "common/io.hpp"

namespace basrpt {

struct Endpoint {
  enum class Kind { kUds, kTcp };
  Kind kind = Kind::kUds;
  std::string path;         // kUds
  std::string host;         // kTcp, numeric IPv4
  std::uint16_t port = 0;   // kTcp

  std::string str() const;
};

/// Parses "uds:<path>" or "tcp:<host>:<port>". Throws ConfigError.
Endpoint parse_endpoint(const std::string& spec);

/// Binds + listens. A stale UDS socket file is unlinked first (the
/// previous daemon was SIGKILLed; its checkpoint, not its socket, is
/// the recovery story). Throws ConfigError on failure.
UniqueFd listen_endpoint(const Endpoint& ep, int backlog = 8);

/// One connect attempt. Returns an invalid fd when the peer is absent /
/// refusing (callers back off and retry); throws ConfigError only on
/// misconfiguration (bad address, socket() failure).
UniqueFd connect_endpoint(const Endpoint& ep);

/// Accepts one pending connection; invalid fd when none ready.
UniqueFd accept_on(int listen_fd);

/// O_NONBLOCK on. Throws ConfigError on failure.
void set_nonblocking(int fd);

/// Removes a UDS socket file if `ep` is one (listener teardown).
void unlink_endpoint(const Endpoint& ep);

}  // namespace basrpt
