#include "common/io.hpp"

#include <errno.h>
#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/assert.hpp"
#include "common/interrupt.hpp"

namespace basrpt {

namespace {

std::string errno_text(int err) {
  char buf[128];
  // GNU strerror_r may return a static string instead of filling buf.
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  return std::string(strerror_r(err, buf, sizeof(buf)));
#else
  if (strerror_r(err, buf, sizeof(buf)) != 0) {
    std::snprintf(buf, sizeof(buf), "errno %d", err);
  }
  return std::string(buf);
#endif
}

}  // namespace

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) {
    // Never retry close(2) on EINTR: on Linux the fd is already gone and
    // a retry could double-close a descriptor another thread just got.
    ::close(fd_);
  }
  fd_ = fd;
}

long read_some(int fd, void* buf, std::size_t n) noexcept {
  for (;;) {
    const ssize_t got = ::read(fd, buf, n);
    if (got >= 0) {
      return static_cast<long>(got);
    }
    if (errno == EINTR) {
      continue;
    }
    return -static_cast<long>(errno);
  }
}

long write_some(int fd, const void* buf, std::size_t n) noexcept {
  // Block SIGPIPE for the duration of the write: a peer that hung up
  // must surface as -EPIPE the connection machinery can absorb, not as
  // a fatal signal. (send(MSG_NOSIGNAL) only exists for sockets; this
  // path also serves pipes.)
  sigset_t pipe_mask, saved_mask;
  sigemptyset(&pipe_mask);
  sigaddset(&pipe_mask, SIGPIPE);
  const bool masked =
      pthread_sigmask(SIG_BLOCK, &pipe_mask, &saved_mask) == 0;
  long result;
  for (;;) {
    const ssize_t put = ::write(fd, buf, n);
    if (put >= 0) {
      result = static_cast<long>(put);
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    result = -static_cast<long>(errno);
    break;
  }
  if (masked) {
    if (result == -EPIPE) {
      // Reap the pending SIGPIPE so it doesn't fire on unmask.
      struct timespec zero = {0, 0};
      sigtimedwait(&pipe_mask, nullptr, &zero);
    }
    pthread_sigmask(SIG_SETMASK, &saved_mask, nullptr);
  }
  return result;
}

std::size_t read_full(int fd, void* buf, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const long got =
        read_some(fd, static_cast<char*>(buf) + off, n - off);
    if (got == 0) {
      break;  // EOF
    }
    if (got < 0) {
      throw ConfigError("io: read failed: " +
                        errno_text(static_cast<int>(-got)));
    }
    off += static_cast<std::size_t>(got);
  }
  return off;
}

void write_full(int fd, const void* buf, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const long put =
        write_some(fd, static_cast<const char*>(buf) + off, n - off);
    if (put <= 0) {
      throw ConfigError("io: write failed: " +
                        errno_text(put == 0 ? EIO
                                            : static_cast<int>(-put)));
    }
    off += static_cast<std::size_t>(put);
  }
}

int poll_fds(struct pollfd* fds, std::size_t n, int timeout_ms) {
  const int ready = ::poll(fds, static_cast<nfds_t>(n), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) {
      return 0;  // wake pipe / flag checks take it from here
    }
    throw ConfigError("io: poll failed: " + errno_text(errno));
  }
  return ready;
}

WakePipe::WakePipe() {
  int fds[2];
  BASRPT_REQUIRE(::pipe(fds) == 0,
                 "io: cannot create wake pipe: " + errno_text(errno));
  read_end_.reset(fds[0]);
  write_end_.reset(fds[1]);
  for (const int fd : fds) {
    const int flags = ::fcntl(fd, F_GETFL);
    BASRPT_REQUIRE(flags >= 0 &&
                       ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                   "io: cannot set wake pipe nonblocking");
    const int fdflags = ::fcntl(fd, F_GETFD);
    BASRPT_REQUIRE(fdflags >= 0 &&
                       ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) == 0,
                   "io: cannot set wake pipe cloexec");
  }
}

void WakePipe::notify() noexcept {
  const char byte = 1;
  // EAGAIN means the pipe already holds a wakeup — success. Only
  // async-signal-safe calls here: this runs inside signal handlers.
  [[maybe_unused]] const ssize_t ignored =
      ::write(write_end_.get(), &byte, 1);
}

void WakePipe::drain() noexcept {
  char buf[64];
  while (read_some(read_end_.get(), buf, sizeof(buf)) > 0) {
  }
}

LineStatus IstreamLineSource::next_line(std::string& out) {
  if (!std::getline(*in_, out)) {
    if (in_->bad()) {
      throw ConfigError("io: I/O error while reading stream");
    }
    out.clear();
    return LineStatus::kEof;
  }
  // getline succeeded but hit EOF: the final line had no newline.
  return in_->eof() ? LineStatus::kTorn : LineStatus::kLine;
}

LineStatus FdLineSource::next_line(std::string& out) {
  out.clear();
  for (;;) {
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      out.assign(buf_, pos_, nl - pos_);
      pos_ = nl + 1;
      if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
      }
      return LineStatus::kLine;
    }
    if (eof_) {
      if (pos_ < buf_.size()) {
        out.assign(buf_, pos_, buf_.size() - pos_);
        buf_.clear();
        pos_ = 0;
        return LineStatus::kTorn;
      }
      return LineStatus::kEof;
    }
    if (pos_ > 0) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
    char chunk[4096];
    const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) {
        // A flush (SIGHUP) retries: the feed must not tear. A drain or
        // interrupt ends the stream here — the producer is conceptually
        // gone, matching the istream path where EINTR failed the read.
        if (drain_requested() || interrupt_requested()) {
          eof_ = true;
          continue;
        }
        continue;
      }
      throw ConfigError("io: read failed: " + errno_text(errno));
    }
    if (got == 0) {
      eof_ = true;
      continue;
    }
    buf_.append(chunk, static_cast<std::size_t>(got));
  }
}

}  // namespace basrpt
