// Minimal leveled logger for simulator diagnostics.
//
// Benches and examples print their results directly; the logger is for
// progress/diagnostic chatter that the user may silence. Not thread-safe
// by design: the simulators are single-threaded.
#pragma once

#include <sstream>
#include <string>

namespace basrpt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_write(LogLevel level, const std::string& message);
}

/// Streams one log line at `level`; usage: BASRPT_LOG(kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) {
      detail::log_write(level_, stream_.str());
    }
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) {
      stream_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace basrpt

#define BASRPT_LOG(level) ::basrpt::LogLine(::basrpt::LogLevel::level)
