// Minimal leveled logger for simulator diagnostics.
//
// Benches and examples print their results directly; the logger is for
// progress/diagnostic chatter that the user may silence. Line emission
// is serialized by a mutex so heartbeat chatter from parallel sweep
// cells (--jobs) never interleaves mid-line; configuration
// (set_log_level / set_log_sink) is still single-threaded by design —
// call it before any worker threads start.
//
// The initial threshold honors the BASRPT_LOG_LEVEL environment variable
// (debug|info|warn|error|off, case-insensitive; default warn), read once
// at first use. Output goes through a swappable sink — the default
// prefixes each line with a wall-clock timestamp and level tag on
// stderr; tests install their own sink to capture output.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace basrpt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive);
/// returns `fallback` on anything else.
LogLevel parse_log_level(const std::string& name, LogLevel fallback);

/// Receives every emitted line (already past the threshold). The sink
/// gets the raw message; the default sink adds the timestamp/level
/// prefix itself so captured test output stays clean.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the sink; pass nullptr to restore the default stderr sink.
/// Returns the previous sink so scoped captures can restore it.
LogSink set_log_sink(LogSink sink);

namespace detail {
void log_write(LogLevel level, const std::string& message);
}

/// Streams one log line at `level`; usage: BASRPT_LOG(kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) {
      detail::log_write(level_, stream_.str());
    }
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) {
      stream_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace basrpt

#define BASRPT_LOG(level) ::basrpt::LogLine(::basrpt::LogLevel::level)
