#include "common/assert.hpp"

#include <sstream>

namespace basrpt::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::ostringstream out;
  out << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    out << " — " << message;
  }
  throw SimulationError(out.str());
}

}  // namespace basrpt::detail
