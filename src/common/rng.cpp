#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace basrpt {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 random bits → double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  BASRPT_ASSERT(lo <= hi, "uniform range inverted");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  BASRPT_ASSERT(lo <= hi, "uniform_int range inverted");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::exponential(double rate) {
  BASRPT_ASSERT(rate > 0.0, "exponential rate must be positive");
  // 1 - uniform01() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform01()) / rate;
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

std::array<std::uint64_t, 5> Rng::state() const {
  return {s_[0], s_[1], s_[2], s_[3], seed_};
}

void Rng::restore(const std::array<std::uint64_t, 5>& state) {
  s_[0] = state[0];
  s_[1] = state[1];
  s_[2] = state[2];
  s_[3] = state[3];
  seed_ = state[4];
}

Rng Rng::split(std::uint64_t label) const {
  std::uint64_t sm = seed_ ^ (0xA0761D6478BD642Full * (label + 1));
  return Rng(splitmix64(sm));
}

}  // namespace basrpt
