#include "common/log.hpp"

#include <cstdio>

namespace basrpt {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void log_write(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace basrpt
