#include "common/log.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <utility>

namespace basrpt {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

/// "2026-08-06 12:34:56.789" in local time.
std::string wall_timestamp() {
  const auto now = std::chrono::system_clock::now();
  const auto t = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm);
  char out[40];
  std::snprintf(out, sizeof(out), "%s.%03d", buf, static_cast<int>(ms));
  return out;
}

void default_sink(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] [%s] %s\n", wall_timestamp().c_str(),
               level_name(level), message.c_str());
}

LogLevel level_from_env() {
  const char* env = std::getenv("BASRPT_LOG_LEVEL");
  return env != nullptr ? parse_log_level(env, LogLevel::kWarn)
                        : LogLevel::kWarn;
}

/// Function-local statics so the env var is read exactly once, at first
/// logger use, regardless of static-init order.
LogLevel& level_ref() {
  static LogLevel level = level_from_env();
  return level;
}

LogSink& sink_ref() {
  static LogSink sink = default_sink;
  return sink;
}

/// Serializes emitted lines across threads (parallel sweep cells all
/// heartbeat through here). Configuration is not guarded: it happens
/// before workers start, per the header contract.
std::mutex& write_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

void set_log_level(LogLevel level) { level_ref() = level; }
LogLevel log_level() { return level_ref(); }

LogLevel parse_log_level(const std::string& name, LogLevel fallback) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") {
    return LogLevel::kDebug;
  }
  if (lower == "info") {
    return LogLevel::kInfo;
  }
  if (lower == "warn" || lower == "warning") {
    return LogLevel::kWarn;
  }
  if (lower == "error") {
    return LogLevel::kError;
  }
  if (lower == "off" || lower == "none") {
    return LogLevel::kOff;
  }
  return fallback;
}

LogSink set_log_sink(LogSink sink) {
  LogSink previous = std::move(sink_ref());
  sink_ref() = sink ? std::move(sink) : LogSink(default_sink);
  return previous;
}

namespace detail {
void log_write(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(write_mutex());
  sink_ref()(level, message);
}
}  // namespace detail

}  // namespace basrpt
