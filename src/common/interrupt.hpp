// Cooperative interrupt delivery: async-signal context → simulation loop.
//
// A signal handler may only touch a `volatile sig_atomic_t`, but the
// simulators need interruption to surface as a normal C++ exception at a
// safe point (between events / slots), where state is consistent enough
// to checkpoint. This module is the bridge: the handler (or a test) calls
// request_interrupt(), and the engines poll interrupt_requested() on their
// hot loop, throwing InterruptedError when it trips.
//
// Polling is armed only while a ckpt::SignalGuard is installed; without
// one the flag never trips and the loops pay a single relaxed atomic load
// per poll interval — pay-for-use.
#pragma once

#include "common/assert.hpp"

namespace basrpt {

/// Thrown at a safe boundary after an interrupt was requested. Carries
/// the signal number (0 if the request was programmatic).
class InterruptedError : public SimulationError {
 public:
  explicit InterruptedError(int signal_number);

  int signal_number() const { return signal_number_; }

 private:
  int signal_number_;
};

/// Record an interrupt request. Async-signal-safe (writes one
/// sig_atomic_t and one relaxed atomic int).
void request_interrupt(int signal_number) noexcept;

/// True once request_interrupt() has been called (until cleared).
bool interrupt_requested() noexcept;

/// Signal number of the pending request (0 when programmatic / none).
int interrupt_signal() noexcept;

/// Reset the pending flag (test teardown and post-checkpoint exit paths).
void clear_interrupt() noexcept;

// ---- Graceful drain (SIGTERM under a drain-aware SignalGuard) -----------
//
// A drain request is the soft sibling of an interrupt: the long-running
// service (srv::Server) stops admitting new work, finishes what is in
// flight, checkpoints, and exits 0 — where an interrupt abandons the run
// at the next safe boundary and exits 128+sig. The two flags are
// independent channels so a SIGINT arriving during a drain still cuts the
// run short the hard way.

/// Record a drain request. Async-signal-safe (same discipline as
/// request_interrupt).
void request_drain(int signal_number) noexcept;

/// True once request_drain() has been called (until cleared).
bool drain_requested() noexcept;

/// Signal number of the pending drain request (0 when programmatic/none).
int drain_signal() noexcept;

/// Reset the pending drain flag.
void clear_drain() noexcept;

// ---- Flush (SIGHUP under a drain-aware SignalGuard) ----------------------
//
// A flush request asks the service to checkpoint and rewrite its SLO
// report at the next decision boundary *without* exiting — the classic
// SIGHUP "emit your state" contract. Repeatable: the handler is not
// one-shot, and the service clears the flag after each flush.

/// Record a flush request. Async-signal-safe.
void request_flush(int signal_number) noexcept;

/// True once request_flush() has been called (until cleared).
bool flush_requested() noexcept;

/// Reset the pending flush flag (after servicing it).
void clear_flush() noexcept;

// ---- Pollable wakeup -----------------------------------------------------
//
// The socket transport sleeps in poll(); a bare sig_atomic_t flag cannot
// wake it. While a wake fd is registered, every request_* above also
// writes one byte into it (write(2) is async-signal-safe), so the poll
// returns immediately. Pass -1 to unregister.

void set_signal_wake_fd(int fd) noexcept;

}  // namespace basrpt
