// EINTR-safe POSIX I/O primitives for the serving transport.
//
// Raw read(2)/write(2) return short or fail with EINTR whenever a signal
// lands — and basrptd installs handlers for SIGTERM/SIGINT/SIGHUP, so a
// pipe read interrupted by a routine drain request would otherwise
// surface as a spurious "feed truncated" parse error. Everything here
// retries EINTR; callers never see it.
//
// Two error disciplines coexist on purpose:
//  * read_full/write_full throw ConfigError — for the pipe/file ingest
//    path, where an I/O error genuinely ends the run.
//  * read_some/write_some return -errno — for the socket transport,
//    where a dead peer is a normal event the connection state machine
//    absorbs (the daemon must never die because one client did).
//
// WakePipe is the pollable interrupt channel: signal handlers (via
// common/interrupt.hpp's set_signal_wake_fd) write one byte into it, so
// a poll() sleeping on socket fds wakes immediately instead of at the
// next timeout.
#pragma once

#include <poll.h>

#include <cstddef>
#include <istream>
#include <string>

namespace basrpt {

/// RAII file descriptor.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset(other.fd_);
      other.fd_ = -1;
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// One read(2), EINTR retried. Returns bytes read (0 = EOF) or -errno
/// (notably -EAGAIN on a nonblocking fd with nothing to read).
long read_some(int fd, void* buf, std::size_t n) noexcept;

/// One write(2), EINTR retried, SIGPIPE suppressed (MSG_NOSIGNAL-style:
/// a dead peer comes back as -EPIPE, never a process-killing signal).
long write_some(int fd, const void* buf, std::size_t n) noexcept;

/// Reads exactly `n` bytes unless EOF comes first; returns bytes read
/// (< n only at EOF). Throws ConfigError on I/O error.
std::size_t read_full(int fd, void* buf, std::size_t n);

/// Writes all `n` bytes. Throws ConfigError on any error (incl. EPIPE).
void write_full(int fd, const void* buf, std::size_t n);

/// poll(2) with EINTR surfaced as 0 ("nothing ready") so callers fall
/// through to their flag checks — the signal handler has already poked
/// the wake pipe if anyone cares. Throws ConfigError on real errors.
int poll_fds(struct pollfd* fds, std::size_t n, int timeout_ms);

/// Self-pipe: an always-pollable wake channel. notify() is
/// async-signal-safe (one write on a nonblocking fd; a full pipe is
/// already a wakeup, so EAGAIN is success).
class WakePipe {
 public:
  WakePipe();
  ~WakePipe() = default;
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  int read_fd() const { return read_end_.get(); }
  int write_fd() const { return write_end_.get(); }
  void notify() noexcept;
  /// Swallows queued wake bytes so the next poll sleeps again.
  void drain() noexcept;

 private:
  UniqueFd read_end_;
  UniqueFd write_end_;
};

// ---- Line framing over a byte source ------------------------------------
//
// FeedReader (srv/feed.hpp) is written against this interface so the
// same parser serves an istream (file), a raw fd (stdin pipe, read
// EINTR-safe), and — via the connection state machine's internal
// buffer — a socket.

enum class LineStatus {
  kLine,  // a complete '\n'-terminated line (newline stripped)
  kTorn,  // final bytes with no newline: a torn write — `out` holds them
  kEof,   // clean end of stream
};

class LineSource {
 public:
  virtual ~LineSource() = default;
  /// Reads the next line into `out` (without the newline). May block.
  /// Throws ConfigError on I/O errors.
  virtual LineStatus next_line(std::string& out) = 0;
};

/// LineSource over an istream (feed files, in-memory tests).
class IstreamLineSource : public LineSource {
 public:
  explicit IstreamLineSource(std::istream& in) : in_(&in) {}
  LineStatus next_line(std::string& out) override;

 private:
  std::istream* in_;
};

/// LineSource over a blocking fd (stdin pipe ingest), buffered and
/// EINTR-safe: a SIGHUP mid-read retries instead of tearing the feed.
/// Does not own the fd.
class FdLineSource : public LineSource {
 public:
  explicit FdLineSource(int fd) : fd_(fd) {}
  LineStatus next_line(std::string& out) override;

 private:
  int fd_;
  std::string buf_;
  std::size_t pos_ = 0;
  bool eof_ = false;
};

}  // namespace basrpt
