// Bit-exact serialization primitives shared by checkpoint and trace
// tooling.
//
// Checkpoints must restore *bit-identical* state: a double written as
// "%.17g" survives one round-trip on one libc, but the checkpoint
// contract is byte-identical resumed CSVs across writers and readers, so
// floating-point values travel as the hex image of their IEEE-754 bits
// and integers as fixed-radix text. CRC32 (IEEE 802.3, reflected) guards
// each checkpoint section against torn writes and bit rot.
#pragma once

#include <cstdint>
#include <string>

namespace basrpt {

/// CRC-32 (IEEE 802.3, the zlib polynomial 0xEDB88320), incremental:
/// feed chunks with the previous return value as `crc` (start at 0).
std::uint32_t crc32(std::uint32_t crc, const void* data, std::size_t size);

/// One-shot CRC-32 of a string.
std::uint32_t crc32_of(const std::string& data);

/// 16 lowercase hex digits of the value (fixed width, no prefix).
std::string u64_to_hex(std::uint64_t value);

/// Inverse of u64_to_hex. Throws ConfigError on anything that is not
/// exactly 16 hex digits.
std::uint64_t u64_from_hex(const std::string& text);

/// The double's IEEE-754 bit image as 16 hex digits — total (NaN
/// payloads, signed zeros, infinities all survive) and locale-proof,
/// unlike decimal round-trips.
std::string f64_to_hex(double value);

/// Inverse of f64_to_hex. Throws ConfigError on malformed input.
double f64_from_hex(const std::string& text);

}  // namespace basrpt
