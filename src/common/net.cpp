#include "common/net.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "common/assert.hpp"

namespace basrpt {

namespace {

void fill_uds(const Endpoint& ep, sockaddr_un* addr) {
  BASRPT_REQUIRE(!ep.path.empty(), "net: empty uds path");
  BASRPT_REQUIRE(ep.path.size() < sizeof(addr->sun_path),
                 "net: uds path too long: " + ep.path);
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, ep.path.c_str(), ep.path.size() + 1);
}

void fill_tcp(const Endpoint& ep, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(ep.port);
  BASRPT_REQUIRE(inet_pton(AF_INET, ep.host.c_str(), &addr->sin_addr) == 1,
                 "net: not a numeric IPv4 address: " + ep.host);
}

}  // namespace

std::string Endpoint::str() const {
  if (kind == Kind::kUds) {
    return "uds:" + path;
  }
  return "tcp:" + host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("uds:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUds;
    ep.path = spec.substr(4);
    BASRPT_REQUIRE(!ep.path.empty(),
                   "net: uds endpoint needs a path: '" + spec + "'");
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    BASRPT_REQUIRE(colon != std::string::npos && colon > 0,
                   "net: tcp endpoint is tcp:<host>:<port>: '" + spec + "'");
    ep.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    try {
      std::size_t pos = 0;
      const long port = std::stol(port_text, &pos);
      BASRPT_REQUIRE(pos == port_text.size() && port > 0 && port <= 65535,
                     "net: bad tcp port: '" + port_text + "'");
      ep.port = static_cast<std::uint16_t>(port);
    } catch (const ConfigError&) {
      throw;
    } catch (const std::exception&) {
      throw ConfigError("net: bad tcp port: '" + port_text + "'");
    }
    return ep;
  }
  throw ConfigError(
      "net: endpoint must be uds:<path> or tcp:<host>:<port>, got '" +
      spec + "'");
}

UniqueFd listen_endpoint(const Endpoint& ep, int backlog) {
  UniqueFd fd(::socket(
      ep.kind == Endpoint::Kind::kUds ? AF_UNIX : AF_INET,
      SOCK_STREAM | SOCK_CLOEXEC, 0));
  BASRPT_REQUIRE(fd.valid(),
                 std::string("net: socket() failed: ") + strerror(errno));
  if (ep.kind == Endpoint::Kind::kUds) {
    ::unlink(ep.path.c_str());  // stale file from a SIGKILLed daemon
    sockaddr_un addr;
    fill_uds(ep, &addr);
    BASRPT_REQUIRE(::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                   "net: cannot bind " + ep.str() + ": " + strerror(errno));
  } else {
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    fill_tcp(ep, &addr);
    BASRPT_REQUIRE(::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                   "net: cannot bind " + ep.str() + ": " + strerror(errno));
  }
  BASRPT_REQUIRE(::listen(fd.get(), backlog) == 0,
                 "net: cannot listen on " + ep.str() + ": " +
                     strerror(errno));
  return fd;
}

UniqueFd connect_endpoint(const Endpoint& ep) {
  UniqueFd fd(::socket(
      ep.kind == Endpoint::Kind::kUds ? AF_UNIX : AF_INET,
      SOCK_STREAM | SOCK_CLOEXEC, 0));
  BASRPT_REQUIRE(fd.valid(),
                 std::string("net: socket() failed: ") + strerror(errno));
  int rc;
  if (ep.kind == Endpoint::Kind::kUds) {
    sockaddr_un addr;
    fill_uds(ep, &addr);
    do {
      rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
  } else {
    sockaddr_in addr;
    fill_tcp(ep, &addr);
    do {
      rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) {
      const int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
  }
  if (rc != 0) {
    return UniqueFd();  // peer absent/refusing: the caller backs off
  }
  return fd;
}

UniqueFd accept_on(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int fdflags = ::fcntl(fd, F_GETFD);
      if (fdflags >= 0) {
        ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC);
      }
      return UniqueFd(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    return UniqueFd();  // EAGAIN / transient: nothing to accept
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL);
  BASRPT_REQUIRE(flags >= 0 &&
                     ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 "net: cannot set O_NONBLOCK");
}

void unlink_endpoint(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUds) {
    ::unlink(ep.path.c_str());
  }
}

}  // namespace basrpt
