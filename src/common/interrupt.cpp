#include "common/interrupt.hpp"

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <string>

namespace basrpt {

namespace {
volatile std::sig_atomic_t g_requested = 0;
std::atomic<int> g_signal{0};
volatile std::sig_atomic_t g_drain_requested = 0;
std::atomic<int> g_drain_signal{0};
volatile std::sig_atomic_t g_flush_requested = 0;
std::atomic<int> g_wake_fd{-1};

void poke_wake_fd() noexcept {
  // Async-signal-safe: one write on a nonblocking pipe; EAGAIN means a
  // wakeup is already queued.
  const int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t ignored = ::write(fd, &byte, 1);
  }
}
}  // namespace

InterruptedError::InterruptedError(int signal_number)
    : SimulationError("interrupted by " +
                      (signal_number == SIGINT    ? std::string("SIGINT")
                       : signal_number == SIGTERM ? std::string("SIGTERM")
                       : signal_number == 0
                           ? std::string("request")
                           : "signal " + std::to_string(signal_number))),
      signal_number_(signal_number) {}

void request_interrupt(int signal_number) noexcept {
  g_signal.store(signal_number, std::memory_order_relaxed);
  g_requested = 1;
  poke_wake_fd();
}

bool interrupt_requested() noexcept { return g_requested != 0; }

int interrupt_signal() noexcept {
  return g_signal.load(std::memory_order_relaxed);
}

void clear_interrupt() noexcept {
  g_requested = 0;
  g_signal.store(0, std::memory_order_relaxed);
}

void request_drain(int signal_number) noexcept {
  g_drain_signal.store(signal_number, std::memory_order_relaxed);
  g_drain_requested = 1;
  poke_wake_fd();
}

bool drain_requested() noexcept { return g_drain_requested != 0; }

int drain_signal() noexcept {
  return g_drain_signal.load(std::memory_order_relaxed);
}

void clear_drain() noexcept {
  g_drain_requested = 0;
  g_drain_signal.store(0, std::memory_order_relaxed);
}

void request_flush(int) noexcept {
  g_flush_requested = 1;
  poke_wake_fd();
}

bool flush_requested() noexcept { return g_flush_requested != 0; }

void clear_flush() noexcept { g_flush_requested = 0; }

void set_signal_wake_fd(int fd) noexcept {
  g_wake_fd.store(fd, std::memory_order_relaxed);
}

}  // namespace basrpt
