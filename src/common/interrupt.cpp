#include "common/interrupt.hpp"

#include <atomic>
#include <csignal>
#include <string>

namespace basrpt {

namespace {
volatile std::sig_atomic_t g_requested = 0;
std::atomic<int> g_signal{0};
volatile std::sig_atomic_t g_drain_requested = 0;
std::atomic<int> g_drain_signal{0};
}  // namespace

InterruptedError::InterruptedError(int signal_number)
    : SimulationError("interrupted by " +
                      (signal_number == SIGINT    ? std::string("SIGINT")
                       : signal_number == SIGTERM ? std::string("SIGTERM")
                       : signal_number == 0
                           ? std::string("request")
                           : "signal " + std::to_string(signal_number))),
      signal_number_(signal_number) {}

void request_interrupt(int signal_number) noexcept {
  g_signal.store(signal_number, std::memory_order_relaxed);
  g_requested = 1;
}

bool interrupt_requested() noexcept { return g_requested != 0; }

int interrupt_signal() noexcept {
  return g_signal.load(std::memory_order_relaxed);
}

void clear_interrupt() noexcept {
  g_requested = 0;
  g_signal.store(0, std::memory_order_relaxed);
}

void request_drain(int signal_number) noexcept {
  g_drain_signal.store(signal_number, std::memory_order_relaxed);
  g_drain_requested = 1;
}

bool drain_requested() noexcept { return g_drain_requested != 0; }

int drain_signal() noexcept {
  return g_drain_signal.load(std::memory_order_relaxed);
}

void clear_drain() noexcept {
  g_drain_requested = 0;
  g_drain_signal.store(0, std::memory_order_relaxed);
}

}  // namespace basrpt
