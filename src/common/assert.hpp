// Assertion and error-reporting machinery shared by all BASRPT modules.
//
// Invariant violations (programming errors) use BASRPT_ASSERT, which is
// compiled in all build types: a simulator that silently continues past a
// broken invariant produces plausible-looking but wrong science.
// Configuration errors (bad user input) throw basrpt::ConfigError.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace basrpt {

/// Thrown when user-supplied configuration (topology sizes, loads,
/// distribution parameters, CLI flags) is invalid.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a simulation reaches a state that should be impossible
/// given a valid configuration (e.g. an event in the past).
class SimulationError : public std::logic_error {
 public:
  explicit SimulationError(const std::string& what) : std::logic_error(what) {}
};

/// ConfigError specialization for line-oriented input files (traces,
/// fault plans): carries the 1-based line number so tooling can point at
/// the offending row. Catchable as ConfigError by existing callers.
class ParseError : public ConfigError {
 public:
  ParseError(const std::string& context, std::size_t line,
             const std::string& what)
      : ConfigError(context + " line " + std::to_string(line) + ": " + what),
        line_(line) {}

  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& message);
}  // namespace detail

}  // namespace basrpt

/// Always-on invariant check. Throws basrpt::SimulationError so tests can
/// observe violations instead of the process aborting.
#define BASRPT_ASSERT(expr, message)                                       \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::basrpt::detail::assert_fail(#expr, __FILE__, __LINE__, (message)); \
    }                                                                      \
  } while (false)

/// Validates user configuration; throws basrpt::ConfigError on failure.
#define BASRPT_REQUIRE(expr, message)            \
  do {                                           \
    if (!(expr)) {                               \
      throw ::basrpt::ConfigError((message));    \
    }                                            \
  } while (false)
