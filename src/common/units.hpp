// Strong unit types used throughout the BASRPT codebase.
//
// The paper mixes three natural unit systems:
//   * the analytical model (Sec. III) works in packets and slots,
//   * the flow-level simulator (Sec. V) works in bytes and seconds,
//   * link speeds are quoted in Gbps.
// Mixing these silently is the classic simulator bug, so each gets a
// distinct vocabulary type with explicit conversions.
#pragma once

#include <cstdint>
#include <string>

namespace basrpt {

/// A byte count (flow sizes, queue backlogs). Plain integer wrapper with
/// arithmetic; negative intermediate values are allowed so callers can
/// compute differences, but most APIs assert non-negativity.
struct Bytes {
  std::int64_t count = 0;

  constexpr Bytes() = default;
  constexpr explicit Bytes(std::int64_t n) : count(n) {}

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes operator+(Bytes o) const { return Bytes{count + o.count}; }
  constexpr Bytes operator-(Bytes o) const { return Bytes{count - o.count}; }
  constexpr Bytes& operator+=(Bytes o) {
    count += o.count;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    count -= o.count;
    return *this;
  }
  constexpr Bytes operator*(std::int64_t k) const { return Bytes{count * k}; }
  constexpr double operator/(Bytes o) const {
    return static_cast<double>(count) / static_cast<double>(o.count);
  }
};

constexpr Bytes operator""_B(unsigned long long n) {
  return Bytes{static_cast<std::int64_t>(n)};
}
constexpr Bytes operator""_KB(unsigned long long n) {
  return Bytes{static_cast<std::int64_t>(n) * 1000};
}
constexpr Bytes operator""_MB(unsigned long long n) {
  return Bytes{static_cast<std::int64_t>(n) * 1000 * 1000};
}
constexpr Bytes operator""_GB(unsigned long long n) {
  return Bytes{static_cast<std::int64_t>(n) * 1000 * 1000 * 1000};
}

/// Link rate in bits per second.
struct Rate {
  double bits_per_sec = 0.0;

  constexpr Rate() = default;
  constexpr explicit Rate(double bps) : bits_per_sec(bps) {}

  constexpr auto operator<=>(const Rate&) const = default;

  constexpr Rate operator+(Rate o) const {
    return Rate{bits_per_sec + o.bits_per_sec};
  }
  constexpr Rate operator-(Rate o) const {
    return Rate{bits_per_sec - o.bits_per_sec};
  }
  constexpr Rate operator*(double k) const { return Rate{bits_per_sec * k}; }
  constexpr double operator/(Rate o) const {
    return bits_per_sec / o.bits_per_sec;
  }
  constexpr bool is_zero() const { return bits_per_sec == 0.0; }
};

constexpr Rate gbps(double g) { return Rate{g * 1e9}; }
constexpr Rate mbps(double m) { return Rate{m * 1e6}; }

/// Simulated time in seconds (continuous-time engine).
struct SimTime {
  double seconds = 0.0;

  constexpr SimTime() = default;
  constexpr explicit SimTime(double s) : seconds(s) {}

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const {
    return SimTime{seconds + o.seconds};
  }
  constexpr SimTime operator-(SimTime o) const {
    return SimTime{seconds - o.seconds};
  }
  constexpr SimTime& operator+=(SimTime o) {
    seconds += o.seconds;
    return *this;
  }
};

constexpr SimTime seconds(double s) { return SimTime{s}; }
constexpr SimTime milliseconds(double ms) { return SimTime{ms * 1e-3}; }
constexpr SimTime microseconds(double us) { return SimTime{us * 1e-6}; }

/// Packet count for the slotted input-queued-switch model (Sec. III).
using Packets = std::int64_t;

/// Slot index for the slotted model.
using Slot = std::int64_t;

/// Time to serialize `size` at `rate`.
constexpr SimTime transmission_time(Bytes size, Rate rate) {
  return SimTime{static_cast<double>(size.count) * 8.0 / rate.bits_per_sec};
}

/// Bytes transferred in `duration` at `rate`, truncated to whole bytes.
Bytes bytes_in(Rate rate, SimTime duration);

/// Human-readable rendering used in logs and bench output,
/// e.g. "1.5 MB", "9.2 Gbps", "12.3 ms".
std::string to_string(Bytes b);
std::string to_string(Rate r);
std::string to_string(SimTime t);

}  // namespace basrpt
