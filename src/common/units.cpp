#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace basrpt {

namespace {

std::string format_scaled(double value, const char* const* suffixes,
                          int n_suffixes, double step) {
  int idx = 0;
  double v = value;
  while (std::abs(v) >= step && idx + 1 < n_suffixes) {
    v /= step;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g %s", v, suffixes[idx]);
  return buf;
}

}  // namespace

Bytes bytes_in(Rate rate, SimTime duration) {
  const double bits = rate.bits_per_sec * duration.seconds;
  return Bytes{static_cast<std::int64_t>(bits / 8.0)};
}

std::string to_string(Bytes b) {
  static const char* suffixes[] = {"B", "KB", "MB", "GB", "TB"};
  return format_scaled(static_cast<double>(b.count), suffixes, 5, 1000.0);
}

std::string to_string(Rate r) {
  static const char* suffixes[] = {"bps", "Kbps", "Mbps", "Gbps", "Tbps"};
  return format_scaled(r.bits_per_sec, suffixes, 5, 1000.0);
}

std::string to_string(SimTime t) {
  static const char* suffixes[] = {"s", "ks"};
  if (std::abs(t.seconds) >= 1.0 || t.seconds == 0.0) {
    return format_scaled(t.seconds, suffixes, 2, 1000.0);
  }
  static const char* small[] = {"ns", "us", "ms"};
  double v = t.seconds * 1e9;
  int idx = 0;
  while (std::abs(v) >= 1000.0 && idx < 2) {
    v /= 1000.0;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g %s", v, small[idx]);
  return buf;
}

}  // namespace basrpt
