#include "common/serial.hpp"

#include <array>
#include <cstring>

#include "common/assert.hpp"

namespace basrpt {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

std::uint32_t crc32(std::uint32_t crc, const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32_of(const std::string& data) {
  return crc32(0, data.data(), data.size());
}

std::string u64_to_hex(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xFu];
    value >>= 4;
  }
  return out;
}

std::uint64_t u64_from_hex(const std::string& text) {
  BASRPT_REQUIRE(text.size() == 16,
                 "hex word must be exactly 16 digits: '" + text + "'");
  std::uint64_t value = 0;
  for (const char c : text) {
    const int d = hex_digit(c);
    BASRPT_REQUIRE(d >= 0, "invalid hex digit in '" + text + "'");
    value = (value << 4) | static_cast<std::uint64_t>(d);
  }
  return value;
}

std::string f64_to_hex(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return u64_to_hex(bits);
}

double f64_from_hex(const std::string& text) {
  const std::uint64_t bits = u64_from_hex(text);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace basrpt
