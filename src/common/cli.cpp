#include "common/cli.hpp"

#include <cstdio>
#include <set>
#include <sstream>

#include "common/assert.hpp"

namespace basrpt {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

CliParser& CliParser::flag(const std::string& name, bool default_value,
                           const std::string& help) {
  require_unregistered(name);
  options_[name] = {Kind::kFlag, help, default_value ? "true" : "false"};
  order_.push_back(name);
  return *this;
}

CliParser& CliParser::integer(const std::string& name,
                              std::int64_t default_value,
                              const std::string& help) {
  require_unregistered(name);
  options_[name] = {Kind::kInteger, help, std::to_string(default_value)};
  order_.push_back(name);
  return *this;
}

CliParser& CliParser::real(const std::string& name, double default_value,
                           const std::string& help) {
  require_unregistered(name);
  std::ostringstream out;
  out << default_value;
  options_[name] = {Kind::kReal, help, out.str()};
  order_.push_back(name);
  return *this;
}

CliParser& CliParser::text(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  require_unregistered(name);
  options_[name] = {Kind::kText, help, default_value};
  order_.push_back(name);
  return *this;
}

void CliParser::require_unregistered(const std::string& name) const {
  BASRPT_REQUIRE(options_.count(name) == 0,
                 "option --" + name + " registered twice");
}

bool CliParser::parse(int argc, const char* const* argv) {
  std::set<std::string> seen;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", usage().c_str());
      return false;
    }
    BASRPT_REQUIRE(arg.rfind("--", 0) == 0,
                   "positional argument not supported: " + arg);
    arg = arg.substr(2);

    std::string name;
    std::optional<std::string> value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
    }

    // Boolean negation: --no-foo.
    bool negated = false;
    if (!options_.count(name) && name.rfind("no-", 0) == 0) {
      negated = true;
      name = name.substr(3);
    }

    auto it = options_.find(name);
    BASRPT_REQUIRE(it != options_.end(),
                   "unknown option: --" + name + " (see --help)");
    // A repeated option is almost always a sweep-script editing mistake;
    // silently letting the last occurrence win hides it.
    BASRPT_REQUIRE(seen.insert(name).second,
                   "option --" + name + " given more than once");
    Option& opt = it->second;

    if (opt.kind == Kind::kFlag) {
      BASRPT_REQUIRE(!value || !negated,
                     "--no-" + name + " does not take a value");
      opt.value = negated ? "false" : (value ? *value : "true");
      BASRPT_REQUIRE(opt.value == "true" || opt.value == "false",
                     "flag --" + name + " expects true/false");
    } else {
      BASRPT_REQUIRE(!negated, "--no- only applies to flags: --" + name);
      if (!value) {
        BASRPT_REQUIRE(i + 1 < argc, "option --" + name + " needs a value");
        value = argv[++i];
      }
      // Catch std::exception, not just logic_error: stoll/stod throw
      // std::out_of_range (a runtime_error) on values like "1e999".
      if (opt.kind == Kind::kInteger) {
        try {
          size_t pos = 0;
          (void)std::stoll(*value, &pos);
          BASRPT_REQUIRE(pos == value->size(),
                         "option --" + name + " expects an integer, got '" +
                             *value + "'");
        } catch (const ConfigError&) {
          throw;
        } catch (const std::exception&) {
          throw ConfigError("option --" + name + " expects an integer, got '" +
                            *value + "'");
        }
      } else if (opt.kind == Kind::kReal) {
        try {
          size_t pos = 0;
          (void)std::stod(*value, &pos);
          BASRPT_REQUIRE(pos == value->size(),
                         "option --" + name + " expects a number, got '" +
                             *value + "'");
        } catch (const ConfigError&) {
          throw;
        } catch (const std::exception&) {
          throw ConfigError("option --" + name + " expects a number, got '" +
                            *value + "'");
        }
      }
      opt.value = *value;
    }
  }
  return true;
}

const CliParser::Option& CliParser::find(const std::string& name,
                                         Kind kind) const {
  auto it = options_.find(name);
  BASRPT_ASSERT(it != options_.end(), "option not registered: " + name);
  BASRPT_ASSERT(it->second.kind == kind, "option type mismatch: " + name);
  return it->second;
}

bool CliParser::get_flag(const std::string& name) const {
  return find(name, Kind::kFlag).value == "true";
}

std::int64_t CliParser::get_integer(const std::string& name) const {
  return std::stoll(find(name, Kind::kInteger).value);
}

double CliParser::get_real(const std::string& name) const {
  return std::stod(find(name, Kind::kReal).value);
}

const std::string& CliParser::get_text(const std::string& name) const {
  return find(name, Kind::kText).value;
}

std::string CliParser::canonical_values(
    const std::vector<std::string>& exclude) const {
  const std::set<std::string> skip(exclude.begin(), exclude.end());
  std::ostringstream out;
  for (const auto& [name, opt] : options_) {  // std::map → name order
    if (skip.count(name)) {
      continue;
    }
    out << name << '=' << opt.value << '\n';
  }
  return out.str();
}

std::string CliParser::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    out << "  --" << name;
    switch (opt.kind) {
      case Kind::kFlag:
        break;
      case Kind::kInteger:
        out << "=<int>";
        break;
      case Kind::kReal:
        out << "=<num>";
        break;
      case Kind::kText:
        out << "=<str>";
        break;
    }
    out << "  " << opt.help << " (default: " << opt.value << ")\n";
  }
  return out.str();
}

}  // namespace basrpt
