// Deterministic random-number generation.
//
// Every stochastic component (workload generator, randomized scheduler,
// arrival process) owns its own Rng stream derived from a master seed, so
// simulations are reproducible and components can be re-seeded
// independently (changing the scheduler's randomness must not perturb the
// arrival sequence, or A/B comparisons between schedulers are invalid).
//
// Generator: xoshiro256** (public domain, Blackman & Vigna), seeded via
// SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace basrpt {

/// SplitMix64 step; used for seeding and cheap hash-like stream splitting.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator. Satisfies
/// std::uniform_random_bit_generator, so it plugs into <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive, unbiased via rejection).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate);

  /// True with probability p.
  bool bernoulli(double p);

  /// Derives an independent child stream; deterministic in (this stream's
  /// seed, label). Use one label per component.
  Rng split(std::uint64_t label) const;

  /// Checkpointable state: the four xoshiro256** words followed by the
  /// retained seed (needed so split() keeps working after restore()).
  std::array<std::uint64_t, 5> state() const;

  /// Restores a stream captured with state(); the draw sequence continues
  /// bit-identically from the capture point.
  void restore(const std::array<std::uint64_t, 5>& state);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;  // retained so split() is reproducible
};

}  // namespace basrpt
