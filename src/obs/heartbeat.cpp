#include "obs/heartbeat.hpp"

#include <utility>

#include "common/log.hpp"

namespace basrpt::obs {

namespace {

/// Installed before worker threads start and cleared after they join,
/// so concurrent default_report calls only ever *invoke* it.
HeartbeatNoteFn g_note;

void default_report(const HeartbeatStatus& s) {
  LogLine line = BASRPT_LOG(kInfo);
  line << "heartbeat #" << s.beats << ": sim t=" << s.sim_time_sec << "s, "
       << s.events << " events, " << s.events_per_sec << " events/s, wall "
       << s.wall_elapsed_sec << "s";
  if (s.stall_checks > 0) {
    line << ", watchdog " << s.stall_checks << " checks";
    if (s.stall_frozen_events > 0 || s.stall_frozen_wall_sec > 0.0) {
      line << " (frozen: " << s.stall_frozen_events << " events, "
           << s.stall_frozen_wall_sec << "s wall)";
    }
  }
  if (g_note) {
    const std::string note = g_note();
    if (!note.empty()) {
      line << ", " << note;
    }
  }
}

}  // namespace

HeartbeatNoteFn set_heartbeat_note(HeartbeatNoteFn fn) {
  HeartbeatNoteFn previous = std::move(g_note);
  g_note = std::move(fn);
  return previous;
}

void Heartbeat::configure(double wall_interval_sec, ReportFn fn) {
  interval_sec_ = wall_interval_sec;
  fn_ = fn ? std::move(fn) : ReportFn(default_report);
  ticks_ = 0;
  beats_ = 0;
  started_ = false;
}

void Heartbeat::check(double sim_time_sec, std::uint64_t events) {
  const auto now = std::chrono::steady_clock::now();
  if (!started_) {
    started_ = true;
    start_ = now;
    last_beat_ = now;
    events_at_last_beat_ = events;
    return;
  }
  const double since_beat =
      std::chrono::duration<double>(now - last_beat_).count();
  if (since_beat < interval_sec_) {
    return;
  }
  HeartbeatStatus status;
  status.wall_elapsed_sec =
      std::chrono::duration<double>(now - start_).count();
  status.sim_time_sec = sim_time_sec;
  status.events = events;
  status.events_per_sec =
      since_beat > 0.0
          ? static_cast<double>(events - events_at_last_beat_) / since_beat
          : 0.0;
  status.beats = ++beats_;
  last_beat_ = now;
  events_at_last_beat_ = events;
  if (augment_) {
    augment_(status);
  }
  fn_(status);
}

void Heartbeat::flush(double sim_time_sec, std::uint64_t events) {
  if (!active() || !started_) {
    return;
  }
  check(sim_time_sec, events);
}

}  // namespace basrpt::obs
