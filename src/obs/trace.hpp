// Flow-lifecycle tracing: arrival / first-service / preemption /
// completion events from either simulator, exportable as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing) or as
// line-delimited JSON for ad-hoc analysis.
//
// The tracer is purely passive: the simulators call the on_* hooks with
// state they already hold, and a null tracer pointer costs one branch.
// Records accumulate in memory and are written once at end of run —
// tracing is opt-in (--trace), so the buffer only exists when asked for.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_set>
#include <vector>

namespace basrpt::obs {

enum class FlowEvent {
  kArrival = 0,
  kFirstService = 1,
  kPreemption = 2,
  kCompletion = 3,
};

const char* flow_event_name(FlowEvent event);

/// A completed profiler phase span merged into the trace stream. Times
/// are wall-clock microseconds relative to the profiling window start
/// (the trace's flow events use sim time; phase spans live on their own
/// pid so the two time bases never share a row).
struct PhaseSpan {
  std::string name;
  double start_us = 0.0;
  double dur_us = 0.0;
};

struct FlowTraceRecord {
  FlowEvent event = FlowEvent::kArrival;
  std::int64_t flow = 0;
  std::int32_t src = 0;
  std::int32_t dst = 0;
  double time_sec = 0.0;   // sim time; the slotted model passes slots
  double size = 0.0;       // original flow size (bytes or packets)
  double remaining = 0.0;  // remaining at the event
  std::int64_t run = 0;    // which simulation run emitted the event
};

class FlowTracer {
 public:
  /// Simulators call this at the start of each run. Flow ids restart at
  /// zero per run, so a tracer shared across several runs in one bench
  /// must scope both the first-service dedup and the exported span ids
  /// by run — otherwise run 2's flow 0 looks like a resumption of run
  /// 1's flow 0.
  void begin_run() {
    ++run_;
    first_served_.clear();
  }
  std::int64_t run() const { return run_; }

  void on_arrival(std::int64_t flow, std::int32_t src, std::int32_t dst,
                  double t, double size) {
    push({FlowEvent::kArrival, flow, src, dst, t, size, size, run_});
  }

  /// Emits kFirstService the first time a flow is selected for service;
  /// later selections of the same flow (resumptions after preemption)
  /// are not lifecycle events and are dropped here, so callers can
  /// report every selection without bookkeeping.
  void on_service(std::int64_t flow, std::int32_t src, std::int32_t dst,
                  double t, double size, double remaining) {
    if (first_served_.insert(flow).second) {
      push({FlowEvent::kFirstService, flow, src, dst, t, size, remaining,
            run_});
    }
  }

  void on_preemption(std::int64_t flow, std::int32_t src, std::int32_t dst,
                     double t, double size, double remaining) {
    push({FlowEvent::kPreemption, flow, src, dst, t, size, remaining, run_});
  }

  void on_completion(std::int64_t flow, std::int32_t src, std::int32_t dst,
                     double t, double size) {
    push({FlowEvent::kCompletion, flow, src, dst, t, size, 0.0, run_});
  }

  /// Records a profiler phase span for merged export (--profile +
  /// --trace). Spans are drawn as complete ("X") events under a
  /// dedicated "perf" process row in the Chrome trace.
  void add_phase_span(const std::string& name, double start_us,
                      double dur_us) {
    phase_spans_.push_back({name, start_us, dur_us});
  }
  const std::vector<PhaseSpan>& phase_spans() const { return phase_spans_; }

  const std::vector<FlowTraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  void clear();

  /// Appends another tracer's records, renumbering its runs to follow
  /// this tracer's, and leaves `other` empty. Committing per-cell
  /// tracers in submission order reproduces exactly the stream the
  /// cells would have written into one shared tracer sequentially —
  /// this is how the parallel sweep runner keeps --trace output
  /// byte-identical at any --jobs.
  void absorb(FlowTracer& other);

  /// Chrome trace-event format: arrival..completion become an async
  /// "b"/"e" pair keyed by flow id, first-service and preemption become
  /// instant events. pid = ingress port, tid = egress port, so Perfetto
  /// groups the timeline by VOQ. `ts` is sim time scaled to
  /// microseconds. A `status` other than "ok" (e.g. "interrupted" for a
  /// partial flush) appends a run_status marker; "ok" leaves the output
  /// byte-identical to the status-less format.
  void write_chrome_json(std::ostream& out,
                         const std::string& status = "ok") const;
  void write_chrome_json_file(const std::string& path,
                              const std::string& status = "ok") const;

  /// One JSON object per line: {"event":...,"flow":...,...}.
  void write_jsonl(std::ostream& out, const std::string& status = "ok") const;
  void write_jsonl_file(const std::string& path,
                        const std::string& status = "ok") const;

 private:
  void push(const FlowTraceRecord& r) { records_.push_back(r); }

  std::vector<FlowTraceRecord> records_;
  std::vector<PhaseSpan> phase_spans_;
  std::unordered_set<std::int64_t> first_served_;
  std::int64_t run_ = 0;
};

}  // namespace basrpt::obs
