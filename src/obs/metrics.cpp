#include "obs/metrics.hpp"

#include <cmath>

namespace basrpt::obs {

namespace {
bool g_enabled = false;

/// Per-thread registry override; null means "record into global()".
/// Written only by ScopedRegistryBind on the owning thread.
thread_local Registry* t_bound_registry = nullptr;
}  // namespace

bool enabled() { return g_enabled; }
void set_enabled(bool on) { g_enabled = on; }

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry& Registry::active() {
  return t_bound_registry != nullptr ? *t_bound_registry : global();
}

void Registry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  notes_.clear();
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, counter] : other.counters_) {
    counters_[name].merge_from(counter);
  }
  for (const auto& [name, gauge] : other.gauges_) {
    gauges_[name].merge_from(gauge);
  }
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].merge_from(histogram);
  }
  for (const auto& [name, note] : other.notes_) {
    notes_[name] = note;  // last write wins, like Gauge values
  }
}

ScopedRegistryBind::ScopedRegistryBind(Registry* shard)
    : previous_(t_bound_registry) {
  if (shard != nullptr) {
    t_bound_registry = shard;
  }
}

ScopedRegistryBind::~ScopedRegistryBind() { t_bound_registry = previous_; }

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  if (q <= 0.0) {
    return static_cast<double>(min());
  }
  if (q >= 1.0) {
    return static_cast<double>(max_);
  }
  // Rank of the q-th sample (1-based), then walk the buckets.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    seen += counts_[k];
    if (seen >= rank) {
      const double lo = static_cast<double>(bucket_lower(k));
      const double hi = static_cast<double>(
          k + 1 < kBuckets ? bucket_lower(k + 1) : max_ + 1);
      // Geometric midpoint; clamp into the observed range so tiny
      // histograms don't report values outside [min, max].
      const double mid = lo > 0.0 ? std::sqrt(lo * hi) : hi / 2.0;
      const double lo_clamp = static_cast<double>(min());
      const double hi_clamp = static_cast<double>(max_);
      return std::min(std::max(mid, lo_clamp), hi_clamp);
    }
  }
  return static_cast<double>(max_);
}

}  // namespace basrpt::obs
