// Low-overhead run-health metrics: named counters, gauges, and log-scale
// latency histograms collected in a Registry.
//
// Each simulation run is single-threaded, so none of this locks. The
// parallel sweep runner (src/exec) gives every concurrent cell its own
// Registry shard via the thread-local active() override and merges the
// shards back into the global registry in cell-submission order, which
// keeps the lock-free hot path while making multi-threaded sweeps safe.
// The instrumentation contract is *passivity*: recording a metric may
// never touch the RNG, the event calendar, or a scheduling decision, so
// runs with and without observability produce bit-identical results. The
// global enable flag keeps the off path to a single predictable branch
// (ScopedTimer does not even read the clock when disabled).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace basrpt::obs {

/// Global instrumentation switch. Off by default; benches flip it on
/// when --metrics/--trace is requested.
bool enabled();
void set_enabled(bool on);

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::int64_t n = 1) { value_ += n; }
  std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

  /// Folds another counter in (shard merge): counts simply add.
  void merge_from(const Counter& other) { value_ += other.value_; }

 private:
  std::int64_t value_ = 0;
};

/// Last-written value plus the maximum ever written (peak tracking).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (v > max_ || !set_) {
      max_ = v;
    }
    set_ = true;
  }
  double value() const { return value_; }
  double max() const { return max_; }
  bool is_set() const { return set_; }
  void reset() { *this = Gauge{}; }

  /// Folds another gauge in (shard merge). Applied in cell-submission
  /// order this reproduces the sequential outcome: the later shard's
  /// last write wins, the peak is the max over both.
  void merge_from(const Gauge& other) {
    if (!other.set_) {
      return;
    }
    value_ = other.value_;
    max_ = set_ && max_ > other.max_ ? max_ : other.max_;
    set_ = true;
  }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  bool set_ = false;
};

/// Histogram of non-negative integer samples (nanoseconds by convention)
/// with power-of-two bucket edges: bucket k counts values in
/// [2^k, 2^(k+1)), values of 0 land in bucket 0. Log-scale bucketing via
/// one bit-scan per sample — no std::log on the hot path — covering the
/// full 64-bit range (sub-nanosecond to centuries).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void add(std::uint64_t v) {
    ++counts_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (v < min_) {
      min_ = v;
    }
    if (v > max_) {
      max_ = v;
    }
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Approximate quantile (q in [0, 1]) using the geometric midpoint of
  /// the bucket holding the q-th sample; exact at the extremes thanks to
  /// the tracked min/max.
  double quantile(double q) const;

  std::uint64_t bucket_count(std::size_t k) const { return counts_[k]; }
  /// Lower edge of bucket k (0 for k == 0, else 2^k).
  static std::uint64_t bucket_lower(std::size_t k) {
    return k == 0 ? 0 : std::uint64_t{1} << k;
  }
  static std::size_t bucket_of(std::uint64_t v) {
    return v == 0 ? 0
                  : static_cast<std::size_t>(63 - __builtin_clzll(v));
  }

  void reset() { *this = LatencyHistogram{}; }

  /// Folds another histogram in (shard merge): buckets, count, and sum
  /// add; min/max combine. Order-independent.
  void merge_from(const LatencyHistogram& other) {
    for (std::size_t k = 0; k < kBuckets; ++k) {
      counts_[k] += other.counts_[k];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ > 0 && other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

/// Named-metric registry. Lookups return stable references (std::map
/// nodes never move), so hot paths resolve a metric once and keep the
/// pointer. `global()` is the process-wide instance; the simulators and
/// the InstrumentedScheduler record into `active()`, which is global()
/// unless the calling thread has bound a shard (ScopedRegistryBind).
/// Tests construct their own.
class Registry {
 public:
  static Registry& global();

  /// The registry the current thread should record into: its bound
  /// shard if a ScopedRegistryBind is live, else global(). This is what
  /// keeps per-cell metrics isolated under the parallel sweep runner
  /// without a lock on the recording path.
  static Registry& active();

  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  LatencyHistogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  /// Free-form text annotation (e.g. the watchdog's stall diagnostics, a
  /// health state machine's last transition reason). Notes are for post
  /// mortems — exporters write them verbatim; there is no arithmetic.
  /// Last write wins, both locally and across shard merges.
  void set_note(const std::string& name, const std::string& value) {
    notes_[name] = value;
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, LatencyHistogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, std::string>& notes() const { return notes_; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           notes_.empty();
  }

  /// Drops every metric (names included); used between test cases and by
  /// benches that run several experiments and want per-run numbers.
  void reset();

  /// Folds a shard's metrics into this registry. The per-type merge
  /// rules (counters add, gauges last-write-wins, histograms combine)
  /// make a sequence of merges in cell-submission order reproduce the
  /// registry a sequential run would have built, and the operation is
  /// associative: merging shard groups in any grouping — as long as the
  /// overall order is preserved — yields the same registry.
  void merge_from(const Registry& other);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
  std::map<std::string, std::string> notes_;
};

/// Routes Registry::active() to `shard` for the lifetime of the binder,
/// on the constructing thread only. The parallel cell runner binds each
/// cell's shard around the cell's compute; nesting restores the previous
/// binding on destruction. Passing nullptr is a no-op binding (active()
/// stays global()).
class ScopedRegistryBind {
 public:
  explicit ScopedRegistryBind(Registry* shard);
  ~ScopedRegistryBind();
  ScopedRegistryBind(const ScopedRegistryBind&) = delete;
  ScopedRegistryBind& operator=(const ScopedRegistryBind&) = delete;

 private:
  Registry* previous_;
};

/// Records the wall-clock lifetime of a scope into a LatencyHistogram,
/// in nanoseconds. Arms only when obs::enabled() (the off path never
/// reads the clock) unless `always` forces it — the
/// InstrumentedScheduler uses `always` because wrapping a scheduler is
/// itself the opt-in.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram& hist, bool always = false)
      : hist_((always || enabled()) ? &hist : nullptr) {
    if (hist_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now instead of at scope exit; returns the elapsed
  /// nanoseconds (0 when disarmed). Idempotent.
  std::uint64_t stop() {
    if (hist_ == nullptr) {
      return 0;
    }
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    hist_->add(static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
    hist_ = nullptr;
    return static_cast<std::uint64_t>(ns < 0 ? 0 : ns);
  }

 private:
  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace basrpt::obs
