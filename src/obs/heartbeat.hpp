// Wall-clock-paced progress reporting for long runs.
//
// A --full 144-host run simulates hours of traffic over hours of wall
// clock; without a heartbeat the process is a black box. The owner (the
// event engine's run loop, or the slotted simulator's slot loop) calls
// tick() cheaply and often; the Heartbeat reads the steady clock at most
// once every kCheckEvery ticks and invokes the report function whenever
// the configured wall interval has elapsed. Reporting is passive — it
// only reads simulation state handed to it.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

#include <string>

namespace basrpt::obs {

/// Process-wide annotation appended to every default heartbeat line
/// while installed (e.g. the parallel cell runner reporting "cells 3/16
/// committed, 4 in flight"). Returns the previous provider so scopes can
/// restore it. Install/clear only while no simulation threads are
/// running; the provider itself must be safe to call from any thread.
using HeartbeatNoteFn = std::function<std::string()>;
HeartbeatNoteFn set_heartbeat_note(HeartbeatNoteFn fn);

struct HeartbeatStatus {
  double wall_elapsed_sec = 0.0;  // since the first tick
  double sim_time_sec = 0.0;      // simulated seconds (or slots)
  std::uint64_t events = 0;       // events/slots processed so far
  double events_per_sec = 0.0;    // wall-clock rate since the last beat
  std::uint64_t beats = 0;        // 1-based beat index

  // Watchdog counters, filled by the owner's augment hook when a stall
  // watchdog is armed (see fault::Watchdog); all-zero otherwise.
  std::uint64_t stall_checks = 0;          // full watchdog checks so far
  std::uint64_t stall_frozen_events = 0;   // events at the frozen instant
  double stall_frozen_wall_sec = 0.0;      // wall time sim has been frozen
};

class Heartbeat {
 public:
  using ReportFn = std::function<void(const HeartbeatStatus&)>;

  /// Ticks between steady_clock reads; a power of two so the modulo is
  /// a mask.
  static constexpr std::uint64_t kCheckEvery = 1024;

  Heartbeat() = default;

  /// Enables beats every `wall_interval_sec` (<= 0 disables). A null
  /// `fn` logs one BASRPT_LOG(kInfo) line per beat.
  void configure(double wall_interval_sec, ReportFn fn = nullptr);

  /// Owner hook that decorates each beat's status before it is reported
  /// (e.g. the engine copying its watchdog's stall counters in). Null
  /// disables. Survives configure().
  void set_augment(std::function<void(HeartbeatStatus&)> fn) {
    augment_ = std::move(fn);
  }

  bool active() const { return interval_sec_ > 0.0; }

  /// Call once per event/slot with current sim time and processed count.
  void tick(double sim_time_sec, std::uint64_t events) {
    if (!active() || (++ticks_ & (kCheckEvery - 1)) != 0) {
      return;
    }
    check(sim_time_sec, events);
  }

  /// Forces a final beat (e.g. at end of run) if at least one interval
  /// elapsed since the last one.
  void flush(double sim_time_sec, std::uint64_t events);

  std::uint64_t beats() const { return beats_; }

 private:
  void check(double sim_time_sec, std::uint64_t events);

  double interval_sec_ = 0.0;
  ReportFn fn_;
  std::function<void(HeartbeatStatus&)> augment_;
  std::uint64_t ticks_ = 0;
  std::uint64_t beats_ = 0;
  bool started_ = false;
  std::chrono::steady_clock::time_point start_{};
  std::chrono::steady_clock::time_point last_beat_{};
  std::uint64_t events_at_last_beat_ = 0;
};

}  // namespace basrpt::obs
