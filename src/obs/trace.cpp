#include "obs/trace.hpp"

#include <fstream>
#include <ostream>

#include "common/assert.hpp"

namespace basrpt::obs {

const char* flow_event_name(FlowEvent event) {
  switch (event) {
    case FlowEvent::kArrival:
      return "arrival";
    case FlowEvent::kFirstService:
      return "first_service";
    case FlowEvent::kPreemption:
      return "preemption";
    case FlowEvent::kCompletion:
      return "completion";
  }
  return "?";
}

void FlowTracer::absorb(FlowTracer& other) {
  records_.reserve(records_.size() + other.records_.size());
  for (FlowTraceRecord r : other.records_) {
    r.run += run_;
    records_.push_back(r);
  }
  // Phase spans carry wall-clock offsets, not run-scoped sim time, so
  // they concatenate unchanged.
  phase_spans_.insert(phase_spans_.end(), other.phase_spans_.begin(),
                      other.phase_spans_.end());
  run_ += other.run_;
  other.clear();
  other.run_ = 0;
}

void FlowTracer::clear() {
  records_.clear();
  phase_spans_.clear();
  first_served_.clear();
  run_ = 0;
}

namespace {

/// Sim seconds → Chrome trace microseconds.
constexpr double kTsScale = 1e6;

/// Async b/e events are matched by (cat, id); flow ids restart per run,
/// so the exported span id folds the run index into the high bits.
std::int64_t span_id(const FlowTraceRecord& r) {
  return (r.run << 32) | r.flow;
}

void write_args(std::ostream& out, const FlowTraceRecord& r) {
  out << "\"args\":{\"size\":" << r.size << ",\"remaining\":" << r.remaining
      << ",\"run\":" << r.run << "}";
}

void write_common(std::ostream& out, const FlowTraceRecord& r) {
  out << "\"cat\":\"flow\",\"ts\":" << r.time_sec * kTsScale
      << ",\"pid\":" << r.src << ",\"tid\":" << r.dst << ",";
}

void write_chrome_event(std::ostream& out, const FlowTraceRecord& r) {
  out << "{";
  switch (r.event) {
    case FlowEvent::kArrival:
      out << "\"ph\":\"b\",\"name\":\"flow\",\"id\":" << span_id(r) << ",";
      break;
    case FlowEvent::kCompletion:
      out << "\"ph\":\"e\",\"name\":\"flow\",\"id\":" << span_id(r) << ",";
      break;
    case FlowEvent::kFirstService:
    case FlowEvent::kPreemption:
      out << "\"ph\":\"i\",\"s\":\"t\",\"name\":\""
          << flow_event_name(r.event) << "\",";
      break;
  }
  write_common(out, r);
  write_args(out, r);
  out << "}";
}

}  // namespace

void FlowTracer::write_chrome_json(std::ostream& out,
                                   const std::string& status) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const FlowTraceRecord& r : records_) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n";
    write_chrome_event(out, r);
  }
  // Profiler phase spans (present only under --profile) render as
  // complete events on a dedicated pid so the wall-clock time base
  // never mixes with the flow rows' sim time base. Port pids are
  // non-negative, so -1 is free for the perf row.
  if (!phase_spans_.empty()) {
    out << (first ? "" : ",")
        << "\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":-1,"
           "\"args\":{\"name\":\"perf\"}}";
    first = false;
    for (const PhaseSpan& span : phase_spans_) {
      out << ",\n{\"ph\":\"X\",\"cat\":\"phase\",\"name\":\"" << span.name
          << "\",\"ts\":" << span.start_us << ",\"dur\":" << span.dur_us
          << ",\"pid\":-1,\"tid\":0}";
    }
  }
  // Clean runs stay byte-identical to the pre-status format; a partial
  // flush stamps a metadata event so viewers and diffs can tell.
  if (status != "ok") {
    out << (first ? "" : ",")
        << "\n{\"ph\":\"M\",\"name\":\"run_status\",\"args\":{\"status\":\""
        << status << "\"}}";
  }
  out << "\n]}\n";
}

void FlowTracer::write_jsonl(std::ostream& out,
                             const std::string& status) const {
  for (const FlowTraceRecord& r : records_) {
    out << "{\"event\":\"" << flow_event_name(r.event)
        << "\",\"run\":" << r.run << ",\"flow\":" << r.flow
        << ",\"src\":" << r.src << ",\"dst\":" << r.dst
        << ",\"t\":" << r.time_sec << ",\"size\":" << r.size
        << ",\"remaining\":" << r.remaining << "}\n";
  }
  if (status != "ok") {
    out << "{\"event\":\"run_status\",\"status\":\"" << status << "\"}\n";
  }
}

namespace {
std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  BASRPT_REQUIRE(out.good(), "cannot open trace output file: " + path);
  return out;
}
}  // namespace

void FlowTracer::write_chrome_json_file(const std::string& path,
                                        const std::string& status) const {
  auto out = open_or_throw(path);
  write_chrome_json(out, status);
}

void FlowTracer::write_jsonl_file(const std::string& path,
                                  const std::string& status) const {
  auto out = open_or_throw(path);
  write_jsonl(out, status);
}

}  // namespace basrpt::obs
