#include "stats/percentile.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace basrpt::stats {

// --------------------------------------------------------- ExactPercentiles

void ExactPercentiles::add(double value) {
  values_.push_back(value);
  sorted_ = false;
}

double ExactPercentiles::quantile(double q) const {
  BASRPT_ASSERT(!values_.empty(), "quantile of empty sample set");
  BASRPT_ASSERT(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const double rank = q * static_cast<double>(values_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] + frac * (values_[hi] - values_[lo]);
}

// --------------------------------------------------------------- P2Quantile

P2Quantile::P2Quantile(double q) : q_(q) {
  BASRPT_REQUIRE(q > 0.0 && q < 1.0, "P2 quantile must be in (0,1)");
  warmup_.reserve(5);
}

void P2Quantile::add(double value) {
  ++count_;
  if (count_ <= 5) {
    warmup_.push_back(value);
    if (count_ == 5) {
      std::sort(warmup_.begin(), warmup_.end());
      for (int i = 0; i < 5; ++i) {
        heights_[i] = warmup_[static_cast<std::size_t>(i)];
        positions_[i] = i + 1;
      }
      desired_[0] = 1;
      desired_[1] = 1 + 2 * q_;
      desired_[2] = 1 + 4 * q_;
      desired_[3] = 3 + 2 * q_;
      desired_[4] = 5;
      increments_[0] = 0;
      increments_[1] = q_ / 2;
      increments_[2] = q_;
      increments_[3] = (1 + q_) / 2;
      increments_[4] = 1;
    }
    return;
  }

  // Locate cell k such that heights_[k] <= value < heights_[k+1].
  int k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && value >= heights_[k + 1]) {
      ++k;
    }
  }

  for (int i = k + 1; i < 5; ++i) {
    positions_[i] += 1;
  }
  for (int i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }

  // Adjust interior markers via parabolic (or linear) interpolation.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double gap_up = positions_[i + 1] - positions_[i];
    const double gap_down = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && gap_up > 1.0) || (d <= -1.0 && gap_down < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction.
      const double new_height =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + sign) *
                   (heights_[i + 1] - heights_[i]) / gap_up +
               (positions_[i + 1] - positions_[i] - sign) *
                   (heights_[i] - heights_[i - 1]) / (-gap_down));
      if (heights_[i - 1] < new_height && new_height < heights_[i + 1]) {
        heights_[i] = new_height;
      } else {
        // Fall back to linear interpolation toward the neighbor.
        const int j = sign > 0 ? i + 1 : i - 1;
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  BASRPT_ASSERT(count_ > 0, "P2 estimate with no samples");
  if (count_ < 5) {
    std::vector<double> sorted = warmup_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = q_ * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

}  // namespace basrpt::stats
