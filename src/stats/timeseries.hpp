// Time series recording and trend analysis.
//
// The paper's stability verdicts (Figs. 2, 5b, 7) come from eyeballing
// queue-length traces over 500 s: "if the queue length keeps growing in
// macroscale during the total 500s, we think of it as unstable". We make
// that judgement programmatic: linear-regression slope plus a
// windowed-growth ratio, so tests can assert stability/instability.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace basrpt::stats {

/// A (time, value) sample trace with bounded memory: when `max_points` is
/// exceeded the series halves itself by dropping every other point and
/// doubling the sampling stride (so long traces keep uniform coverage).
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t max_points = 1 << 16);

  void add(SimTime t, double value);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  struct Point {
    double t;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }

  /// Least-squares slope of value against time (units: value per second).
  double slope() const;

  /// Mean of the samples whose time lies in [t_lo, t_hi].
  double window_mean(SimTime t_lo, SimTime t_hi) const;

  /// Mean over the last `fraction` of the trace's time span.
  double tail_mean(double fraction = 0.25) const;

  double max_value() const;
  double last_value() const;

  /// Checkpointable image: the compaction cursor plus retained points.
  /// `max_points` is construction-time configuration and is not part of
  /// the state (the resuming run must be configured identically, which
  /// the checkpoint's config fingerprint enforces upstream).
  struct State {
    std::size_t stride = 1;
    std::size_t pending = 0;
    std::vector<Point> points;
  };
  State state() const { return {stride_, pending_, points_}; }
  void restore(State s);

 private:
  void maybe_compact();

  std::size_t max_points_;
  std::size_t stride_ = 1;   // accept every stride-th sample
  std::size_t pending_ = 0;  // samples since last accepted
  std::vector<Point> points_;
};

/// Stability verdict for a queue-length trace.
struct TrendVerdict {
  double slope = 0.0;         // value per second
  double growth_ratio = 1.0;  // tail mean / middle mean
  bool growing = false;
};

/// Classifies a trace as growing (unstable) when the tail mean
/// substantially exceeds the middle-of-trace mean AND the overall slope
/// is positive. `ratio_threshold` guards against verdicts driven by
/// noise around a stable plateau.
TrendVerdict classify_trend(const TimeSeries& series,
                            double ratio_threshold = 1.5);

}  // namespace basrpt::stats
