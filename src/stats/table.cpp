#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace basrpt::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  BASRPT_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  BASRPT_ASSERT(cells.size() == headers_.size(),
                "row width does not match header count");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c]
          << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    out << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 2;
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

std::string Table::render_csv() const {
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      BASRPT_ASSERT(cells[c].find(',') == std::string::npos,
                    "CSV cell contains a comma");
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << ",";
      }
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

std::string cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string cell(std::int64_t value) { return std::to_string(value); }

}  // namespace basrpt::stats
