// Streaming first/second-moment accumulator (Welford's algorithm).
#pragma once

#include <cstdint>

namespace basrpt::stats {

/// Numerically stable running count/mean/variance/min/max.
class StreamingMoments {
 public:
  void add(double value);

  std::int64_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Merges another accumulator (parallel Welford).
  void merge(const StreamingMoments& other);

  /// Checkpointable image of the accumulator. Restoring it continues the
  /// Welford recurrence bit-identically.
  struct State {
    std::int64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  State state() const { return {count_, mean_, m2_, sum_, min_, max_}; }
  void restore(const State& s) {
    count_ = s.count;
    mean_ = s.mean;
    m2_ = s.m2;
    sum_ = s.sum;
    min_ = s.min;
    max_ = s.max;
  }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace basrpt::stats
