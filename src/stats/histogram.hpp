// Logarithmically-bucketed histogram for FCTs and queue lengths, whose
// natural dynamic ranges span 4-6 decades.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace basrpt::stats {

/// Histogram with geometric bucket boundaries lo * ratio^k over [lo, hi].
/// Values below lo land in an underflow bucket, above hi in overflow.
class LogHistogram {
 public:
  /// `buckets_per_decade` controls resolution (e.g. 10 → ratio 10^0.1).
  LogHistogram(double lo, double hi, int buckets_per_decade = 10);

  void add(double value);

  std::int64_t total() const { return total_; }
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::int64_t bucket_value(std::size_t idx) const { return counts_[idx]; }
  /// Lower edge of bucket idx.
  double bucket_lower(std::size_t idx) const;

  /// Approximate quantile from bucket midpoints.
  double quantile(double q) const;

  /// ASCII rendering used by examples ("*" bars, one line per non-empty
  /// bucket).
  std::string render(int max_width = 60) const;

 private:
  double lo_;
  double log_lo_;
  double log_ratio_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace basrpt::stats
