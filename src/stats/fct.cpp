#include "stats/fct.hpp"

#include "common/assert.hpp"

namespace basrpt::stats {

std::string to_string(FlowClass c) {
  switch (c) {
    case FlowClass::kQuery:
      return "query";
    case FlowClass::kBackground:
      return "background";
  }
  return "?";
}

void FctAggregator::record(FlowClass cls, SimTime fct, Bytes size) {
  BASRPT_ASSERT(fct.seconds >= 0.0, "negative FCT");
  BASRPT_ASSERT(size.count > 0, "completed flow must have positive size");
  PerClass& entry = per_class_[cls];
  entry.moments.add(fct.seconds);
  entry.percentiles.add(fct.seconds);
  bytes_completed_ += size;
}

void FctAggregator::record_with_ideal(FlowClass cls, SimTime fct,
                                      Bytes size, SimTime ideal) {
  BASRPT_ASSERT(ideal.seconds > 0.0, "ideal FCT must be positive");
  record(cls, fct, size);
  PerClass& entry = per_class_[cls];
  const double slowdown = fct.seconds / ideal.seconds;
  entry.slowdown_moments.add(slowdown);
  entry.slowdown_percentiles.add(slowdown);
}

FctSummary FctAggregator::summary(FlowClass cls) const {
  FctSummary out;
  const auto it = per_class_.find(cls);
  if (it == per_class_.end() || it->second.moments.count() == 0) {
    return out;
  }
  out.completed = it->second.moments.count();
  out.mean_seconds = it->second.moments.mean();
  out.p99_seconds = it->second.percentiles.p99();
  out.max_seconds = it->second.moments.max();
  if (it->second.slowdown_moments.count() > 0) {
    out.mean_slowdown = it->second.slowdown_moments.mean();
    out.p99_slowdown = it->second.slowdown_percentiles.p99();
  }
  return out;
}

std::int64_t FctAggregator::completed(FlowClass cls) const {
  const auto it = per_class_.find(cls);
  return it == per_class_.end() ? 0 : it->second.moments.count();
}

std::int64_t FctAggregator::completed_total() const {
  std::int64_t total = 0;
  for (const auto& [cls, entry] : per_class_) {
    total += entry.moments.count();
  }
  return total;
}

FctAggregator::State FctAggregator::state() const {
  State out;
  out.bytes_completed = bytes_completed_;
  for (const auto& [cls, entry] : per_class_) {  // std::map → FlowClass order
    ClassState c;
    c.cls = cls;
    c.moments = entry.moments.state();
    c.fct_samples = entry.percentiles.samples();
    c.slowdown_moments = entry.slowdown_moments.state();
    c.slowdown_samples = entry.slowdown_percentiles.samples();
    out.classes.push_back(std::move(c));
  }
  return out;
}

void FctAggregator::restore(const State& s) {
  per_class_.clear();
  bytes_completed_ = s.bytes_completed;
  for (const ClassState& c : s.classes) {
    PerClass& entry = per_class_[c.cls];
    entry.moments.restore(c.moments);
    entry.percentiles.restore(c.fct_samples);
    entry.slowdown_moments.restore(c.slowdown_moments);
    entry.slowdown_percentiles.restore(c.slowdown_samples);
  }
}

void ThroughputMeter::deliver(Bytes amount) {
  BASRPT_ASSERT(amount.count >= 0, "cannot deliver negative bytes");
  delivered_ += amount;
}

Rate ThroughputMeter::average_rate(SimTime horizon) const {
  BASRPT_ASSERT(horizon.seconds > 0.0, "horizon must be positive");
  return Rate{static_cast<double>(delivered_.count) * 8.0 / horizon.seconds};
}

}  // namespace basrpt::stats
