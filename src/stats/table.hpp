// Fixed-width table rendering for bench output.
//
// Every bench binary reproduces one table or figure of the paper; this
// renderer keeps their output uniform and machine-greppable (also emits
// CSV for plotting).
#pragma once

#include <string>
#include <vector>

namespace basrpt::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Pretty fixed-width rendering with a header underline.
  std::string render() const;

  /// Comma-separated rendering (no quoting; cells must not contain ',').
  std::string render_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helper for table cells.
std::string cell(double value, int precision = 3);
std::string cell(std::int64_t value);

}  // namespace basrpt::stats
