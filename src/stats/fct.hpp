// Flow-completion-time aggregation and throughput accounting.
//
// Mirrors the paper's metrics (Sec. V-A): mean and 99th-percentile FCT
// separately for queries and background flows, plus global throughput
// "calculated globally in bytes, counting the total data volume leaving
// the fabric during the whole simulation period".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

namespace basrpt::stats {

/// Traffic class of a flow, following the paper's taxonomy.
enum class FlowClass : std::uint8_t {
  kQuery = 0,       // fixed-size query/response traffic, fabric-wide
  kBackground = 1,  // heavy-tailed large transfers, rack-local
};

std::string to_string(FlowClass c);

/// Per-class FCT summary.
struct FctSummary {
  std::int64_t completed = 0;
  double mean_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;
  // Slowdown = FCT / ideal FCT (the flow alone at line rate); 0 when the
  // recorder was not given ideals. The normalized-FCT metric of the
  // pFabric line of work.
  double mean_slowdown = 0.0;
  double p99_slowdown = 0.0;
};

/// Collects completions and renders per-class summaries.
class FctAggregator {
 public:
  void record(FlowClass cls, SimTime fct, Bytes size);

  /// Like record(), but also tracks slowdown = fct / ideal.
  void record_with_ideal(FlowClass cls, SimTime fct, Bytes size,
                         SimTime ideal);

  FctSummary summary(FlowClass cls) const;
  std::int64_t completed(FlowClass cls) const;
  std::int64_t completed_total() const;

  /// Total bytes of *completed* flows.
  Bytes bytes_completed() const { return bytes_completed_; }

  /// Checkpointable image: every per-class accumulator plus the byte
  /// counter. Restoring reproduces summary() output bit-identically.
  struct ClassState {
    FlowClass cls = FlowClass::kQuery;
    StreamingMoments::State moments;
    std::vector<double> fct_samples;
    StreamingMoments::State slowdown_moments;
    std::vector<double> slowdown_samples;
  };
  struct State {
    std::vector<ClassState> classes;  // in FlowClass order
    Bytes bytes_completed{};
  };
  State state() const;
  void restore(const State& s);

 private:
  struct PerClass {
    StreamingMoments moments;
    ExactPercentiles percentiles;
    StreamingMoments slowdown_moments;
    ExactPercentiles slowdown_percentiles;
  };
  std::map<FlowClass, PerClass> per_class_;
  Bytes bytes_completed_{};
};

/// Tracks bytes leaving the fabric; throughput = delivered / horizon.
class ThroughputMeter {
 public:
  void deliver(Bytes amount);
  Bytes delivered() const { return delivered_; }

  /// Average delivered rate over [0, horizon].
  Rate average_rate(SimTime horizon) const;

 private:
  Bytes delivered_{};
};

}  // namespace basrpt::stats
