#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace basrpt::stats {

void StreamingMoments::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double StreamingMoments::mean() const {
  return count_ == 0 ? 0.0 : mean_;
}

double StreamingMoments::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double StreamingMoments::stddev() const { return std::sqrt(variance()); }

double StreamingMoments::min() const {
  BASRPT_ASSERT(count_ > 0, "min of empty accumulator");
  return min_;
}

double StreamingMoments::max() const {
  BASRPT_ASSERT(count_ > 0, "max of empty accumulator");
  return max_;
}

void StreamingMoments::merge(const StreamingMoments& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(total);
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

}  // namespace basrpt::stats
