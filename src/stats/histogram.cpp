#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace basrpt::stats {

LogHistogram::LogHistogram(double lo, double hi, int buckets_per_decade)
    : lo_(lo) {
  BASRPT_REQUIRE(lo > 0.0 && hi > lo, "log histogram needs 0 < lo < hi");
  BASRPT_REQUIRE(buckets_per_decade >= 1, "need at least 1 bucket per decade");
  log_lo_ = std::log10(lo);
  log_ratio_ = 1.0 / buckets_per_decade;
  const double decades = std::log10(hi) - log_lo_;
  const auto n = static_cast<std::size_t>(
      std::ceil(decades * buckets_per_decade));
  counts_.assign(std::max<std::size_t>(n, 1), 0);
}

void LogHistogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>(
      (std::log10(value) - log_lo_) / log_ratio_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

double LogHistogram::bucket_lower(std::size_t idx) const {
  return std::pow(10.0, log_lo_ + static_cast<double>(idx) * log_ratio_);
}

double LogHistogram::quantile(double q) const {
  BASRPT_ASSERT(total_ > 0, "quantile of empty histogram");
  const auto target = static_cast<std::int64_t>(
      q * static_cast<double>(total_));
  std::int64_t seen = underflow_;
  if (seen > target) {
    return lo_;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) {
      // Midpoint of bucket i (geometric).
      return std::pow(10.0, log_lo_ +
                                (static_cast<double>(i) + 0.5) * log_ratio_);
    }
  }
  return bucket_lower(counts_.size() - 1);
}

std::string LogHistogram::render(int max_width) const {
  std::ostringstream out;
  std::int64_t peak = std::max<std::int64_t>(
      1, *std::max_element(counts_.begin(), counts_.end()));
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const int width = static_cast<int>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        max_width);
    out << bucket_lower(i) << "\t" << counts_[i] << "\t"
        << std::string(static_cast<std::size_t>(std::max(width, 1)), '*')
        << "\n";
  }
  if (underflow_ > 0) {
    out << "(underflow: " << underflow_ << ")\n";
  }
  if (overflow_ > 0) {
    out << "(overflow: " << overflow_ << ")\n";
  }
  return out.str();
}

}  // namespace basrpt::stats
