#include "stats/timeseries.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace basrpt::stats {

TimeSeries::TimeSeries(std::size_t max_points) : max_points_(max_points) {
  BASRPT_REQUIRE(max_points >= 8, "time series needs at least 8 points");
  points_.reserve(std::min<std::size_t>(max_points, 4096));
}

void TimeSeries::add(SimTime t, double value) {
  if (!points_.empty()) {
    BASRPT_ASSERT(t.seconds >= points_.back().t,
                  "time series samples must be non-decreasing in time");
  }
  if (++pending_ < stride_) {
    return;
  }
  pending_ = 0;
  points_.push_back({t.seconds, value});
  maybe_compact();
}

void TimeSeries::maybe_compact() {
  if (points_.size() < max_points_) {
    return;
  }
  std::vector<Point> kept;
  kept.reserve(points_.size() / 2 + 1);
  for (std::size_t i = 0; i < points_.size(); i += 2) {
    kept.push_back(points_[i]);
  }
  points_ = std::move(kept);
  stride_ *= 2;
}

void TimeSeries::restore(State s) {
  BASRPT_ASSERT(s.stride >= 1, "time series stride must be >= 1");
  BASRPT_ASSERT(s.points.size() <= max_points_,
                "restored time series exceeds max_points");
  stride_ = s.stride;
  pending_ = s.pending;
  points_ = std::move(s.points);
}

double TimeSeries::slope() const {
  if (points_.size() < 2) {
    return 0.0;
  }
  // Ordinary least squares on (t, value).
  double mean_t = 0.0;
  double mean_v = 0.0;
  for (const Point& p : points_) {
    mean_t += p.t;
    mean_v += p.value;
  }
  mean_t /= static_cast<double>(points_.size());
  mean_v /= static_cast<double>(points_.size());
  double cov = 0.0;
  double var = 0.0;
  for (const Point& p : points_) {
    cov += (p.t - mean_t) * (p.value - mean_v);
    var += (p.t - mean_t) * (p.t - mean_t);
  }
  return var == 0.0 ? 0.0 : cov / var;
}

double TimeSeries::window_mean(SimTime t_lo, SimTime t_hi) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const Point& p : points_) {
    if (p.t >= t_lo.seconds && p.t <= t_hi.seconds) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double TimeSeries::tail_mean(double fraction) const {
  BASRPT_ASSERT(!points_.empty(), "tail_mean of empty series");
  const double t0 = points_.front().t;
  const double t1 = points_.back().t;
  return window_mean(SimTime{t1 - (t1 - t0) * fraction}, SimTime{t1});
}

double TimeSeries::max_value() const {
  BASRPT_ASSERT(!points_.empty(), "max_value of empty series");
  double best = points_.front().value;
  for (const Point& p : points_) {
    best = std::max(best, p.value);
  }
  return best;
}

double TimeSeries::last_value() const {
  BASRPT_ASSERT(!points_.empty(), "last_value of empty series");
  return points_.back().value;
}

TrendVerdict classify_trend(const TimeSeries& series, double ratio_threshold) {
  TrendVerdict verdict;
  if (series.size() < 8) {
    return verdict;
  }
  verdict.slope = series.slope();
  const double t0 = series.points().front().t;
  const double t1 = series.points().back().t;
  const double span = t1 - t0;
  // Middle window: [0.25, 0.5] of the span; tail window: last quarter.
  const double mid = series.window_mean(SimTime{t0 + 0.25 * span},
                                        SimTime{t0 + 0.50 * span});
  const double tail = series.tail_mean(0.25);
  verdict.growth_ratio = mid > 0.0 ? tail / mid
                         : (tail > 0.0 ? ratio_threshold * 2.0 : 1.0);
  verdict.growing = verdict.slope > 0.0 &&
                    verdict.growth_ratio >= ratio_threshold;
  return verdict;
}

}  // namespace basrpt::stats
