// Percentile estimation.
//
// ExactPercentiles stores every sample (the paper's FCT tables use p99 on
// full runs, which our run sizes afford). P2Quantile is the Jain/Chlamtac
// streaming estimator for long-horizon traces where storing every queue
// sample would dominate memory.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace basrpt::stats {

/// Exact quantiles over stored samples.
class ExactPercentiles {
 public:
  void add(double value);
  std::size_t count() const { return values_.size(); }

  /// Quantile in [0, 1] using linear interpolation between closest ranks.
  /// Requires at least one sample.
  double quantile(double q) const;

  double p50() const { return quantile(0.50); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }
  double p9999() const { return quantile(0.9999); }

  /// Stored samples in their current order (checkpointing). Quantiles do
  /// not depend on sample order, so the order a checkpoint happens to
  /// capture is irrelevant to results.
  const std::vector<double>& samples() const { return values_; }
  void restore(std::vector<double> samples) {
    values_ = std::move(samples);
    sorted_ = false;
  }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// P² streaming quantile estimator (Jain & Chlamtac 1985): five markers,
/// O(1) memory, no storage of samples.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double value);
  std::size_t count() const { return count_; }

  /// Current estimate; exact while fewer than 5 samples seen.
  double value() const;

 private:
  double q_;
  std::size_t count_ = 0;
  double heights_[5] = {};
  double positions_[5] = {};
  double desired_[5] = {};
  double increments_[5] = {};
  std::vector<double> warmup_;
};

}  // namespace basrpt::stats
