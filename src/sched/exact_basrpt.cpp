#include "sched/exact_basrpt.hpp"

#include <cstdio>
#include <limits>

#include "common/assert.hpp"

namespace basrpt::sched {

ExactBasrptScheduler::ExactBasrptScheduler(double v, PortId max_ports)
    : v_(v), max_ports_(max_ports) {
  BASRPT_REQUIRE(v >= 0.0, "BASRPT weight V must be non-negative");
  BASRPT_REQUIRE(max_ports >= 1, "max_ports must be positive");
}

std::string ExactBasrptScheduler::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "exact-basrpt(V=%g)", v_);
  return buf;
}

double ExactBasrptScheduler::objective(
    double v, const std::vector<VoqCandidate>& selected) {
  if (selected.empty()) {
    return 0.0;
  }
  double size_sum = 0.0;
  double backlog_sum = 0.0;
  for (const VoqCandidate& c : selected) {
    size_sum += c.shortest_remaining;
    backlog_sum += c.backlog;
  }
  return v * size_sum / static_cast<double>(selected.size()) - backlog_sum;
}

void ExactBasrptScheduler::decide_into(PortId n_ports,
                                       const CandidateView& candidates,
                                       Decision& out) {
  BASRPT_REQUIRE(n_ports <= max_ports_,
                 "exact BASRPT refuses fabrics larger than max_ports; "
                 "use FastBasrptScheduler");
  out.selected.clear();
  if (candidates.empty()) {
    return;
  }
  const std::size_t n = candidates.size();
  const PortId* ingress = candidates.ingress();
  const PortId* egress = candidates.egress();
  const double* backlog = candidates.backlog();
  const double* remaining = candidates.shortest_remaining();
  const FlowId* shortest = candidates.shortest_flow();

  // Within a matched VOQ the objective is minimized by its shortest flow
  // (the backlog term is fixed by the VOQ choice), so candidates carry
  // everything needed: enumerate maximal matchings over the VOQ support.
  // Candidates arrive in the caller's deterministic VOQ order, and the
  // enumeration ties break by edge order, so the caller's order is part
  // of this scheduler's observable behavior.
  edges_.clear();
  edges_.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    edges_.push_back({ingress[k], egress[k]});
  }

  // Candidate lookup by (ingress, egress).
  constexpr std::uint32_t kNoCandidate = 0xffffffffu;
  by_pair_.assign(
      static_cast<std::size_t>(n_ports) * static_cast<std::size_t>(n_ports),
      kNoCandidate);
  for (std::size_t k = 0; k < n; ++k) {
    by_pair_[static_cast<std::size_t>(ingress[k]) *
                 static_cast<std::size_t>(n_ports) +
             static_cast<std::size_t>(egress[k])] =
        static_cast<std::uint32_t>(k);
  }

  double best_objective = std::numeric_limits<double>::infinity();
  best_selection_.clear();

  matching::for_each_maximal_matching(
      edges_, n_ports, n_ports,
      [&](const matching::Matching& m) {
        double size_sum = 0.0;
        double backlog_sum = 0.0;
        std::size_t count = 0;
        selection_.clear();
        for (PortId i = 0; i < n_ports; ++i) {
          const matching::PortId j =
              m.match_of_left[static_cast<std::size_t>(i)];
          if (j == matching::kUnmatched) {
            continue;
          }
          const std::uint32_t k =
              by_pair_[static_cast<std::size_t>(i) *
                           static_cast<std::size_t>(n_ports) +
                       static_cast<std::size_t>(j)];
          BASRPT_ASSERT(k != kNoCandidate,
                        "matching used a non-candidate edge");
          size_sum += remaining[k];
          backlog_sum += backlog[k];
          selection_.push_back(shortest[k]);
          ++count;
        }
        if (count == 0) {
          return;
        }
        const double objective =
            v_ * size_sum / static_cast<double>(count) - backlog_sum;
        if (objective < best_objective) {
          best_objective = objective;
          best_selection_ = selection_;
        }
      },
      max_ports_);

  out.selected = best_selection_;
}

}  // namespace basrpt::sched
