#include "sched/factory.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/assert.hpp"
#include "sched/exact_basrpt.hpp"
#include "sched/fast_basrpt.hpp"
#include "sched/distributed_basrpt.hpp"
#include "sched/fifo.hpp"
#include "sched/maxweight.hpp"
#include "sched/noisy.hpp"
#include "sched/srpt.hpp"
#include "sched/threshold.hpp"

namespace basrpt::sched {

SchedulerSpec SchedulerSpec::srpt() {
  SchedulerSpec spec;
  spec.policy = Policy::kSrpt;
  return spec;
}

SchedulerSpec SchedulerSpec::fast_basrpt(double v) {
  SchedulerSpec spec;
  spec.policy = Policy::kFastBasrpt;
  spec.v = v;
  return spec;
}

SchedulerSpec SchedulerSpec::threshold_srpt(double threshold_packets) {
  SchedulerSpec spec;
  spec.policy = Policy::kThresholdSrpt;
  spec.threshold_packets = threshold_packets;
  return spec;
}

SchedulerSpec SchedulerSpec::exact_basrpt(double v) {
  SchedulerSpec spec;
  spec.policy = Policy::kExactBasrpt;
  spec.v = v;
  return spec;
}

SchedulerSpec SchedulerSpec::maxweight() {
  SchedulerSpec spec;
  spec.policy = Policy::kMaxWeight;
  return spec;
}

SchedulerSpec SchedulerSpec::fifo() {
  SchedulerSpec spec;
  spec.policy = Policy::kFifo;
  return spec;
}

SchedulerSpec SchedulerSpec::dist_basrpt(double v, int rounds) {
  SchedulerSpec spec;
  spec.policy = Policy::kDistBasrpt;
  spec.v = v;
  spec.rounds = rounds;
  return spec;
}

SchedulerSpec SchedulerSpec::with_size_error(double error) const {
  SchedulerSpec spec = *this;
  spec.size_error = error;
  return spec;
}

namespace {

/// Shortest %g rendering that parses back to exactly `value` (falls
/// through to 17 significant digits, which always round-trips).
std::string format_real(double value) {
  char buf[64];
  for (const int precision : {6, 9, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) {
      break;
    }
  }
  return buf;
}

double parse_real(const std::string& key, const std::string& value) {
  const char* begin = value.c_str();
  char* end = nullptr;
  const double parsed = std::strtod(begin, &end);
  if (value.empty() || end != begin + value.size()) {
    throw ConfigError("scheduler spec: '" + key + "' needs a number, got '" +
                      value + "'");
  }
  return parsed;
}

std::int64_t parse_int(const std::string& key, const std::string& value) {
  const char* begin = value.c_str();
  char* end = nullptr;
  const long long parsed = std::strtoll(begin, &end, 10);
  if (value.empty() || end != begin + value.size()) {
    throw ConfigError("scheduler spec: '" + key + "' needs an integer, got '" +
                      value + "'");
  }
  return parsed;
}

bool policy_has_v(Policy policy) {
  return policy == Policy::kFastBasrpt || policy == Policy::kExactBasrpt ||
         policy == Policy::kDistBasrpt;
}

}  // namespace

SchedulerSpec SchedulerSpec::parse(const std::string& text) {
  std::vector<std::string> segments;
  std::size_t start = 0;
  for (;;) {
    const std::size_t colon = text.find(':', start);
    segments.push_back(text.substr(
        start, colon == std::string::npos ? std::string::npos : colon - start));
    if (colon == std::string::npos) {
      break;
    }
    start = colon + 1;
  }

  // Policy names accept '_' as '-' so shell-friendly spellings like
  // fast_basrpt work unquoted everywhere.
  std::string name = segments.front();
  for (char& c : name) {
    if (c == '_') {
      c = '-';
    }
  }
  if (name.empty()) {
    throw ConfigError("scheduler spec: empty policy name in '" + text + "'");
  }

  SchedulerSpec spec;
  spec.policy = parse_policy(name);

  bool saw_v = false;
  bool saw_threshold = false;
  bool saw_rounds = false;
  bool saw_err = false;
  bool saw_seed = false;
  for (std::size_t i = 1; i < segments.size(); ++i) {
    const std::string& segment = segments[i];
    const std::size_t eq = segment.find('=');
    if (segment.empty() || eq == std::string::npos || eq == 0) {
      throw ConfigError("scheduler spec: expected key=value, got '" + segment +
                        "' in '" + text + "'");
    }
    std::string key = segment.substr(0, eq);
    for (char& c : key) {
      if (c == '_') {
        c = '-';
      }
    }
    const std::string value = segment.substr(eq + 1);
    const auto require_once = [&](bool& seen) {
      if (seen) {
        throw ConfigError("scheduler spec: repeated '" + key + "' in '" +
                          text + "'");
      }
      seen = true;
    };
    const auto require_applies = [&](bool applies) {
      if (!applies) {
        throw ConfigError("scheduler spec: '" + key +
                          "' does not apply to policy '" + name + "'");
      }
    };
    if (key == "v") {
      require_applies(policy_has_v(spec.policy));
      require_once(saw_v);
      spec.v = parse_real(key, value);
      if (spec.v < 0.0) {
        throw ConfigError("scheduler spec: v must be >= 0");
      }
    } else if (key == "threshold") {
      require_applies(spec.policy == Policy::kThresholdSrpt);
      require_once(saw_threshold);
      spec.threshold_packets = parse_real(key, value);
      if (spec.threshold_packets <= 0.0) {
        throw ConfigError("scheduler spec: threshold must be > 0");
      }
    } else if (key == "rounds") {
      require_applies(spec.policy == Policy::kDistBasrpt);
      require_once(saw_rounds);
      const std::int64_t rounds = parse_int(key, value);
      if (rounds < 1) {
        throw ConfigError("scheduler spec: rounds must be >= 1");
      }
      spec.rounds = static_cast<int>(rounds);
    } else if (key == "err") {
      require_once(saw_err);
      spec.size_error = parse_real(key, value);
      if (spec.size_error < 1.0) {
        throw ConfigError(
            "scheduler spec: err must be >= 1 (1 = exact sizes)");
      }
    } else if (key == "noise-seed") {
      require_once(saw_seed);
      spec.noise_seed = static_cast<std::uint64_t>(parse_int(key, value));
    } else {
      throw ConfigError("scheduler spec: unknown option '" + key + "' in '" +
                        text + "'");
    }
  }
  return spec;
}

std::string SchedulerSpec::to_string() const {
  std::string out = sched::to_string(policy);
  if (policy_has_v(policy)) {
    out += ":v=" + format_real(v);
  }
  if (policy == Policy::kThresholdSrpt) {
    out += ":threshold=" + format_real(threshold_packets);
  }
  if (policy == Policy::kDistBasrpt) {
    out += ":rounds=" + std::to_string(rounds);
  }
  if (size_error > 1.0) {
    out += ":err=" + format_real(size_error) +
           ":noise-seed=" + std::to_string(noise_seed);
  }
  return out;
}

SchedulerPtr make_scheduler(const SchedulerSpec& spec) {
  SchedulerPtr scheduler;
  switch (spec.policy) {
    case Policy::kSrpt:
      scheduler = std::make_unique<SrptScheduler>();
      break;
    case Policy::kFastBasrpt:
      scheduler = std::make_unique<FastBasrptScheduler>(spec.v);
      break;
    case Policy::kThresholdSrpt:
      scheduler =
          std::make_unique<ThresholdSrptScheduler>(spec.threshold_packets);
      break;
    case Policy::kExactBasrpt:
      scheduler = std::make_unique<ExactBasrptScheduler>(spec.v);
      break;
    case Policy::kMaxWeight:
      scheduler = std::make_unique<MaxWeightScheduler>();
      break;
    case Policy::kFifo:
      scheduler = std::make_unique<FifoScheduler>();
      break;
    case Policy::kDistBasrpt:
      scheduler =
          std::make_unique<DistributedBasrptScheduler>(spec.v, spec.rounds);
      break;
  }
  BASRPT_REQUIRE(scheduler != nullptr, "unknown scheduler policy");
  if (spec.size_error > 1.0) {
    scheduler = std::make_unique<NoisySizeScheduler>(
        std::move(scheduler), spec.size_error, spec.noise_seed);
  }
  return scheduler;
}

Policy parse_policy(const std::string& name) {
  if (name == "srpt") {
    return Policy::kSrpt;
  }
  if (name == "fast-basrpt") {
    return Policy::kFastBasrpt;
  }
  if (name == "threshold-srpt") {
    return Policy::kThresholdSrpt;
  }
  if (name == "exact-basrpt") {
    return Policy::kExactBasrpt;
  }
  if (name == "maxweight") {
    return Policy::kMaxWeight;
  }
  if (name == "fifo") {
    return Policy::kFifo;
  }
  if (name == "dist-basrpt") {
    return Policy::kDistBasrpt;
  }
  throw ConfigError("unknown scheduler policy: " + name);
}

std::string to_string(Policy policy) {
  switch (policy) {
    case Policy::kSrpt:
      return "srpt";
    case Policy::kFastBasrpt:
      return "fast-basrpt";
    case Policy::kThresholdSrpt:
      return "threshold-srpt";
    case Policy::kExactBasrpt:
      return "exact-basrpt";
    case Policy::kMaxWeight:
      return "maxweight";
    case Policy::kFifo:
      return "fifo";
    case Policy::kDistBasrpt:
      return "dist-basrpt";
  }
  return "?";
}

}  // namespace basrpt::sched
