#include "sched/factory.hpp"

#include "common/assert.hpp"
#include "sched/exact_basrpt.hpp"
#include "sched/fast_basrpt.hpp"
#include "sched/distributed_basrpt.hpp"
#include "sched/fifo.hpp"
#include "sched/maxweight.hpp"
#include "sched/noisy.hpp"
#include "sched/srpt.hpp"
#include "sched/threshold.hpp"

namespace basrpt::sched {

SchedulerSpec SchedulerSpec::srpt() {
  SchedulerSpec spec;
  spec.policy = Policy::kSrpt;
  return spec;
}

SchedulerSpec SchedulerSpec::fast_basrpt(double v) {
  SchedulerSpec spec;
  spec.policy = Policy::kFastBasrpt;
  spec.v = v;
  return spec;
}

SchedulerSpec SchedulerSpec::threshold_srpt(double threshold_packets) {
  SchedulerSpec spec;
  spec.policy = Policy::kThresholdSrpt;
  spec.threshold_packets = threshold_packets;
  return spec;
}

SchedulerSpec SchedulerSpec::exact_basrpt(double v) {
  SchedulerSpec spec;
  spec.policy = Policy::kExactBasrpt;
  spec.v = v;
  return spec;
}

SchedulerSpec SchedulerSpec::maxweight() {
  SchedulerSpec spec;
  spec.policy = Policy::kMaxWeight;
  return spec;
}

SchedulerSpec SchedulerSpec::fifo() {
  SchedulerSpec spec;
  spec.policy = Policy::kFifo;
  return spec;
}

SchedulerSpec SchedulerSpec::dist_basrpt(double v, int rounds) {
  SchedulerSpec spec;
  spec.policy = Policy::kDistBasrpt;
  spec.v = v;
  spec.rounds = rounds;
  return spec;
}

SchedulerSpec SchedulerSpec::with_size_error(double error) const {
  SchedulerSpec spec = *this;
  spec.size_error = error;
  return spec;
}

SchedulerPtr make_scheduler(const SchedulerSpec& spec) {
  SchedulerPtr scheduler;
  switch (spec.policy) {
    case Policy::kSrpt:
      scheduler = std::make_unique<SrptScheduler>();
      break;
    case Policy::kFastBasrpt:
      scheduler = std::make_unique<FastBasrptScheduler>(spec.v);
      break;
    case Policy::kThresholdSrpt:
      scheduler =
          std::make_unique<ThresholdSrptScheduler>(spec.threshold_packets);
      break;
    case Policy::kExactBasrpt:
      scheduler = std::make_unique<ExactBasrptScheduler>(spec.v);
      break;
    case Policy::kMaxWeight:
      scheduler = std::make_unique<MaxWeightScheduler>();
      break;
    case Policy::kFifo:
      scheduler = std::make_unique<FifoScheduler>();
      break;
    case Policy::kDistBasrpt:
      scheduler =
          std::make_unique<DistributedBasrptScheduler>(spec.v, spec.rounds);
      break;
  }
  BASRPT_REQUIRE(scheduler != nullptr, "unknown scheduler policy");
  if (spec.size_error > 1.0) {
    scheduler = std::make_unique<NoisySizeScheduler>(
        std::move(scheduler), spec.size_error, spec.noise_seed);
  }
  return scheduler;
}

Policy parse_policy(const std::string& name) {
  if (name == "srpt") {
    return Policy::kSrpt;
  }
  if (name == "fast-basrpt") {
    return Policy::kFastBasrpt;
  }
  if (name == "threshold-srpt") {
    return Policy::kThresholdSrpt;
  }
  if (name == "exact-basrpt") {
    return Policy::kExactBasrpt;
  }
  if (name == "maxweight") {
    return Policy::kMaxWeight;
  }
  if (name == "fifo") {
    return Policy::kFifo;
  }
  if (name == "dist-basrpt") {
    return Policy::kDistBasrpt;
  }
  throw ConfigError("unknown scheduler policy: " + name);
}

std::string to_string(Policy policy) {
  switch (policy) {
    case Policy::kSrpt:
      return "srpt";
    case Policy::kFastBasrpt:
      return "fast-basrpt";
    case Policy::kThresholdSrpt:
      return "threshold-srpt";
    case Policy::kExactBasrpt:
      return "exact-basrpt";
    case Policy::kMaxWeight:
      return "maxweight";
    case Policy::kFifo:
      return "fifo";
    case Policy::kDistBasrpt:
      return "dist-basrpt";
  }
  return "?";
}

}  // namespace basrpt::sched
