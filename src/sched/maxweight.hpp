// MaxWeight matching scheduler (Tassiulas–Ephremides).
//
// Selects the matching maximizing Σ X_ij R_ij via the Hungarian
// algorithm — the classical throughput-optimal policy for input-queued
// switches. It is BASRPT's V = 0 extreme computed exactly instead of
// greedily, and serves as the stability gold standard in the ablation
// benches (stable, but indifferent to flow sizes, hence poor FCT).
#pragma once

#include "sched/scheduler.hpp"

namespace basrpt::sched {

class MaxWeightScheduler final : public Scheduler {
 public:
  using Scheduler::decide_into;

  std::string name() const override { return "maxweight"; }
  bool needs_arrival_lane() const override { return false; }
  void decide_into(PortId n_ports, const CandidateView& candidates,
                   Decision& out) override;

 private:
  std::vector<std::vector<double>> weights_;
  std::vector<std::vector<FlowId>> flow_at_;
};

}  // namespace basrpt::sched
