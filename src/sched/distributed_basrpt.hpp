// Distributed fast BASRPT — request/grant approximation.
//
// Sec. IV-C: "Since fast BASRPT assigns global priorities to all flows,
// it can be simply implemented using distributed paradigms [pFabric]."
// This scheduler makes that concrete without a central sort: it runs an
// iSLIP-style request/grant exchange where every port uses only local
// information.
//
//   round r:  each unmatched ingress requests the egress of its best
//             (minimum-key) VOQ among egresses still unmatched;
//             each unmatched egress grants the lowest-key request.
//
// With enough rounds this converges to a maximal matching; with few
// rounds it is what a line-rate hardware implementation would compute.
// The gap to centralized fast BASRPT is measured in
// bench_ablation_distributed.
#pragma once

#include "sched/scheduler.hpp"

namespace basrpt::sched {

class DistributedBasrptScheduler final : public Scheduler {
 public:
  using Scheduler::decide_into;

  /// `rounds` request/grant iterations per decision (hardware budget).
  DistributedBasrptScheduler(double v, int rounds);

  std::string name() const override;
  bool needs_arrival_lane() const override { return false; }
  void decide_into(PortId n_ports, const CandidateView& candidates,
                   Decision& out) override;

  double v() const { return v_; }
  int rounds() const { return rounds_; }

 private:
  double v_;
  int rounds_;
  std::vector<std::vector<std::size_t>> per_ingress_;
  std::vector<double> key_;
  std::vector<char> ingress_matched_;
  std::vector<char> egress_matched_;
  std::vector<std::size_t> request_of_;
};

}  // namespace basrpt::sched
