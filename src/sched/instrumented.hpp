// Passive observability decorator for any Scheduler.
//
// Wraps a scheduler and records, per decision: wall-clock decision
// latency (the Sec. IV-C cost the paper worries about), candidate count,
// matching size, and preemption count — the number of flows selected by
// the previous decision but absent from this one (a flow that completed
// between decisions also counts; the decorator sees only decisions, and
// for churn accounting a completion-triggered reshuffle is churn too).
//
// The decorator never alters the wrapped decision, candidate order, or
// any RNG, so instrumented runs are bit-identical to bare ones. name()
// and needs_arrival_lane() forward to the wrapped scheduler so result
// tables and candidate building are unchanged.
// Wrapping is itself the opt-in: metrics are recorded on every call,
// independent of obs::enabled().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sched/scheduler.hpp"

namespace basrpt::sched {

class InstrumentedScheduler : public Scheduler {
 public:
  /// Records into `registry` (default: the thread's active one — the
  /// bound shard under the parallel sweep runner, else global) under
  /// "<prefix>.decisions", "<prefix>.decision_ns", "<prefix>.candidates",
  /// "<prefix>.matching_size", and "<prefix>.preemptions".
  explicit InstrumentedScheduler(SchedulerPtr inner,
                                 obs::Registry* registry = nullptr,
                                 const std::string& prefix = "sched");

  using Scheduler::decide_into;

  std::string name() const override { return inner_->name(); }
  bool needs_arrival_lane() const override {
    return inner_->needs_arrival_lane();
  }

  void decide_into(PortId n_ports, const CandidateView& candidates,
                   Decision& out) override;

  // The decorator's own tallies are observability, not simulation state;
  // only the wrapped scheduler's state travels through checkpoints.
  std::vector<std::uint64_t> checkpoint_state() const override {
    return inner_->checkpoint_state();
  }
  void restore_checkpoint_state(
      const std::vector<std::uint64_t>& state) override {
    inner_->restore_checkpoint_state(state);
  }

  // Local tallies mirroring the registry, for tests and direct queries.
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t preemptions() const { return preemptions_; }
  std::uint64_t last_candidates() const { return last_candidates_; }
  std::uint64_t last_matching_size() const { return last_matching_size_; }
  std::uint64_t last_preemptions() const { return last_preemptions_; }

  const Scheduler& inner() const { return *inner_; }

 private:
  SchedulerPtr inner_;
  obs::Counter* decisions_counter_;
  obs::Counter* preemptions_counter_;
  obs::LatencyHistogram* decision_ns_;
  obs::LatencyHistogram* candidates_hist_;
  obs::LatencyHistogram* matching_hist_;

  std::vector<FlowId> prev_selected_;  // sorted
  std::vector<FlowId> sorted_scratch_;
  std::uint64_t decisions_ = 0;
  std::uint64_t preemptions_ = 0;
  std::uint64_t last_candidates_ = 0;
  std::uint64_t last_matching_size_ = 0;
  std::uint64_t last_preemptions_ = 0;
};

}  // namespace basrpt::sched
