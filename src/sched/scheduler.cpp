#include "sched/scheduler.hpp"

#include <unordered_set>

#include "common/assert.hpp"

namespace basrpt::sched {

void Scheduler::restore_checkpoint_state(
    const std::vector<std::uint64_t>& state) {
  BASRPT_REQUIRE(state.empty(),
                 "checkpoint carries scheduler state but scheduler '" +
                     name() + "' is stateless — scheduler mismatch on "
                     "resume");
}

void fill_candidate(const queueing::VoqMatrix& voqs, PortId i, PortId j,
                    double unit_bytes, CandidateNeeds needs,
                    VoqCandidate& out) {
  out.ingress = i;
  out.egress = j;
  out.backlog = static_cast<double>(voqs.backlog(i, j).count) / unit_bytes;
  out.flow_count = voqs.flow_count(i, j);

  const FlowId shortest = voqs.shortest_in_voq(i, j);
  BASRPT_ASSERT(shortest != queueing::kInvalidFlow,
                "non-empty VOQ without flows");
  const queueing::Flow& sf = voqs.flow(shortest);
  out.shortest_flow = shortest;
  out.shortest_remaining =
      static_cast<double>(sf.remaining.count) / unit_bytes;
  out.shortest_arrival = sf.arrival.seconds;

  if (needs.arrival_index) {
    const FlowId oldest = voqs.oldest_in_voq(i, j);
    const queueing::Flow& of = voqs.flow(oldest);
    out.oldest_flow = oldest;
    out.oldest_arrival = of.arrival.seconds;
  } else {
    out.oldest_flow = queueing::kInvalidFlow;
    out.oldest_arrival = 0.0;
  }
}

std::vector<VoqCandidate> build_candidates(const queueing::VoqMatrix& voqs,
                                           double unit_bytes,
                                           CandidateNeeds needs) {
  BASRPT_ASSERT(unit_bytes > 0.0, "unit must be positive");
  std::vector<VoqCandidate> candidates;
  candidates.reserve(voqs.non_empty_voqs());
  voqs.for_each_non_empty_voq([&](PortId i, PortId j) {
    VoqCandidate c;
    fill_candidate(voqs, i, j, unit_bytes, needs, c);
    candidates.push_back(c);
  });
  return candidates;
}

bool decision_is_matching(const Decision& decision,
                          const queueing::VoqMatrix& voqs) {
  std::unordered_set<PortId> ingress_used;
  std::unordered_set<PortId> egress_used;
  std::unordered_set<FlowId> seen;
  for (const FlowId id : decision.selected) {
    if (!voqs.contains(id) || !seen.insert(id).second) {
      return false;
    }
    const queueing::Flow& f = voqs.flow(id);
    if (!ingress_used.insert(f.src).second) {
      return false;
    }
    if (!egress_used.insert(f.dst).second) {
      return false;
    }
  }
  return true;
}

}  // namespace basrpt::sched
