#include "sched/scheduler.hpp"

#include <unordered_set>

#include "common/assert.hpp"

namespace basrpt::sched {

void Scheduler::restore_checkpoint_state(
    const std::vector<std::uint64_t>& state) {
  BASRPT_REQUIRE(state.empty(),
                 "checkpoint carries scheduler state but scheduler '" +
                     name() + "' is stateless — scheduler mismatch on "
                     "resume");
}

void Scheduler::decide_batch(PortId n_ports, const CandidateView* views,
                             std::size_t count, Decision* out) {
  for (std::size_t k = 0; k < count; ++k) {
    decide_into(n_ports, views[k], out[k]);
  }
}

void fill_candidate(const queueing::VoqMatrix& voqs, PortId i, PortId j,
                    double unit_bytes, bool with_arrival,
                    VoqCandidate& out) {
  out.ingress = i;
  out.egress = j;
  out.backlog = static_cast<double>(voqs.backlog(i, j).count) / unit_bytes;
  out.flow_count = voqs.flow_count(i, j);

  // The ordered-index head entries carry (key, id, slot) directly: the
  // SRPT key IS the remaining size and the arrival key IS the oldest
  // arrival, so neither candidate field needs a FlowId hash lookup. Only
  // the shortest flow's arrival time requires touching the Flow record,
  // and that is a direct slot deref into the slab.
  const auto& se = voqs.shortest_entry(i, j);
  BASRPT_ASSERT(se.id != queueing::kInvalidFlow,
                "non-empty VOQ without flows");
  out.shortest_flow = se.id;
  out.shortest_remaining = static_cast<double>(se.key) / unit_bytes;
  out.shortest_arrival = voqs.flow_at(se.slot).arrival.seconds;

  if (with_arrival) {
    const auto& oe = voqs.oldest_entry(i, j);
    out.oldest_flow = oe.id;
    out.oldest_arrival = oe.key;
  } else {
    out.oldest_flow = queueing::kInvalidFlow;
    out.oldest_arrival = 0.0;
  }
}

std::vector<VoqCandidate> build_candidates(const queueing::VoqMatrix& voqs,
                                           double unit_bytes,
                                           bool with_arrival) {
  BASRPT_ASSERT(unit_bytes > 0.0, "unit must be positive");
  std::vector<VoqCandidate> candidates;
  candidates.reserve(voqs.non_empty_voqs());
  voqs.for_each_non_empty_voq([&](PortId i, PortId j) {
    VoqCandidate c;
    fill_candidate(voqs, i, j, unit_bytes, with_arrival, c);
    candidates.push_back(c);
  });
  return candidates;
}

bool decision_is_matching(const Decision& decision,
                          const queueing::VoqMatrix& voqs) {
  std::unordered_set<PortId> ingress_used;
  std::unordered_set<PortId> egress_used;
  std::unordered_set<FlowId> seen;
  for (const FlowId id : decision.selected) {
    if (!voqs.contains(id) || !seen.insert(id).second) {
      return false;
    }
    const queueing::Flow& f = voqs.flow(id);
    if (!ingress_used.insert(f.src).second) {
      return false;
    }
    if (!egress_used.insert(f.dst).second) {
      return false;
    }
  }
  return true;
}

}  // namespace basrpt::sched
