// Scheduler construction from declarative specs — the switch point used
// by the experiment harness, benches, and examples.
#pragma once

#include <cstdint>
#include <string>

#include "sched/scheduler.hpp"

namespace basrpt::sched {

/// Which policy to run; parameters live beside it in SchedulerSpec.
enum class Policy {
  kSrpt,
  kFastBasrpt,
  kThresholdSrpt,
  kExactBasrpt,
  kMaxWeight,
  kFifo,
  kDistBasrpt,  // request/grant distributed approximation
};

struct SchedulerSpec {
  Policy policy = Policy::kSrpt;
  double v = 2500.0;                  // fast/exact/distributed BASRPT weight
  double threshold_packets = 1000.0;  // threshold-SRPT promotion level
  int rounds = 3;                     // distributed request/grant rounds
  /// Size-estimation error factor (see sched/noisy.hpp); 1 = exact
  /// knowledge. > 1 wraps the scheduler in NoisySizeScheduler.
  double size_error = 1.0;
  std::uint64_t noise_seed = 0x5eed;

  static SchedulerSpec srpt();
  static SchedulerSpec fast_basrpt(double v);
  static SchedulerSpec threshold_srpt(double threshold_packets);
  static SchedulerSpec exact_basrpt(double v);
  static SchedulerSpec maxweight();
  static SchedulerSpec fifo();
  static SchedulerSpec dist_basrpt(double v, int rounds);

  /// Returns a copy with size-estimation noise applied.
  SchedulerSpec with_size_error(double error) const;

  /// Parses "policy[:key=value]..." — e.g. "srpt", "fast_basrpt:v=2500",
  /// "dist-basrpt:v=1000:rounds=4", "srpt:err=4:noise-seed=7". '_' and
  /// '-' are interchangeable in the policy name. Recognized keys:
  /// v (fast/exact/dist-basrpt), threshold (threshold-srpt), rounds
  /// (dist-basrpt), err and noise-seed (any policy). Unknown policies or
  /// keys, keys that do not apply to the policy, malformed or repeated
  /// assignments all throw ConfigError — a typo in a sweep script must
  /// not silently fall back to a default.
  static SchedulerSpec parse(const std::string& text);

  /// Canonical spec string: dash-form policy name plus the parameters
  /// that matter for the policy, omitting the noise suffix when
  /// size_error == 1. parse(to_string()) reproduces every
  /// policy-relevant field; fields a policy ignores (e.g. `v` for SRPT)
  /// are not represented.
  std::string to_string() const;
};

/// Instantiates the scheduler described by `spec`.
SchedulerPtr make_scheduler(const SchedulerSpec& spec);

/// Parses "srpt", "fast-basrpt", "threshold-srpt", "exact-basrpt",
/// "maxweight", "fifo", "dist-basrpt" (parameters taken from the spec
/// defaults); throws ConfigError on unknown names. Used by CLI frontends.
Policy parse_policy(const std::string& name);
std::string to_string(Policy policy);

}  // namespace basrpt::sched
