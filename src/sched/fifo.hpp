// Oldest-first (FCFS) matching scheduler.
//
// Size-oblivious baseline: greedy maximal matching in non-decreasing
// arrival time. Not in the paper's evaluation, but the natural "no flow
// information" reference point for the FCT comparisons and a sanity
// check that SRPT's delay advantage reproduces.
#pragma once

#include "sched/scheduler.hpp"

namespace basrpt::sched {

class FifoScheduler final : public Scheduler {
 public:
  std::string name() const override { return "fifo"; }
  Decision decide(PortId n_ports,
                  const std::vector<VoqCandidate>& candidates) override;
};

}  // namespace basrpt::sched
