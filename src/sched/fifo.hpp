// Oldest-first (FCFS) matching scheduler.
//
// Size-oblivious baseline: greedy maximal matching in non-decreasing
// arrival time. Not in the paper's evaluation, but the natural "no flow
// information" reference point for the FCT comparisons and a sanity
// check that SRPT's delay advantage reproduces.
#pragma once

#include "matching/greedy.hpp"
#include "sched/scheduler.hpp"

namespace basrpt::sched {

class FifoScheduler final : public Scheduler {
 public:
  std::string name() const override { return "fifo"; }
  // The only built-in scheduler that reads the per-VOQ FIFO head.
  CandidateNeeds needs() const override { return {.arrival_index = true}; }
  void decide_into(PortId n_ports, const std::vector<VoqCandidate>& candidates,
                   Decision& out) override;

 private:
  std::vector<matching::ScoredCandidate> scored_;
  matching::GreedyMatcher matcher_;
};

}  // namespace basrpt::sched
