// Oldest-first (FCFS) matching scheduler.
//
// Size-oblivious baseline: greedy maximal matching in non-decreasing
// arrival time. Not in the paper's evaluation, but the natural "no flow
// information" reference point for the FCT comparisons and a sanity
// check that SRPT's delay advantage reproduces.
#pragma once

#include "matching/greedy.hpp"
#include "sched/scheduler.hpp"

namespace basrpt::sched {

class FifoScheduler final : public Scheduler {
 public:
  using Scheduler::decide_into;

  std::string name() const override { return "fifo"; }
  // The only built-in scheduler that reads the per-VOQ FIFO head, i.e.
  // the view's arrival lanes (the Scheduler default is already
  // conservative; spelled out for emphasis).
  bool needs_arrival_lane() const override { return true; }
  void decide_into(PortId n_ports, const CandidateView& candidates,
                   Decision& out) override;

 private:
  matching::GreedyMatcher matcher_;
};

}  // namespace basrpt::sched
