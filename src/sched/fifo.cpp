#include "sched/fifo.hpp"

namespace basrpt::sched {

void FifoScheduler::decide_into(PortId n_ports,
                                const std::vector<VoqCandidate>& candidates,
                                Decision& out) {
  scored_.clear();
  scored_.reserve(candidates.size());
  for (const VoqCandidate& c : candidates) {
    scored_.push_back({c.ingress, c.egress, c.oldest_arrival, c.oldest_flow});
  }
  matcher_.match_into(scored_, n_ports, n_ports, out.selected);
}

}  // namespace basrpt::sched
