#include "sched/fifo.hpp"

namespace basrpt::sched {

void FifoScheduler::decide_into(PortId n_ports,
                                const CandidateView& candidates,
                                Decision& out) {
  if (candidates.empty()) {
    // Nothing to schedule; don't demand the arrival lanes of an empty
    // (possibly default-constructed) view.
    out.selected.clear();
    return;
  }
  // oldest_flow()/oldest_arrival() throw ConfigError if the builder was
  // configured without the arrival lanes.
  matcher_.match_lanes_into(candidates.oldest_arrival(), candidates.ingress(),
                            candidates.egress(), candidates.oldest_flow(),
                            candidates.size(), n_ports, n_ports,
                            out.selected);
}

}  // namespace basrpt::sched
