#include "sched/fifo.hpp"

#include "matching/greedy.hpp"

namespace basrpt::sched {

Decision FifoScheduler::decide(PortId n_ports,
                               const std::vector<VoqCandidate>& candidates) {
  std::vector<matching::ScoredCandidate> scored;
  scored.reserve(candidates.size());
  for (const VoqCandidate& c : candidates) {
    scored.push_back({c.ingress, c.egress, c.oldest_arrival, c.oldest_flow});
  }
  auto greedy = matching::greedy_maximal(std::move(scored), n_ports, n_ports);
  return Decision{std::move(greedy.selected_payloads)};
}

}  // namespace basrpt::sched
