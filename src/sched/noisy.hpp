// Size-estimation noise decorator.
//
// Every SRPT-family design (and the paper, Sec. II-A) assumes flow sizes
// are known a priori. In deployments sizes are estimates (application
// hints, ML predictors), so robustness to mis-estimation is the first
// question a practitioner asks. This decorator multiplies each flow's
// remaining-size estimate by a deterministic per-flow error factor,
// log-uniform in [1/error, error], before handing candidates to the
// wrapped scheduler. Backlogs (which a switch measures directly) are
// left exact. bench_ablation_noise quantifies the FCT/stability impact.
#pragma once

#include "common/rng.hpp"
#include "sched/scheduler.hpp"

namespace basrpt::sched {

class NoisySizeScheduler final : public Scheduler {
 public:
  /// `error` >= 1: maximum multiplicative mis-estimation (1 = exact).
  /// The per-flow factor is fixed for the flow's lifetime (estimation
  /// error does not resample itself every decision).
  NoisySizeScheduler(SchedulerPtr inner, double error, std::uint64_t seed);

  using Scheduler::decide_into;

  std::string name() const override;
  bool needs_arrival_lane() const override {
    return inner_->needs_arrival_lane();
  }
  void decide_into(PortId n_ports, const CandidateView& candidates,
                   Decision& out) override;

  // The per-flow factor is a pure hash of (seed, flow); only the wrapped
  // scheduler can carry checkpointable state.
  std::vector<std::uint64_t> checkpoint_state() const override {
    return inner_->checkpoint_state();
  }
  void restore_checkpoint_state(
      const std::vector<std::uint64_t>& state) override {
    inner_->restore_checkpoint_state(state);
  }

  double error() const { return error_; }

 private:
  double factor_for(FlowId flow) const;

  SchedulerPtr inner_;
  double error_;
  std::uint64_t seed_;
  CandidateSoA noisy_;  // lane copy with perturbed shortest_remaining
};

}  // namespace basrpt::sched
