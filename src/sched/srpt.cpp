#include "sched/srpt.hpp"

namespace basrpt::sched {

void SrptScheduler::decide_into(PortId n_ports,
                                const CandidateView& candidates,
                                Decision& out) {
  // The SRPT score lane IS the shortest_remaining lane — no key
  // computation, no repack; the matcher streams the view directly.
  matcher_.match_lanes_into(candidates.shortest_remaining(),
                            candidates.ingress(), candidates.egress(),
                            candidates.shortest_flow(), candidates.size(),
                            n_ports, n_ports, out.selected);
}

}  // namespace basrpt::sched
