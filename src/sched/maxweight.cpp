#include "sched/maxweight.hpp"

#include "matching/hungarian.hpp"

namespace basrpt::sched {

void MaxWeightScheduler::decide_into(PortId n_ports,
                                     const CandidateView& candidates,
                                     Decision& out) {
  out.selected.clear();
  if (candidates.empty()) {
    return;
  }
  const auto n = static_cast<std::size_t>(n_ports);
  weights_.resize(n);
  flow_at_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    weights_[i].assign(n, 0.0);
    flow_at_[i].assign(n, queueing::kInvalidFlow);
  }
  const PortId* ingress = candidates.ingress();
  const PortId* egress = candidates.egress();
  const double* backlog = candidates.backlog();
  const FlowId* shortest = candidates.shortest_flow();
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    const auto i = static_cast<std::size_t>(ingress[k]);
    const auto j = static_cast<std::size_t>(egress[k]);
    weights_[i][j] = backlog[k];
    // Serve the SRPT representative of the matched VOQ: MaxWeight fixes
    // the port pairs; within a VOQ any flow drains X_ij equally, so the
    // shortest-first choice strictly helps FCT at no stability cost.
    flow_at_[i][j] = shortest[k];
  }

  const matching::Matching m = matching::max_weight_perfect(weights_);
  for (std::size_t i = 0; i < n; ++i) {
    const matching::PortId j = m.match_of_left[i];
    if (j == matching::kUnmatched) {
      continue;
    }
    const FlowId flow = flow_at_[i][static_cast<std::size_t>(j)];
    if (flow != queueing::kInvalidFlow) {
      out.selected.push_back(flow);
    }
  }
}

}  // namespace basrpt::sched
