#include "sched/maxweight.hpp"

#include "matching/hungarian.hpp"

namespace basrpt::sched {

Decision MaxWeightScheduler::decide(
    PortId n_ports, const std::vector<VoqCandidate>& candidates) {
  if (candidates.empty()) {
    return {};
  }
  const auto n = static_cast<std::size_t>(n_ports);
  std::vector<std::vector<double>> weights(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<FlowId>> flow_at(
      n, std::vector<FlowId>(n, queueing::kInvalidFlow));
  for (const VoqCandidate& c : candidates) {
    weights[static_cast<std::size_t>(c.ingress)]
           [static_cast<std::size_t>(c.egress)] = c.backlog;
    // Serve the SRPT representative of the matched VOQ: MaxWeight fixes
    // the port pairs; within a VOQ any flow drains X_ij equally, so the
    // shortest-first choice strictly helps FCT at no stability cost.
    flow_at[static_cast<std::size_t>(c.ingress)]
           [static_cast<std::size_t>(c.egress)] = c.shortest_flow;
  }

  const matching::Matching m = matching::max_weight_perfect(weights);
  Decision decision;
  for (std::size_t i = 0; i < n; ++i) {
    const matching::PortId j = m.match_of_left[i];
    if (j == matching::kUnmatched) {
      continue;
    }
    const FlowId flow = flow_at[i][static_cast<std::size_t>(j)];
    if (flow != queueing::kInvalidFlow) {
      decision.selected.push_back(flow);
    }
  }
  return decision;
}

}  // namespace basrpt::sched
