#include "sched/threshold.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "perf/profiler.hpp"
#include "simd/kernels.hpp"

namespace basrpt::sched {

ThresholdSrptScheduler::ThresholdSrptScheduler(double threshold_packets)
    : threshold_(threshold_packets) {
  BASRPT_REQUIRE(threshold_packets > 0.0, "threshold must be positive");
}

std::string ThresholdSrptScheduler::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "threshold-srpt(T=%g)", threshold_);
  return buf;
}

void ThresholdSrptScheduler::decide_into(PortId n_ports,
                                         const CandidateView& candidates,
                                         Decision& out) {
  // Two-class scoring: promoted VOQs sort strictly before everything
  // else, each class internally ordered by remaining size. The class
  // offset must dominate any remaining size; sizes are bounded by 50 MB
  // (~3.4e4 packets), so 1e12 packets is a safe separator.
  constexpr double kClassOffset = 1e12;
  const std::size_t n = candidates.size();
  keys_.resize(n);
  {
    perf::ScopedPhase phase(perf::Phase::kScoreKernel);
    simd::compute_keys(simd::KeyOp::kThresholdSrpt, threshold_, kClassOffset,
                       candidates.shortest_remaining(), candidates.backlog(),
                       n, keys_.data());
  }
  matcher_.match_lanes_into(keys_.data(), candidates.ingress(),
                            candidates.egress(), candidates.shortest_flow(),
                            n, n_ports, n_ports, out.selected);
}

}  // namespace basrpt::sched
