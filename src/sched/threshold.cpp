#include "sched/threshold.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace basrpt::sched {

ThresholdSrptScheduler::ThresholdSrptScheduler(double threshold_packets)
    : threshold_(threshold_packets) {
  BASRPT_REQUIRE(threshold_packets > 0.0, "threshold must be positive");
}

std::string ThresholdSrptScheduler::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "threshold-srpt(T=%g)", threshold_);
  return buf;
}

void ThresholdSrptScheduler::decide_into(
    PortId n_ports, const std::vector<VoqCandidate>& candidates,
    Decision& out) {
  // Two-class scoring: promoted VOQs sort strictly before everything
  // else, each class internally ordered by remaining size. The class
  // offset must dominate any remaining size; sizes are bounded by 50 MB
  // (~3.4e4 packets), so 1e12 packets is a safe separator.
  constexpr double kClassOffset = 1e12;
  scored_.clear();
  scored_.reserve(candidates.size());
  for (const VoqCandidate& c : candidates) {
    const bool promoted = c.backlog > threshold_;
    const double key =
        c.shortest_remaining + (promoted ? 0.0 : kClassOffset);
    scored_.push_back({c.ingress, c.egress, key, c.shortest_flow});
  }
  matcher_.match_into(scored_, n_ports, n_ports, out.selected);
}

}  // namespace basrpt::sched
