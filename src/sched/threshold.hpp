// Backlog-threshold SRPT — the motivation strategy of Fig. 2.
//
// "The backlog-aware strategy just priorities flows in the backlog
// exceeding a certain threshold and other flows are still scheduled
// according to SRPT." Flows whose VOQ backlog exceeds the threshold form
// a high-priority class (ordered by remaining size among themselves);
// everything else is plain SRPT below them.
#pragma once

#include "matching/greedy.hpp"
#include "sched/scheduler.hpp"

namespace basrpt::sched {

class ThresholdSrptScheduler final : public Scheduler {
 public:
  using Scheduler::decide_into;

  /// `threshold_packets`: VOQ backlog (in packets) beyond which the VOQ's
  /// flows are promoted.
  explicit ThresholdSrptScheduler(double threshold_packets);

  std::string name() const override;
  bool needs_arrival_lane() const override { return false; }
  void decide_into(PortId n_ports, const CandidateView& candidates,
                   Decision& out) override;

  double threshold() const { return threshold_; }

 private:
  double threshold_;
  std::vector<double> keys_;
  matching::GreedyMatcher matcher_;
};

}  // namespace basrpt::sched
