// Fast BASRPT (Algorithm 1 of the paper) — the headline contribution.
//
// Greedy flow selection in non-decreasing order of
//     (V / N) * remaining_size - located_queue_length,
// skipping flows whose ingress or egress port is already claimed. Summing
// the key over the <= N selected flows approximates the exact BASRPT
// objective V*ȳ(t) − Σ X_ij R_ij (N stands in for the unknown number of
// selected flows n(t)). Larger V weighs FCT minimization more; V → ∞
// degenerates to SRPT, V = 0 degenerates to longest-queue-first.
#pragma once

#include "matching/greedy.hpp"
#include "sched/scheduler.hpp"

namespace basrpt::sched {

class FastBasrptScheduler final : public Scheduler {
 public:
  using Scheduler::decide_into;

  /// `v` is the paper's importance weight (>= 0), in packet units.
  explicit FastBasrptScheduler(double v);

  std::string name() const override;
  bool needs_arrival_lane() const override { return false; }
  void decide_into(PortId n_ports, const CandidateView& candidates,
                   Decision& out) override;

  double v() const { return v_; }

 private:
  double v_;
  std::vector<double> keys_;
  matching::GreedyMatcher matcher_;
};

}  // namespace basrpt::sched
