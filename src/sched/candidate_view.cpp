#include "sched/candidate_view.hpp"

#include "common/assert.hpp"

namespace basrpt::sched {

const FlowId* CandidateView::oldest_flow() const {
  BASRPT_REQUIRE(oldest_flow_ != nullptr,
                 "candidate view has no arrival lane — the candidate "
                 "builder was configured without it (scheduler's "
                 "needs_arrival_lane() not honored?)");
  return oldest_flow_;
}

const double* CandidateView::oldest_arrival() const {
  BASRPT_REQUIRE(oldest_arrival_ != nullptr,
                 "candidate view has no arrival lane — the candidate "
                 "builder was configured without it (scheduler's "
                 "needs_arrival_lane() not honored?)");
  return oldest_arrival_;
}

CandidateView CandidateView::from_aos(const std::vector<VoqCandidate>& aos,
                                      CandidateSoA& storage,
                                      bool with_arrival) {
  storage.assign_from_aos(aos, with_arrival);
  return storage.view();
}

void CandidateSoA::clear() {
  ingress.clear();
  egress.clear();
  backlog.clear();
  flow_count.clear();
  shortest_flow.clear();
  shortest_remaining.clear();
  shortest_arrival.clear();
  oldest_flow.clear();
  oldest_arrival.clear();
}

void CandidateSoA::resize_lanes(std::size_t n) {
  ingress.resize(n);
  egress.resize(n);
  backlog.resize(n);
  flow_count.resize(n);
  shortest_flow.resize(n);
  shortest_remaining.resize(n);
  shortest_arrival.resize(n);
  oldest_flow.resize(with_arrival ? n : 0);
  oldest_arrival.resize(with_arrival ? n : 0);
}

void CandidateSoA::assign_from_aos(const std::vector<VoqCandidate>& aos,
                                   bool arrival) {
  with_arrival = arrival;
  resize_lanes(aos.size());
  for (std::size_t k = 0; k < aos.size(); ++k) {
    const VoqCandidate& c = aos[k];
    ingress[k] = c.ingress;
    egress[k] = c.egress;
    backlog[k] = c.backlog;
    flow_count[k] = static_cast<std::uint32_t>(c.flow_count);
    shortest_flow[k] = c.shortest_flow;
    shortest_remaining[k] = c.shortest_remaining;
    shortest_arrival[k] = c.shortest_arrival;
    if (arrival) {
      oldest_flow[k] = c.oldest_flow;
      oldest_arrival[k] = c.oldest_arrival;
    }
  }
}

void CandidateSoA::assign_from_view(const CandidateView& v) {
  const std::size_t n = v.size();
  ingress.assign(v.ingress(), v.ingress() + n);
  egress.assign(v.egress(), v.egress() + n);
  backlog.assign(v.backlog(), v.backlog() + n);
  flow_count.assign(v.flow_count(), v.flow_count() + n);
  shortest_flow.assign(v.shortest_flow(), v.shortest_flow() + n);
  shortest_remaining.assign(v.shortest_remaining(),
                            v.shortest_remaining() + n);
  shortest_arrival.assign(v.shortest_arrival(), v.shortest_arrival() + n);
  with_arrival = v.has_arrival_lane();
  if (with_arrival) {
    oldest_flow.assign(v.oldest_flow(), v.oldest_flow() + n);
    oldest_arrival.assign(v.oldest_arrival(), v.oldest_arrival() + n);
  } else {
    oldest_flow.clear();
    oldest_arrival.clear();
  }
}

CandidateView CandidateSoA::view() const {
  const std::size_t n = ingress.size();
  const bool core_consistent =
      egress.size() == n && backlog.size() == n && flow_count.size() == n &&
      shortest_flow.size() == n && shortest_remaining.size() == n &&
      shortest_arrival.size() == n;
  const std::size_t arrival_n = with_arrival ? n : 0;
  BASRPT_REQUIRE(core_consistent && oldest_flow.size() == arrival_n &&
                     oldest_arrival.size() == arrival_n,
                 "candidate SoA lanes have mismatched lengths");
  CandidateView v;
  v.size_ = n;
  v.ingress_ = ingress.data();
  v.egress_ = egress.data();
  v.backlog_ = backlog.data();
  v.flow_count_ = flow_count.data();
  v.shortest_flow_ = shortest_flow.data();
  v.shortest_remaining_ = shortest_remaining.data();
  v.shortest_arrival_ = shortest_arrival.data();
  if (with_arrival) {
    v.oldest_flow_ = oldest_flow.data();
    v.oldest_arrival_ = oldest_arrival.data();
  }
  return v;
}

}  // namespace basrpt::sched
