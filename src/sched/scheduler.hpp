// Flow-scheduler interface over the big-switch abstraction.
//
// Both simulators (slotted switch and flow-level fabric) present the
// scheduler with one candidate per non-empty VOQ and receive back a set
// of flows forming a matching (at most one flow per ingress and per
// egress port — the crossbar constraint of Sec. III-B).
//
// One candidate per VOQ is lossless for every scheduler here: a matching
// admits at most one flow per VOQ, and all selection keys in this module
// depend on the flow only through its remaining size or arrival time, so
// the per-VOQ minimizer dominates its queue-mates. This keeps a decision
// O(#non-empty VOQs) instead of O(#active flows) — the difference between
// a tractable and an intractable unstable-SRPT run, where the number of
// parked flows grows without bound.
//
// The decision path is the simulators' hot loop (the paper reschedules
// on *every* arrival and completion), so the interface is built to run
// allocation-free in steady state: candidates arrive as a CandidateView —
// contiguous SoA lanes maintained incrementally by fabric::CandidateCache
// and streamed by the src/simd scoring kernels — and decide_into() writes
// into a caller-owned Decision whose capacity persists across
// invocations, with implementations keeping sort/matching scratch as
// members.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "queueing/flow.hpp"
#include "queueing/voq.hpp"
#include "sched/candidate_view.hpp"

namespace basrpt::sched {

/// A scheduling decision: flows to serve this slot / until the next
/// arrival-or-completion event. Guaranteed by implementations to respect
/// the crossbar constraint.
struct Decision {
  std::vector<FlowId> selected;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Whether decisions read the view's arrival lanes (oldest_flow /
  /// oldest_arrival). The default is conservative; schedulers that
  /// ignore them override this so candidate builders can skip the lane.
  /// Decorators must forward to the wrapped scheduler. Asking the view
  /// for a lane the builder skipped is a ConfigError.
  virtual bool needs_arrival_lane() const { return true; }

  /// Computes a decision into `out`, clearing `out.selected` first and
  /// reusing its capacity. The view holds at most one entry per (i, j).
  virtual void decide_into(PortId n_ports, const CandidateView& candidates,
                           Decision& out) = 0;

  /// Batched decisions: `out[k]` is the decision for `views[k]`. The
  /// default simply loops; schedulers with per-decision setup that
  /// depends only on n_ports (matcher scratch sizing, BvN permutation
  /// tables) amortize it across the batch. Semantics are exactly `count`
  /// independent decide_into calls — differential tests enforce this.
  virtual void decide_batch(PortId n_ports, const CandidateView* views,
                            std::size_t count, Decision* out);

  /// Opaque internal state for checkpoint/resume. Schedulers whose
  /// decisions depend only on the candidates (everything here except the
  /// randomized BvN reference) return empty; stateful ones serialize
  /// whatever restore_checkpoint_state() needs to continue the decision
  /// sequence bit-identically. Decorators forward to the wrapped
  /// scheduler.
  virtual std::vector<std::uint64_t> checkpoint_state() const { return {}; }

  /// Inverse of checkpoint_state(). The default rejects non-empty state
  /// (a stateful checkpoint cannot be restored into a stateless
  /// scheduler — that points at a scheduler-spec mismatch on resume).
  virtual void restore_checkpoint_state(
      const std::vector<std::uint64_t>& state);

  /// Convenience wrapper allocating a fresh Decision (tests, one-off
  /// callers). Hot paths keep a Decision buffer and call decide_into.
  Decision decide(PortId n_ports, const CandidateView& candidates) {
    Decision out;
    decide_into(n_ports, candidates, out);
    return out;
  }

  /// Deprecated AoS shims, kept for one release so out-of-tree callers
  /// holding std::vector<VoqCandidate> keep compiling (concrete classes
  /// re-export them with `using Scheduler::decide_into;`). They repack
  /// into an internal SoA scratch per call — migrate to CandidateView.
  void decide_into(PortId n_ports, const std::vector<VoqCandidate>& candidates,
                   Decision& out) {
    decide_into(n_ports, CandidateView::from_aos(candidates, compat_soa_),
                out);
  }
  Decision decide(PortId n_ports,
                  const std::vector<VoqCandidate>& candidates) {
    Decision out;
    decide_into(n_ports, candidates, out);
    return out;
  }

 private:
  CandidateSoA compat_soa_;  // scratch for the deprecated AoS shim
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

/// Builds the per-VOQ candidate list from a VoqMatrix, from scratch, in
/// AoS form. `unit_bytes` converts bytes to packets (use 1.0 when the
/// matrix already stores packets, as in the slotted model);
/// `with_arrival` controls whether the oldest_flow / oldest_arrival
/// fields are filled (skip unless the scheduler needs_arrival_lane()).
/// The simulators use fabric::CandidateCache instead, which maintains
/// the same candidates incrementally as SoA lanes; this remains the
/// reference implementation and the cache's differential-test oracle.
std::vector<VoqCandidate> build_candidates(const queueing::VoqMatrix& voqs,
                                           double unit_bytes,
                                           bool with_arrival = true);

/// Fills one candidate entry for non-empty VOQ (i, j) — the single-VOQ
/// kernel shared by build_candidates and fabric::CandidateCache.
void fill_candidate(const queueing::VoqMatrix& voqs, PortId i, PortId j,
                    double unit_bytes, bool with_arrival, VoqCandidate& out);

/// Checks the crossbar constraint of a decision against the candidate
/// set; used by tests and (cheaply) asserted by the simulators.
bool decision_is_matching(const Decision& decision,
                          const queueing::VoqMatrix& voqs);

}  // namespace basrpt::sched
