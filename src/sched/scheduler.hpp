// Flow-scheduler interface over the big-switch abstraction.
//
// Both simulators (slotted switch and flow-level fabric) present the
// scheduler with one candidate per non-empty VOQ and receive back a set
// of flows forming a matching (at most one flow per ingress and per
// egress port — the crossbar constraint of Sec. III-B).
//
// One candidate per VOQ is lossless for every scheduler here: a matching
// admits at most one flow per VOQ, and all selection keys in this module
// depend on the flow only through its remaining size or arrival time, so
// the per-VOQ minimizer dominates its queue-mates. This keeps a decision
// O(#non-empty VOQs) instead of O(#active flows) — the difference between
// a tractable and an intractable unstable-SRPT run, where the number of
// parked flows grows without bound.
//
// The decision path is the simulators' hot loop (the paper reschedules
// on *every* arrival and completion), so the interface is built to run
// allocation-free in steady state: decide_into() writes into a
// caller-owned Decision whose capacity persists across invocations, and
// implementations keep their sort/matching scratch as members. The
// candidate list itself is typically served by fabric::CandidateCache,
// which maintains it incrementally instead of rebuilding per decision.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "queueing/flow.hpp"
#include "queueing/voq.hpp"

namespace basrpt::sched {

using queueing::FlowId;
using queueing::PortId;

/// Per-VOQ summary handed to schedulers. Sizes and backlogs are in
/// *packets* (the model's unit; the flow-level simulator divides bytes by
/// its packet size) so the paper's V values carry over unchanged.
struct VoqCandidate {
  PortId ingress = 0;
  PortId egress = 0;
  double backlog = 0.0;             // total VOQ backlog X_ij, packets
  std::size_t flow_count = 0;       // flows queued in this VOQ
  FlowId shortest_flow = queueing::kInvalidFlow;
  double shortest_remaining = 0.0;  // packets
  double shortest_arrival = 0.0;    // arrival time of that flow, seconds
  FlowId oldest_flow = queueing::kInvalidFlow;
  double oldest_arrival = 0.0;      // seconds
};

/// Which optional candidate fields a scheduler reads. Candidate builders
/// (build_candidates, fabric::CandidateCache) skip the fields nobody
/// asked for — maintaining the FIFO head costs an ordered-index probe and
/// a flow-table lookup per VOQ, and only FIFO reads it today.
struct CandidateNeeds {
  /// oldest_flow / oldest_arrival (the per-VOQ FIFO representative).
  bool arrival_index = true;
};

/// A scheduling decision: flows to serve this slot / until the next
/// arrival-or-completion event. Guaranteed by implementations to respect
/// the crossbar constraint.
struct Decision {
  std::vector<FlowId> selected;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Candidate fields this scheduler's decisions depend on. The default
  /// is conservative (everything); schedulers that ignore the arrival
  /// index override this so candidate builders can skip it. Decorators
  /// must forward to the wrapped scheduler.
  virtual CandidateNeeds needs() const { return {}; }

  /// Computes a decision into `out`, clearing `out.selected` first and
  /// reusing its capacity. Candidates hold at most one entry per (i, j).
  virtual void decide_into(PortId n_ports,
                           const std::vector<VoqCandidate>& candidates,
                           Decision& out) = 0;

  /// Opaque internal state for checkpoint/resume. Schedulers whose
  /// decisions depend only on the candidates (everything here except the
  /// randomized BvN reference) return empty; stateful ones serialize
  /// whatever restore_checkpoint_state() needs to continue the decision
  /// sequence bit-identically. Decorators forward to the wrapped
  /// scheduler.
  virtual std::vector<std::uint64_t> checkpoint_state() const { return {}; }

  /// Inverse of checkpoint_state(). The default rejects non-empty state
  /// (a stateful checkpoint cannot be restored into a stateless
  /// scheduler — that points at a scheduler-spec mismatch on resume).
  virtual void restore_checkpoint_state(
      const std::vector<std::uint64_t>& state);

  /// Convenience wrapper allocating a fresh Decision (tests, one-off
  /// callers). Hot paths keep a Decision buffer and call decide_into.
  Decision decide(PortId n_ports,
                  const std::vector<VoqCandidate>& candidates) {
    Decision out;
    decide_into(n_ports, candidates, out);
    return out;
  }
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

/// Builds the per-VOQ candidate list from a VoqMatrix, from scratch.
/// `unit_bytes` converts bytes to packets (use 1.0 when the matrix
/// already stores packets, as in the slotted model). `needs` limits
/// which optional fields are filled. The simulators use
/// fabric::CandidateCache instead, which maintains the same list
/// incrementally; this remains the reference implementation and the
/// cache's differential-test oracle.
std::vector<VoqCandidate> build_candidates(const queueing::VoqMatrix& voqs,
                                           double unit_bytes,
                                           CandidateNeeds needs = {});

/// Fills one candidate entry for non-empty VOQ (i, j) — the single-VOQ
/// kernel shared by build_candidates and fabric::CandidateCache.
void fill_candidate(const queueing::VoqMatrix& voqs, PortId i, PortId j,
                    double unit_bytes, CandidateNeeds needs,
                    VoqCandidate& out);

/// Checks the crossbar constraint of a decision against the candidate
/// set; used by tests and (cheaply) asserted by the simulators.
bool decision_is_matching(const Decision& decision,
                          const queueing::VoqMatrix& voqs);

}  // namespace basrpt::sched
