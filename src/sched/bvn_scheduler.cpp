#include "sched/bvn_scheduler.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "common/assert.hpp"

namespace basrpt::sched {

BvnScheduler::BvnScheduler(matching::RateMatrix rates, Rng rng)
    : rng_(rng) {
  const auto completed =
      matching::complete_to_doubly_stochastic(std::move(rates));
  terms_ = matching::birkhoff_decompose(completed);
  BASRPT_REQUIRE(!terms_.empty(), "BvN decomposition produced no terms");
  cumulative_.reserve(terms_.size());
  double acc = 0.0;
  for (const auto& term : terms_) {
    acc += term.weight;
    cumulative_.push_back(acc);
  }
}

std::vector<std::uint64_t> BvnScheduler::checkpoint_state() const {
  const auto words = rng_.state();
  return std::vector<std::uint64_t>(words.begin(), words.end());
}

void BvnScheduler::restore_checkpoint_state(
    const std::vector<std::uint64_t>& state) {
  BASRPT_REQUIRE(state.size() == 5,
                 "BvN scheduler state must be the 5 RNG words, got " +
                     std::to_string(state.size()));
  std::array<std::uint64_t, 5> words{};
  std::copy(state.begin(), state.end(), words.begin());
  rng_.restore(words);
}

void BvnScheduler::decide_into(PortId n_ports,
                               const CandidateView& candidates,
                               Decision& out) {
  out.selected.clear();
  if (candidates.empty()) {
    return;
  }
  // Draw a permutation with probability proportional to its BvN weight.
  const double u = rng_.uniform01() * cumulative_.back();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cumulative_.begin());
  const matching::Matching& perm =
      terms_[std::min(idx, terms_.size() - 1)].permutation;
  BASRPT_ASSERT(perm.match_of_left.size() == static_cast<std::size_t>(n_ports),
                "BvN permutation size does not match fabric");

  // Serve the shortest flow of each matched, non-empty VOQ. Selection
  // order follows the caller's candidate order.
  const PortId* ingress = candidates.ingress();
  const PortId* egress = candidates.egress();
  const FlowId* shortest = candidates.shortest_flow();
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    if (perm.match_of_left[static_cast<std::size_t>(ingress[k])] ==
        egress[k]) {
      out.selected.push_back(shortest[k]);
    }
  }
}

}  // namespace basrpt::sched
