#include "sched/distributed_basrpt.hpp"

#include <cstdio>
#include <limits>

#include "common/assert.hpp"
#include "perf/profiler.hpp"
#include "simd/kernels.hpp"

namespace basrpt::sched {

DistributedBasrptScheduler::DistributedBasrptScheduler(double v, int rounds)
    : v_(v), rounds_(rounds) {
  BASRPT_REQUIRE(v >= 0.0, "BASRPT weight V must be non-negative");
  BASRPT_REQUIRE(rounds >= 1, "need at least one request/grant round");
}

std::string DistributedBasrptScheduler::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "dist-basrpt(V=%g r=%d)", v_, rounds_);
  return buf;
}

void DistributedBasrptScheduler::decide_into(PortId n_ports,
                                             const CandidateView& candidates,
                                             Decision& out) {
  out.selected.clear();
  if (candidates.empty()) {
    return;
  }
  const double weight = v_ / static_cast<double>(n_ports);
  const auto n = static_cast<std::size_t>(n_ports);
  const std::size_t n_cand = candidates.size();
  const PortId* cand_ingress = candidates.ingress();
  const PortId* cand_egress = candidates.egress();
  const FlowId* cand_flow = candidates.shortest_flow();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Local state per ingress port: its candidate VOQs (index into the
  // view). Each ingress only ever inspects its own VOQs — the
  // information a real distributed endpoint has. The keys are the same
  // fast-BASRPT lane computation the centralized scheduler uses.
  per_ingress_.resize(n);
  for (auto& list : per_ingress_) {
    list.clear();
  }
  key_.resize(n_cand);
  {
    perf::ScopedPhase phase(perf::Phase::kScoreKernel);
    simd::compute_keys(simd::KeyOp::kFastBasrpt, weight, 0.0,
                       candidates.shortest_remaining(), candidates.backlog(),
                       n_cand, key_.data());
  }
  for (std::size_t c = 0; c < n_cand; ++c) {
    per_ingress_[static_cast<std::size_t>(cand_ingress[c])].push_back(c);
  }

  ingress_matched_.assign(n, 0);
  egress_matched_.assign(n, 0);

  for (int round = 0; round < rounds_; ++round) {
    // Request phase: every unmatched ingress picks its best VOQ whose
    // egress is still free and posts a request.
    constexpr std::size_t kNoRequest = static_cast<std::size_t>(-1);
    request_of_.assign(n, kNoRequest);  // per egress: cand
    bool any_request = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (ingress_matched_[i]) {
        continue;
      }
      std::size_t best = kNoRequest;
      double best_key = kInf;
      for (const std::size_t c : per_ingress_[i]) {
        const auto egress = static_cast<std::size_t>(cand_egress[c]);
        if (egress_matched_[egress]) {
          continue;
        }
        // Deterministic tiebreak on flow id keeps runs reproducible.
        if (key_[c] < best_key ||
            (key_[c] == best_key && best != kNoRequest &&
             cand_flow[c] < cand_flow[best])) {
          best = c;
          best_key = key_[c];
        }
      }
      if (best == kNoRequest) {
        continue;
      }
      any_request = true;
      // Grant phase folded in: the egress keeps the lowest-key request.
      const auto egress = static_cast<std::size_t>(cand_egress[best]);
      const std::size_t incumbent = request_of_[egress];
      if (incumbent == kNoRequest || key_[best] < key_[incumbent] ||
          (key_[best] == key_[incumbent] &&
           cand_flow[best] < cand_flow[incumbent])) {
        request_of_[egress] = best;
      }
    }
    if (!any_request) {
      break;
    }
    // Commit grants; each ingress requested at most one egress, so
    // grants never conflict on the ingress side.
    for (std::size_t e = 0; e < n; ++e) {
      const std::size_t c = request_of_[e];
      if (c == static_cast<std::size_t>(-1)) {
        continue;
      }
      const auto ingress = static_cast<std::size_t>(cand_ingress[c]);
      BASRPT_ASSERT(!ingress_matched_[ingress] && !egress_matched_[e],
                    "request/grant produced a conflicting match");
      ingress_matched_[ingress] = 1;
      egress_matched_[e] = 1;
      out.selected.push_back(cand_flow[c]);
    }
  }
}

}  // namespace basrpt::sched
