#include "sched/distributed_basrpt.hpp"

#include <cstdio>
#include <limits>

#include "common/assert.hpp"

namespace basrpt::sched {

DistributedBasrptScheduler::DistributedBasrptScheduler(double v, int rounds)
    : v_(v), rounds_(rounds) {
  BASRPT_REQUIRE(v >= 0.0, "BASRPT weight V must be non-negative");
  BASRPT_REQUIRE(rounds >= 1, "need at least one request/grant round");
}

std::string DistributedBasrptScheduler::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "dist-basrpt(V=%g,r=%d)", v_, rounds_);
  return buf;
}

Decision DistributedBasrptScheduler::decide(
    PortId n_ports, const std::vector<VoqCandidate>& candidates) {
  if (candidates.empty()) {
    return {};
  }
  const double weight = v_ / static_cast<double>(n_ports);
  const auto n = static_cast<std::size_t>(n_ports);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Local state per ingress port: its candidate VOQs (index into
  // `candidates`). Each ingress only ever inspects its own VOQs — the
  // information a real distributed endpoint has.
  std::vector<std::vector<std::size_t>> per_ingress(n);
  std::vector<double> key(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    key[c] = weight * candidates[c].shortest_remaining -
             candidates[c].backlog;
    per_ingress[static_cast<std::size_t>(candidates[c].ingress)].push_back(c);
  }

  std::vector<bool> ingress_matched(n, false);
  std::vector<bool> egress_matched(n, false);
  Decision decision;

  for (int round = 0; round < rounds_; ++round) {
    // Request phase: every unmatched ingress picks its best VOQ whose
    // egress is still free and posts a request.
    constexpr std::size_t kNoRequest = static_cast<std::size_t>(-1);
    std::vector<std::size_t> request_of(n, kNoRequest);  // per egress: cand
    bool any_request = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (ingress_matched[i]) {
        continue;
      }
      std::size_t best = kNoRequest;
      double best_key = kInf;
      for (const std::size_t c : per_ingress[i]) {
        const auto egress = static_cast<std::size_t>(candidates[c].egress);
        if (egress_matched[egress]) {
          continue;
        }
        // Deterministic tiebreak on flow id keeps runs reproducible.
        if (key[c] < best_key ||
            (key[c] == best_key && best != kNoRequest &&
             candidates[c].shortest_flow < candidates[best].shortest_flow)) {
          best = c;
          best_key = key[c];
        }
      }
      if (best == kNoRequest) {
        continue;
      }
      any_request = true;
      // Grant phase folded in: the egress keeps the lowest-key request.
      const auto egress = static_cast<std::size_t>(candidates[best].egress);
      const std::size_t incumbent = request_of[egress];
      if (incumbent == kNoRequest || key[best] < key[incumbent] ||
          (key[best] == key[incumbent] &&
           candidates[best].shortest_flow <
               candidates[incumbent].shortest_flow)) {
        request_of[egress] = best;
      }
    }
    if (!any_request) {
      break;
    }
    // Commit grants; each ingress requested at most one egress, so
    // grants never conflict on the ingress side.
    for (std::size_t e = 0; e < n; ++e) {
      const std::size_t c = request_of[e];
      if (c == static_cast<std::size_t>(-1)) {
        continue;
      }
      const auto ingress = static_cast<std::size_t>(candidates[c].ingress);
      BASRPT_ASSERT(!ingress_matched[ingress] && !egress_matched[e],
                    "request/grant produced a conflicting match");
      ingress_matched[ingress] = true;
      egress_matched[e] = true;
      decision.selected.push_back(candidates[c].shortest_flow);
    }
  }
  return decision;
}

}  // namespace basrpt::sched
