#include "sched/instrumented.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace basrpt::sched {

InstrumentedScheduler::InstrumentedScheduler(SchedulerPtr inner,
                                             obs::Registry* registry,
                                             const std::string& prefix)
    : inner_(std::move(inner)) {
  BASRPT_REQUIRE(inner_ != nullptr,
                 "InstrumentedScheduler needs a scheduler to wrap");
  obs::Registry& reg =
      registry != nullptr ? *registry : obs::Registry::global();
  decisions_counter_ = &reg.counter(prefix + ".decisions");
  preemptions_counter_ = &reg.counter(prefix + ".preemptions");
  decision_ns_ = &reg.histogram(prefix + ".decision_ns");
  candidates_hist_ = &reg.histogram(prefix + ".candidates");
  matching_hist_ = &reg.histogram(prefix + ".matching_size");
}

Decision InstrumentedScheduler::decide(
    PortId n_ports, const std::vector<VoqCandidate>& candidates) {
  obs::ScopedTimer timer(*decision_ns_, /*always=*/true);
  Decision decision = inner_->decide(n_ports, candidates);
  timer.stop();

  ++decisions_;
  decisions_counter_->add(1);
  last_candidates_ = candidates.size();
  candidates_hist_->add(candidates.size());
  last_matching_size_ = decision.selected.size();
  matching_hist_->add(decision.selected.size());

  // Preemptions: previously-selected flows missing from this decision.
  std::vector<FlowId> selected = decision.selected;
  std::sort(selected.begin(), selected.end());
  std::uint64_t preempted = 0;
  for (const FlowId id : prev_selected_) {
    if (!std::binary_search(selected.begin(), selected.end(), id)) {
      ++preempted;
    }
  }
  last_preemptions_ = preempted;
  preemptions_ += preempted;
  preemptions_counter_->add(static_cast<std::int64_t>(preempted));
  prev_selected_ = std::move(selected);

  return decision;
}

}  // namespace basrpt::sched
