#include "sched/instrumented.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace basrpt::sched {

InstrumentedScheduler::InstrumentedScheduler(SchedulerPtr inner,
                                             obs::Registry* registry,
                                             const std::string& prefix)
    : inner_(std::move(inner)) {
  BASRPT_REQUIRE(inner_ != nullptr,
                 "InstrumentedScheduler needs a scheduler to wrap");
  obs::Registry& reg =
      registry != nullptr ? *registry : obs::Registry::active();
  decisions_counter_ = &reg.counter(prefix + ".decisions");
  preemptions_counter_ = &reg.counter(prefix + ".preemptions");
  decision_ns_ = &reg.histogram(prefix + ".decision_ns");
  candidates_hist_ = &reg.histogram(prefix + ".candidates");
  matching_hist_ = &reg.histogram(prefix + ".matching_size");
}

void InstrumentedScheduler::decide_into(PortId n_ports,
                                        const CandidateView& candidates,
                                        Decision& out) {
  obs::ScopedTimer timer(*decision_ns_, /*always=*/true);
  inner_->decide_into(n_ports, candidates, out);
  timer.stop();

  ++decisions_;
  decisions_counter_->add(1);
  last_candidates_ = candidates.size();
  candidates_hist_->add(candidates.size());
  last_matching_size_ = out.selected.size();
  matching_hist_->add(out.selected.size());

  // Preemptions: previously-selected flows missing from this decision.
  sorted_scratch_ = out.selected;
  std::sort(sorted_scratch_.begin(), sorted_scratch_.end());
  std::uint64_t preempted = 0;
  for (const FlowId id : prev_selected_) {
    if (!std::binary_search(sorted_scratch_.begin(), sorted_scratch_.end(),
                            id)) {
      ++preempted;
    }
  }
  last_preemptions_ = preempted;
  preemptions_ += preempted;
  preemptions_counter_->add(static_cast<std::int64_t>(preempted));
  prev_selected_.swap(sorted_scratch_);
}

}  // namespace basrpt::sched
