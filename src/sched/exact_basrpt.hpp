// Exact BASRPT (Sec. IV-A): traverse all maximal scheduling schemes and
// pick the one minimizing V·ȳ(t) − Σ X_ij R_ij.
//
// The traversal is exponential in the number of ports — the paper's
// stated reason for developing fast BASRPT — so this implementation is
// deliberately guarded to small fabrics. It exists to (a) validate the
// heuristic against the exact optimizer in tests and (b) measure the
// computational gap in bench_sched_micro.
#pragma once

#include "matching/enumerate.hpp"
#include "sched/scheduler.hpp"

namespace basrpt::sched {

class ExactBasrptScheduler final : public Scheduler {
 public:
  using Scheduler::decide_into;

  /// `max_ports` guards against accidental exponential blow-up.
  explicit ExactBasrptScheduler(double v, PortId max_ports = 10);

  std::string name() const override;
  bool needs_arrival_lane() const override { return false; }
  void decide_into(PortId n_ports, const CandidateView& candidates,
                   Decision& out) override;

  double v() const { return v_; }

  /// Objective value V·ȳ − ΣX of a set of selected candidates; exposed
  /// for tests comparing schedulers.
  static double objective(double v,
                          const std::vector<VoqCandidate>& selected);

 private:
  double v_;
  PortId max_ports_;
  std::vector<matching::Edge> edges_;
  std::vector<std::uint32_t> by_pair_;  // candidate index per (i, j)
  std::vector<FlowId> selection_;
  std::vector<FlowId> best_selection_;
};

}  // namespace basrpt::sched
