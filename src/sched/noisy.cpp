#include "sched/noisy.hpp"

#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace basrpt::sched {

NoisySizeScheduler::NoisySizeScheduler(SchedulerPtr inner, double error,
                                       std::uint64_t seed)
    : inner_(std::move(inner)), error_(error), seed_(seed) {
  BASRPT_REQUIRE(inner_ != nullptr, "noisy decorator needs a scheduler");
  BASRPT_REQUIRE(error >= 1.0, "error factor must be >= 1 (1 = exact)");
}

std::string NoisySizeScheduler::name() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "noisy(x%g)+%s", error_,
                inner_->name().c_str());
  return buf;
}

double NoisySizeScheduler::factor_for(FlowId flow) const {
  // Deterministic per-flow draw: hash (seed, flow) into a uniform in
  // [0, 1), then map log-uniformly onto [1/error, error].
  std::uint64_t state = seed_ ^ (0x9E3779B97F4A7C15ull *
                                 (static_cast<std::uint64_t>(flow) + 1));
  const double u = static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  const double log_error = std::log(error_);
  return std::exp((2.0 * u - 1.0) * log_error);
}

void NoisySizeScheduler::decide_into(PortId n_ports,
                                     const CandidateView& candidates,
                                     Decision& out) {
  if (error_ <= 1.0 + 1e-12) {
    inner_->decide_into(n_ports, candidates, out);
    return;
  }
  noisy_.assign_from_view(candidates);  // lane copies reuse capacity
  for (std::size_t k = 0; k < noisy_.shortest_remaining.size(); ++k) {
    noisy_.shortest_remaining[k] *= factor_for(noisy_.shortest_flow[k]);
  }
  inner_->decide_into(n_ports, noisy_.view(), out);
}

}  // namespace basrpt::sched
