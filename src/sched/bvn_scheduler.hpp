// Randomized Birkhoff–von-Neumann scheduler — the α* construction from
// the proof of Theorem 1.
//
// Given the (admissible) arrival-rate matrix Λ, complete it to a doubly
// stochastic matrix, decompose M = Σ u(σ)·M(σ), and on each decision draw
// permutation σ with probability u(σ). Every VOQ is then served at rate
// >= λ_ij regardless of backlogs, which guarantees stability; within a
// matched VOQ the shortest flow is served. Backlog-oblivious by
// construction (the proof relies on E[ȳ*|X] = E[ȳ*]).
#pragma once

#include "common/rng.hpp"
#include "matching/birkhoff.hpp"
#include "sched/scheduler.hpp"

namespace basrpt::sched {

class BvnScheduler final : public Scheduler {
 public:
  /// `rates[i][j]` in packets/slot (line sums <= 1); completed and
  /// decomposed at construction.
  BvnScheduler(matching::RateMatrix rates, Rng rng);

  using Scheduler::decide_into;

  std::string name() const override { return "bvn-random"; }
  bool needs_arrival_lane() const override { return false; }
  void decide_into(PortId n_ports, const CandidateView& candidates,
                   Decision& out) override;

  /// The permutation draws consume the RNG, so mid-run resume must carry
  /// it: state is the raw xoshiro words (common::Rng::state()).
  std::vector<std::uint64_t> checkpoint_state() const override;
  void restore_checkpoint_state(
      const std::vector<std::uint64_t>& state) override;

  const std::vector<matching::BvnTerm>& terms() const { return terms_; }

 private:
  std::vector<matching::BvnTerm> terms_;
  std::vector<double> cumulative_;
  Rng rng_;
};

}  // namespace basrpt::sched
