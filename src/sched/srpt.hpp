// SRPT matching scheduler (Sec. II / III-A).
//
// "The globally shortest flow is first included, and if it lies in queue
// (i, j), then all other flows with ingress port i or egress port j are
// blocked... Repeat for the rest of flows until no flow could be added."
// This is the greedy maximal matching in non-decreasing remaining size
// that pFabric/PDQ/PASE approximate, and the algorithm whose instability
// the paper demonstrates.
#pragma once

#include "matching/greedy.hpp"
#include "sched/scheduler.hpp"

namespace basrpt::sched {

class SrptScheduler final : public Scheduler {
 public:
  using Scheduler::decide_into;

  std::string name() const override { return "srpt"; }
  bool needs_arrival_lane() const override { return false; }
  void decide_into(PortId n_ports, const CandidateView& candidates,
                   Decision& out) override;

 private:
  matching::GreedyMatcher matcher_;
};

}  // namespace basrpt::sched
