#include "sched/fast_basrpt.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "matching/greedy.hpp"

namespace basrpt::sched {

FastBasrptScheduler::FastBasrptScheduler(double v) : v_(v) {
  BASRPT_REQUIRE(v >= 0.0, "BASRPT weight V must be non-negative");
}

std::string FastBasrptScheduler::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "fast-basrpt(V=%g)", v_);
  return buf;
}

Decision FastBasrptScheduler::decide(
    PortId n_ports, const std::vector<VoqCandidate>& candidates) {
  const double weight = v_ / static_cast<double>(n_ports);
  std::vector<matching::ScoredCandidate> scored;
  scored.reserve(candidates.size());
  for (const VoqCandidate& c : candidates) {
    // The per-VOQ SRPT representative also minimizes this key within its
    // VOQ (the backlog term is common to all the VOQ's flows).
    const double key = weight * c.shortest_remaining - c.backlog;
    scored.push_back({c.ingress, c.egress, key, c.shortest_flow});
  }
  auto greedy = matching::greedy_maximal(std::move(scored), n_ports, n_ports);
  return Decision{std::move(greedy.selected_payloads)};
}

}  // namespace basrpt::sched
