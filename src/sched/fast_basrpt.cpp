#include "sched/fast_basrpt.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace basrpt::sched {

FastBasrptScheduler::FastBasrptScheduler(double v) : v_(v) {
  BASRPT_REQUIRE(v >= 0.0, "BASRPT weight V must be non-negative");
}

std::string FastBasrptScheduler::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "fast-basrpt(V=%g)", v_);
  return buf;
}

void FastBasrptScheduler::decide_into(
    PortId n_ports, const std::vector<VoqCandidate>& candidates,
    Decision& out) {
  const double weight = v_ / static_cast<double>(n_ports);
  scored_.clear();
  scored_.reserve(candidates.size());
  for (const VoqCandidate& c : candidates) {
    // The per-VOQ SRPT representative also minimizes this key within its
    // VOQ (the backlog term is common to all the VOQ's flows).
    const double key = weight * c.shortest_remaining - c.backlog;
    scored_.push_back({c.ingress, c.egress, key, c.shortest_flow});
  }
  matcher_.match_into(scored_, n_ports, n_ports, out.selected);
}

}  // namespace basrpt::sched
