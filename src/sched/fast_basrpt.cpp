#include "sched/fast_basrpt.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "perf/profiler.hpp"
#include "simd/kernels.hpp"

namespace basrpt::sched {

FastBasrptScheduler::FastBasrptScheduler(double v) : v_(v) {
  BASRPT_REQUIRE(v >= 0.0, "BASRPT weight V must be non-negative");
}

std::string FastBasrptScheduler::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "fast-basrpt(V=%g)", v_);
  return buf;
}

void FastBasrptScheduler::decide_into(PortId n_ports,
                                      const CandidateView& candidates,
                                      Decision& out) {
  const double weight = v_ / static_cast<double>(n_ports);
  const std::size_t n = candidates.size();
  keys_.resize(n);
  {
    // The per-VOQ SRPT representative also minimizes this key within its
    // VOQ (the backlog term is common to all the VOQ's flows).
    perf::ScopedPhase phase(perf::Phase::kScoreKernel);
    simd::compute_keys(simd::KeyOp::kFastBasrpt, weight, 0.0,
                       candidates.shortest_remaining(), candidates.backlog(),
                       n, keys_.data());
  }
  matcher_.match_lanes_into(keys_.data(), candidates.ingress(),
                            candidates.egress(), candidates.shortest_flow(),
                            n, n_ports, n_ports, out.selected);
}

}  // namespace basrpt::sched
