// SoA candidate lanes — the decision-path data layout.
//
// fabric::CandidateCache maintains candidates as contiguous per-field
// lanes and hands schedulers a CandidateView: a non-owning set of lane
// pointers. The scoring kernels (src/simd) stream the lanes directly —
// no per-decision AoS repack, and the SRPT key lane IS the
// shortest_remaining lane, copied nowhere.
//
// The arrival lanes (oldest_flow / oldest_arrival — the per-VOQ FIFO
// representative) are optional: maintaining them costs an ordered-index
// probe plus a flow-table lookup per VOQ and only FIFO reads them.
// Presence is a property of the view, not a side-channel flag: a
// scheduler that asks for an absent lane gets a ConfigError, never
// silent zeros.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "queueing/flow.hpp"

namespace basrpt::sched {

using queueing::FlowId;
using queueing::PortId;

/// Per-VOQ summary in AoS form. build_candidates() still produces this —
/// it is the reference implementation and the differential-test oracle
/// for the SoA cache. Sizes and backlogs are in *packets* (the model's
/// unit; the flow-level simulator divides bytes by its packet size) so
/// the paper's V values carry over unchanged.
struct VoqCandidate {
  PortId ingress = 0;
  PortId egress = 0;
  double backlog = 0.0;             // total VOQ backlog X_ij, packets
  std::size_t flow_count = 0;       // flows queued in this VOQ
  FlowId shortest_flow = queueing::kInvalidFlow;
  double shortest_remaining = 0.0;  // packets
  double shortest_arrival = 0.0;    // arrival time of that flow, seconds
  FlowId oldest_flow = queueing::kInvalidFlow;
  double oldest_arrival = 0.0;      // seconds
};

class CandidateSoA;

/// Non-owning lane pointers over `size()` candidates, one per non-empty
/// VOQ. Obtained from CandidateSoA::view() (or CandidateCache::refresh(),
/// which wraps one). Valid until the backing storage is mutated.
class CandidateView {
 public:
  CandidateView() = default;

  /// Adapts an AoS candidate list by repacking it into `storage` (the
  /// deprecated-shim and differential-test path; hot paths get a view
  /// straight from the cache). The returned view borrows `storage`.
  static CandidateView from_aos(const std::vector<VoqCandidate>& aos,
                                CandidateSoA& storage,
                                bool with_arrival = true);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const PortId* ingress() const { return ingress_; }
  const PortId* egress() const { return egress_; }
  const double* backlog() const { return backlog_; }
  const std::uint32_t* flow_count() const { return flow_count_; }
  const FlowId* shortest_flow() const { return shortest_flow_; }
  const double* shortest_remaining() const { return shortest_remaining_; }
  const double* shortest_arrival() const { return shortest_arrival_; }

  bool has_arrival_lane() const { return oldest_flow_ != nullptr; }
  /// Throw ConfigError when the arrival lanes were not built — the
  /// builder was configured for a scheduler that does not need them.
  const FlowId* oldest_flow() const;
  const double* oldest_arrival() const;

 private:
  friend class CandidateSoA;

  std::size_t size_ = 0;
  const PortId* ingress_ = nullptr;
  const PortId* egress_ = nullptr;
  const double* backlog_ = nullptr;
  const std::uint32_t* flow_count_ = nullptr;
  const FlowId* shortest_flow_ = nullptr;
  const double* shortest_remaining_ = nullptr;
  const double* shortest_arrival_ = nullptr;
  const FlowId* oldest_flow_ = nullptr;      // null when lane absent
  const double* oldest_arrival_ = nullptr;   // null when lane absent
};

/// Owning lane storage. Lanes are public so builders (the cache's
/// vectorized repack, tests) write them in place; view() validates that
/// every present lane has the same length before handing out pointers.
class CandidateSoA {
 public:
  std::vector<PortId> ingress;
  std::vector<PortId> egress;
  std::vector<double> backlog;
  std::vector<std::uint32_t> flow_count;
  std::vector<FlowId> shortest_flow;
  std::vector<double> shortest_remaining;
  std::vector<double> shortest_arrival;
  std::vector<FlowId> oldest_flow;     // empty when with_arrival is false
  std::vector<double> oldest_arrival;  // empty when with_arrival is false

  /// Whether the arrival lanes are part of this storage's lane set.
  bool with_arrival = true;

  void clear();

  /// Resizes every present lane to `n` (contents unspecified — builders
  /// overwrite them).
  void resize_lanes(std::size_t n);

  /// Transposes an AoS candidate list into the lanes.
  void assign_from_aos(const std::vector<VoqCandidate>& aos,
                       bool arrival = true);

  /// Copies another view's lanes (including arrival-lane presence).
  /// Decorators use this to mutate a lane before forwarding.
  void assign_from_view(const CandidateView& v);

  /// Validating accessor: throws ConfigError if any present lane's
  /// length disagrees (a builder bug or a fuzzer-mutated view).
  CandidateView view() const;
};

}  // namespace basrpt::sched
