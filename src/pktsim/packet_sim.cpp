#include "pktsim/packet_sim.hpp"

#include <cmath>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "fabric/flow_lifecycle.hpp"
#include "fault/auditor.hpp"
#include "obs/metrics.hpp"

namespace basrpt::pktsim {

namespace {

using FlowId = std::int64_t;

struct FlowState {
  FlowId id;
  PortId src;
  PortId dst;
  Bytes size;
  Bytes to_send;     // bytes not yet transmitted by the sender NIC
  Bytes to_deliver;  // bytes not yet drained at the egress
  SimTime arrival;
  stats::FlowClass cls;
};

/// One packet in flight or parked at an egress queue. The priority key
/// is stamped at send time — the pFabric "priority in the header" model.
struct Packet {
  double key;
  FlowId flow;
  std::int64_t seq;
  Bytes bytes;

  bool operator<(const Packet& other) const {
    if (key != other.key) {
      return key < other.key;
    }
    if (flow != other.flow) {
      return flow < other.flow;
    }
    return seq < other.seq;
  }
};

class Engine {
 public:
  Engine(const PacketSimConfig& config, workload::TrafficSource& traffic)
      : config_(config),
        traffic_(traffic),
        lifecycle_(/*voqs=*/nullptr, result_.fct, config.tracer) {
    BASRPT_REQUIRE(config.hosts >= 2, "need at least two hosts");
    BASRPT_REQUIRE(config.packet.count >= 1, "packet must be positive");
    BASRPT_REQUIRE(config.horizon.seconds > 0.0, "horizon must be positive");
    BASRPT_REQUIRE(config.host_link.bits_per_sec > 0.0,
                   "link rate must be positive");
    const auto n = static_cast<std::size_t>(config.hosts);
    sender_flows_.resize(n);
    sender_busy_.assign(n, false);
    sender_voq_bytes_.resize(n);
    for (auto& per_dst : sender_voq_bytes_) {
      per_dst.assign(n, 0);
    }
    egress_queue_.resize(n);
    egress_busy_.assign(n, false);
    if (config.fault_plan != nullptr && !config.fault_plan->empty()) {
      BASRPT_REQUIRE(config.fault_plan->max_port() < config.hosts,
                     "fault plan references a port outside the fabric");
      fault::FaultHooks hooks;
      hooks.on_port_factor = [this](std::int32_t port, double factor) {
        if (factor > 0.0) {
          // Recovery (or a degrade change): restart anything that went
          // idle while the port was dark.
          maybe_start_sender(static_cast<PortId>(port));
          maybe_start_egress(static_cast<PortId>(port));
        }
      };
      // Decision-loss and rearrival bursts model centralized-control
      // pathologies; this simulator has no central control to lose.
      injector_ = std::make_unique<fault::FaultInjector>(
          *config.fault_plan, config.hosts, std::move(hooks));
    }
  }

  PacketSimResult run() {
    if (config_.watchdog.enabled()) {
      watchdog_.configure(config_.watchdog);
      watchdog_.set_diagnostics([this]() {
        std::ostringstream os;
        os << "calendar depth=" << events_.pending()
           << ", active flows=" << flows_.size()
           << ", parked egress bytes=" << parked_bytes_
           << ", packets sent=" << result_.packets_sent;
        return os.str();
      });
      events_.set_watchdog(&watchdog_);
      if (injector_ != nullptr) {
        // Don't declare a stall while a scripted blackout legitimately
        // halts progress; the deadline restarts once the window closes.
        watchdog_.set_suppress_when(
            [this]() { return injector_->in_disruption(); });
      }
    }
    lifecycle_.begin_run();
    if (injector_ != nullptr) {
      schedule_next_fault();
    }
    schedule_next_arrival();
    sim::schedule_periodic(events_, SimTime{0.0}, config_.sample_every,
                           config_.horizon, [this](SimTime now) {
                             result_.egress_backlog.add(
                                 now, static_cast<double>(parked_bytes_));
                             if (config_.paranoid) {
                               audit_conservation(now);
                             }
                           });
    events_.run_until(config_.horizon);
    if (watchdog_.active() && obs::enabled()) {
      watchdog_.export_metrics(obs::Registry::active(), "pktsim");
    }
    result_.horizon = config_.horizon;
    result_.flows_arrived = lifecycle_.flows_arrived();
    result_.bytes_arrived = lifecycle_.bytes_arrived();
    result_.flows_completed = lifecycle_.flows_completed();
    if (injector_ != nullptr) {
      result_.fault_stats = injector_->stats();
    }
    return std::move(result_);
  }

 private:
  // ------------------------------------------------------------- auditing

  /// Exact conservation check (--paranoid): every admitted byte is either
  /// delivered or still owed to an active flow (in a sender queue, on the
  /// wire, or parked at an egress — all captured by `to_deliver`).
  void audit_conservation(SimTime now) {
    std::int64_t undelivered = 0;
    for (const auto& [id, flow] : flows_) {
      undelivered += flow.to_deliver.count;
    }
    fault::Ledger bytes;
    bytes.name = "bytes";
    bytes.credits = {{"bytes_arrived", lifecycle_.bytes_arrived().count}};
    bytes.debits = {{"delivered", result_.delivered.count},
                    {"undelivered_active", undelivered}};
    fault::Ledger flows;
    flows.name = "flows";
    flows.credits = {{"flows_arrived", lifecycle_.flows_arrived()}};
    flows.debits = {
        {"completed", lifecycle_.flows_completed()},
        {"active", static_cast<std::int64_t>(flows_.size())}};
    auditor_.audit(now.seconds, {bytes, flows});
  }

  // ---------------------------------------------------------------- faults

  void schedule_next_fault() {
    const double t = injector_->next_transition_after(events_.now().seconds);
    if (std::isfinite(t) && t <= config_.horizon.seconds) {
      events_.schedule_at(SimTime{t}, [this]() {
        injector_->advance_to(events_.now().seconds);
        schedule_next_fault();
      });
    }
  }

  /// Line rate of `host` under the current fault state (0 while dark).
  double effective_bps(PortId host) const {
    double bps = config_.host_link.bits_per_sec;
    if (injector_ != nullptr) {
      bps *= injector_->port_factor(host);
    }
    return bps;
  }

  void maybe_start_egress(PortId dst) {
    const auto i = static_cast<std::size_t>(dst);
    if (!egress_busy_[i] && !egress_queue_[i].empty()) {
      egress_busy_[i] = true;
      drain_next(dst);
    }
  }

  // ------------------------------------------------------------- arrivals

  void schedule_next_arrival() {
    auto arrival = traffic_.next();
    if (!arrival || arrival->time > config_.horizon) {
      return;
    }
    const workload::FlowArrival a = *arrival;
    BASRPT_ASSERT(a.src >= 0 && a.src < config_.hosts &&
                      a.dst >= 0 && a.dst < config_.hosts,
                  "arrival host out of range");
    events_.schedule_at(a.time, [this, a]() { on_arrival(a); });
  }

  void on_arrival(const workload::FlowArrival& a) {
    FlowState flow;
    flow.id = lifecycle_.admit({a.src, a.dst, a.size, a.time, a.cls});
    flow.src = a.src;
    flow.dst = a.dst;
    flow.size = a.size;
    flow.to_send = a.size;
    flow.to_deliver = a.size;
    flow.arrival = a.time;
    flow.cls = a.cls;
    flows_.emplace(flow.id, flow);
    sender_flows_[static_cast<std::size_t>(a.src)].push_back(flow.id);
    voq_bytes(a.src, a.dst) += a.size.count;

    schedule_next_arrival();
    maybe_start_sender(a.src);
  }

  // -------------------------------------------------------------- senders

  std::int64_t& voq_bytes(PortId src, PortId dst) {
    return sender_voq_bytes_[static_cast<std::size_t>(src)]
                            [static_cast<std::size_t>(dst)];
  }

  double sender_key(const FlowState& flow) const {
    const double pkt = static_cast<double>(config_.packet.count);
    switch (config_.policy) {
      case PacketPolicy::kSrpt:
        return static_cast<double>(flow.to_send.count) / pkt;
      case PacketPolicy::kFastBasrpt: {
        const double weight = config_.v / static_cast<double>(config_.hosts);
        const double backlog =
            static_cast<double>(
                sender_voq_bytes_[static_cast<std::size_t>(flow.src)]
                                 [static_cast<std::size_t>(flow.dst)]) /
            pkt;
        return weight * static_cast<double>(flow.to_send.count) / pkt -
               backlog;
      }
      case PacketPolicy::kFifo:
        return flow.arrival.seconds;
    }
    return 0.0;
  }

  void maybe_start_sender(PortId host) {
    if (!sender_busy_[static_cast<std::size_t>(host)]) {
      sender_busy_[static_cast<std::size_t>(host)] = true;
      transmit_next(host);
    }
  }

  /// Picks the locally best flow and puts one packet on the wire.
  void transmit_next(PortId host) {
    const double bps = effective_bps(host);
    if (bps <= 0.0) {
      // NIC dark (blackout): park; the recovery hook restarts us.
      sender_busy_[static_cast<std::size_t>(host)] = false;
      return;
    }
    auto& active = sender_flows_[static_cast<std::size_t>(host)];
    // Drop flows that finished sending (lazy cleanup). A fully-delivered
    // flow may already be gone from flows_ entirely.
    std::size_t kept = 0;
    for (const FlowId id : active) {
      const auto it = flows_.find(id);
      if (it != flows_.end() && it->second.to_send.count > 0) {
        active[kept++] = id;
      }
    }
    active.resize(kept);
    if (active.empty()) {
      sender_busy_[static_cast<std::size_t>(host)] = false;
      return;
    }

    FlowId best = active.front();
    double best_key = sender_key(flows_.at(best));
    for (std::size_t i = 1; i < active.size(); ++i) {
      const double key = sender_key(flows_.at(active[i]));
      if (key < best_key || (key == best_key && active[i] < best)) {
        best = active[i];
        best_key = key;
      }
    }

    FlowState& flow = flows_.at(best);
    lifecycle_.note_service(flow.id, flow.src, flow.dst,
                            events_.now().seconds, flow.size, flow.to_send);
    const Bytes chunk{std::min(config_.packet.count, flow.to_send.count)};
    flow.to_send -= chunk;
    voq_bytes(flow.src, flow.dst) -= chunk.count;
    ++result_.packets_sent;

    Packet packet;
    packet.key = best_key;
    packet.flow = best;
    packet.seq = result_.packets_sent;
    packet.bytes = chunk;

    // A degraded NIC serializes slower; the stretch is sampled at send
    // time (an in-flight packet keeps its serialization if the factor
    // changes mid-transmission, as real hardware would).
    const SimTime tx = transmission_time(chunk, Rate{bps});
    const SimTime arrival = events_.now() + tx + config_.fabric_delay;
    const PortId dst = flow.dst;
    events_.schedule_at(arrival, [this, packet, dst]() {
      on_packet_at_egress(dst, packet);
    });
    events_.schedule_at(events_.now() + tx,
                        [this, host]() { transmit_next(host); });
  }

  // -------------------------------------------------------------- egress

  void on_packet_at_egress(PortId dst, const Packet& packet) {
    egress_queue_[static_cast<std::size_t>(dst)].insert(packet);
    parked_bytes_ += packet.bytes.count;
    if (!egress_busy_[static_cast<std::size_t>(dst)]) {
      egress_busy_[static_cast<std::size_t>(dst)] = true;
      drain_next(dst);
    }
  }

  void drain_next(PortId dst) {
    auto& queue = egress_queue_[static_cast<std::size_t>(dst)];
    if (queue.empty()) {
      egress_busy_[static_cast<std::size_t>(dst)] = false;
      return;
    }
    const double bps = effective_bps(dst);
    if (bps <= 0.0) {
      // Egress dark: packets stay parked; the recovery hook restarts us.
      egress_busy_[static_cast<std::size_t>(dst)] = false;
      return;
    }
    const Packet packet = *queue.begin();
    queue.erase(queue.begin());
    parked_bytes_ -= packet.bytes.count;

    const SimTime tx = transmission_time(packet.bytes, Rate{bps});
    events_.schedule_at(events_.now() + tx, [this, packet, dst]() {
      deliver(packet);
      drain_next(dst);
    });
  }

  void deliver(const Packet& packet) {
    result_.delivered += packet.bytes;
    FlowState& flow = flows_.at(packet.flow);
    flow.to_deliver -= packet.bytes;
    BASRPT_ASSERT(flow.to_deliver.count >= 0, "over-delivered flow");
    if (flow.to_deliver.count == 0) {
      const SimTime ideal =
          transmission_time(flow.size, config_.host_link);
      lifecycle_.record_completion_with_ideal(
          flow.cls, flow.id, flow.src, flow.dst, flow.size,
          events_.now() - flow.arrival, ideal, events_.now().seconds);
      flows_.erase(packet.flow);
    }
  }

  PacketSimConfig config_;
  workload::TrafficSource& traffic_;
  sim::Engine events_;
  PacketSimResult result_;

  std::unordered_map<FlowId, FlowState> flows_;
  std::vector<std::vector<FlowId>> sender_flows_;   // per src host
  std::vector<bool> sender_busy_;
  std::vector<std::vector<std::int64_t>> sender_voq_bytes_;  // src x dst
  std::vector<std::multiset<Packet>> egress_queue_;  // per dst host
  std::vector<bool> egress_busy_;
  std::int64_t parked_bytes_ = 0;
  fabric::FlowLifecycle lifecycle_;
  std::unique_ptr<fault::FaultInjector> injector_;  // null = fault-free
  fault::Watchdog watchdog_;
  fault::InvariantAuditor auditor_{"pktsim"};
};

}  // namespace

PacketSimResult run_packet_sim(const PacketSimConfig& config,
                               workload::TrafficSource& traffic) {
  Engine engine(config, traffic);
  return engine.run();
}

}  // namespace basrpt::pktsim
