// Packet-granularity simulator: a decentralized, pFabric-style
// realization of the scheduling priorities.
//
// The paper's evaluation (and our flowsim) uses a *centralized*
// scheduler that recomputes a crossbar matching on every event — the
// idealization pFabric/PDQ approximate with per-packet priorities. This
// simulator runs the other end of that spectrum:
//
//   * every sender NIC transmits back-to-back packets at line rate,
//     always from its locally highest-priority flow (no coordination
//     between hosts);
//   * the fabric core is non-blocking (the big-switch assumption) and
//     adds a fixed traversal delay;
//   * each receiver drains at line rate from a priority queue of the
//     packets parked at its egress port — when several senders converge
//     on one receiver, the excess queues there, exactly where pFabric's
//     priority queues sit.
//
// Priorities are the same keys the centralized schedulers use: remaining
// flow size (SRPT / pFabric) or the fast-BASRPT key
// (V/N)·remaining − sender-local VOQ backlog. Comparing this simulator
// against flowsim (bench_packet_vs_flow) measures how much of the
// centralized matching's benefit a fully distributed, per-packet
// realization retains — and validates that the flow-level fluid model
// is not hiding packet-scale artifacts.
//
// Buffers are unbounded (no drops, no retransmissions): with per-port
// offered load below capacity the queues are stable, and priority
// dequeueing — not loss recovery — is what differentiates policies.
#pragma once

#include <cstdint>

#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/watchdog.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "stats/fct.hpp"
#include "stats/timeseries.hpp"
#include "workload/traffic.hpp"

namespace basrpt::pktsim {

using PortId = workload::PortId;

/// Local priority policy used independently by every sender and every
/// egress queue.
enum class PacketPolicy {
  kSrpt,        // key = remaining size (pFabric)
  kFastBasrpt,  // key = (V/N)*remaining - sender VOQ backlog
  kFifo,        // key = arrival time
};

struct PacketSimConfig {
  std::int32_t hosts = 8;
  Rate host_link = gbps(10.0);
  Bytes packet = Bytes{1500};
  SimTime fabric_delay = microseconds(2.0);  // core traversal, fixed
  PacketPolicy policy = PacketPolicy::kSrpt;
  double v = 400.0;  // fast-BASRPT weight (packets)
  SimTime horizon = seconds(0.1);
  SimTime sample_every = milliseconds(1.0);
  /// Optional flow-lifecycle tracer (arrival / first-service /
  /// completion; there are no preemptions in the per-packet model — a
  /// lower-priority flow simply waits). Purely passive; null disables.
  obs::FlowTracer* tracer = nullptr;
  /// Fault schedule in seconds (non-owning; must outlive the run).
  /// Degrades stretch packet serialization at the affected host's NIC
  /// and egress drain; blackouts pause them until recovery. The
  /// centralized-control faults (drop-decisions, rearrive) have no
  /// meaning in this decentralized model and are ignored. Null/empty
  /// plan is pay-for-use.
  const fault::FaultPlan* fault_plan = nullptr;
  /// No-progress stall watchdog; default-disabled.
  fault::WatchdogConfig watchdog{};
  /// Conservation auditing at every sampling instant (--paranoid):
  /// admitted bytes must equal delivered + undelivered remainders of the
  /// active flows, or the run aborts with fault::InvariantError.
  bool paranoid = false;
};

struct PacketSimResult {
  stats::FctAggregator fct;
  stats::TimeSeries egress_backlog;  // total bytes parked at egresses
  Bytes delivered{};
  Bytes bytes_arrived{};
  std::int64_t flows_arrived = 0;
  std::int64_t flows_completed = 0;
  std::int64_t packets_sent = 0;
  SimTime horizon{};
  fault::FaultStats fault_stats;  // zeros when no plan was attached

  Rate throughput() const {
    return Rate{static_cast<double>(delivered.count) * 8.0 /
                horizon.seconds};
  }
};

/// Runs the packet simulation; `traffic` uses host ids < config.hosts.
PacketSimResult run_packet_sim(const PacketSimConfig& config,
                               workload::TrafficSource& traffic);

}  // namespace basrpt::pktsim
