#include "sim/engine.hpp"

#include <chrono>
#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "common/interrupt.hpp"
#include "obs/metrics.hpp"
#include "perf/profiler.hpp"

namespace basrpt::sim {

EventId Engine::schedule_at(SimTime t, EventFn fn) {
  BASRPT_ASSERT(t >= now_, "cannot schedule an event in the past");
  BASRPT_ASSERT(static_cast<bool>(fn), "event callback must be set");
  const EventId id = next_id_++;
  {
    const perf::ScopedPhase phase(perf::Phase::kCalendarPush);
    calendar_.push(t, id, std::move(fn));
  }
  if (calendar_.size() > peak_pending_) {
    peak_pending_ = calendar_.size();
  }
  return id;
}

EventId Engine::schedule_in(SimTime delay, EventFn fn) {
  BASRPT_ASSERT(delay.seconds >= 0.0, "delay cannot be negative");
  return schedule_at(now_ + delay, std::move(fn));
}

std::uint64_t Engine::run_until(SimTime horizon) {
  // Observability is passive: the timer and heartbeat only *read* state,
  // and neither can reorder events or touch callers' RNGs.
  obs::ScopedTimer chunk_timer(
      obs::Registry::active().histogram("sim.run_chunk_ns"));
  std::uint64_t ran = 0;
  while (!calendar_.empty() && calendar_.min_time() <= horizon) {
    step();
    ++ran;
    heartbeat_.tick(now_.seconds, executed_);
    if (watchdog_ != nullptr) {
      watchdog_->tick(now_.seconds, executed_);
    }
    // Cooperative interruption (SIGINT/SIGTERM under a ckpt::SignalGuard):
    // surface at an event boundary, where caller state is consistent
    // enough to checkpoint. One relaxed load every 64 events; nothing
    // ever sets the flag unless a guard is installed.
    if ((executed_ & 63u) == 0 && interrupt_requested()) {
      throw InterruptedError(interrupt_signal());
    }
  }
  // Advance the clock to the horizon even if the calendar drained early,
  // so metrics normalized by now() see the full window.
  if (now_ < horizon) {
    now_ = horizon;
  }
  heartbeat_.flush(now_.seconds, executed_);
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::active();
    reg.counter("sim.events_executed").add(static_cast<std::int64_t>(ran));
    reg.gauge("sim.calendar_depth").set(static_cast<double>(pending()));
    reg.gauge("sim.calendar_peak").set(static_cast<double>(peak_pending_));
  }
  return ran;
}

void Engine::set_watchdog(fault::Watchdog* wd) {
  watchdog_ = (wd != nullptr && wd->active()) ? wd : nullptr;
  if (watchdog_ != nullptr) {
    heartbeat_.set_augment([this](obs::HeartbeatStatus& status) {
      status.stall_checks = watchdog_->checks();
      status.stall_frozen_events = watchdog_->frozen_events();
      status.stall_frozen_wall_sec = watchdog_->frozen_wall_sec();
    });
  } else {
    heartbeat_.set_augment(nullptr);
  }
}

bool Engine::step() {
  if (calendar_.empty()) {
    return false;
  }
  // The ladder queue pops by move, so the callback (and any move-only
  // state it owns) transfers out without a copy or an allocation.
  LadderQueue::Entry entry = [this] {
    const perf::ScopedPhase phase(perf::Phase::kCalendarPop);
    return calendar_.pop_min();
  }();
  BASRPT_ASSERT(entry.t >= now_, "event queue produced an event in the past");
  now_ = entry.t;
  ++executed_;
  {
    const perf::ScopedPhase phase(perf::Phase::kEventDispatch);
    entry.fn();
  }
  return true;
}

void schedule_periodic(Engine& engine, SimTime start, SimTime interval,
                       SimTime horizon, std::function<void(SimTime)> callback) {
  BASRPT_REQUIRE(interval.seconds > 0.0, "sampling interval must be positive");
  if (start > horizon) {
    return;
  }
  // Self-rescheduling closure. The calendar entries own the function
  // object via shared_ptr; the closure itself only holds a weak_ptr, so
  // there is no ownership cycle and the chain is freed once the last
  // scheduled tick runs (or the calendar is destroyed).
  auto tick = std::make_shared<std::function<void()>>();
  auto cb = std::make_shared<std::function<void(SimTime)>>(std::move(callback));
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [&engine, interval, horizon, weak_tick, cb]() {
    (*cb)(engine.now());
    const SimTime next = engine.now() + interval;
    auto self = weak_tick.lock();
    if (next <= horizon && self != nullptr) {
      engine.schedule_at(next, [self] { (*self)(); });
    }
  };
  engine.schedule_at(start, [tick] { (*tick)(); });
}

}  // namespace basrpt::sim
