#include "sim/engine.hpp"

#include <memory>
#include <utility>

#include "common/assert.hpp"

namespace basrpt::sim {

EventId Engine::schedule_at(SimTime t, EventFn fn) {
  BASRPT_ASSERT(t >= now_, "cannot schedule an event in the past");
  BASRPT_ASSERT(fn != nullptr, "event callback must be set");
  const EventId id = next_id_++;
  calendar_.push(Entry{t, id, std::move(fn)});
  return id;
}

EventId Engine::schedule_in(SimTime delay, EventFn fn) {
  BASRPT_ASSERT(delay.seconds >= 0.0, "delay cannot be negative");
  return schedule_at(now_ + delay, std::move(fn));
}

std::uint64_t Engine::run_until(SimTime horizon) {
  std::uint64_t ran = 0;
  while (!calendar_.empty() && calendar_.top().t <= horizon) {
    step();
    ++ran;
  }
  // Advance the clock to the horizon even if the calendar drained early,
  // so metrics normalized by now() see the full window.
  if (now_ < horizon) {
    now_ = horizon;
  }
  return ran;
}

bool Engine::step() {
  if (calendar_.empty()) {
    return false;
  }
  // priority_queue::top() is const; move out via const_cast on the
  // callback only (the entry is popped immediately after).
  Entry entry = calendar_.top();
  calendar_.pop();
  BASRPT_ASSERT(entry.t >= now_, "event queue produced an event in the past");
  now_ = entry.t;
  ++executed_;
  entry.fn();
  return true;
}

void schedule_periodic(Engine& engine, SimTime start, SimTime interval,
                       SimTime horizon, std::function<void(SimTime)> callback) {
  BASRPT_REQUIRE(interval.seconds > 0.0, "sampling interval must be positive");
  if (start > horizon) {
    return;
  }
  // Self-rescheduling closure; shared_ptr breaks the lifetime knot of a
  // lambda that must reference itself.
  auto tick = std::make_shared<std::function<void()>>();
  auto cb = std::make_shared<std::function<void(SimTime)>>(std::move(callback));
  *tick = [&engine, interval, horizon, tick, cb]() {
    (*cb)(engine.now());
    const SimTime next = engine.now() + interval;
    if (next <= horizon) {
      engine.schedule_at(next, *tick);
    }
  };
  engine.schedule_at(start, *tick);
}

}  // namespace basrpt::sim
