// Discrete-event simulation engine.
//
// A single-threaded calendar of timestamped callbacks. Events scheduled
// for the same instant fire in scheduling order (stable tie-break via a
// sequence number) — determinism matters because scheduler comparisons
// (SRPT vs BASRPT) must see identical arrival sequences.
//
// Preemptive simulators (flowsim) reschedule "next completion" events
// constantly; rather than supporting O(log n) cancellation the engine
// hands out monotonically increasing EventIds and callers drop stale
// wakeups by comparing against their own latest id (the standard
// lazy-invalidation idiom).
//
// The calendar is a two-tier ladder queue (sim/ladder_queue.hpp) and
// callbacks are move-only EventFns with 64 bytes of inline storage
// (sim/event_fn.hpp): scheduling and dispatching an event allocates
// nothing for every closure the simulators create, and pops move the
// callback out instead of copying it.
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.hpp"
#include "fault/watchdog.hpp"
#include "obs/heartbeat.hpp"
#include "sim/event_fn.hpp"
#include "sim/ladder_queue.hpp"

namespace basrpt::sim {

class Engine {
 public:
  Engine() = default;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). Returns the event id.
  EventId schedule_at(SimTime t, EventFn fn);

  /// Schedules `fn` after `delay` from now.
  EventId schedule_in(SimTime delay, EventFn fn);

  /// Runs events until the calendar empties or `horizon` is passed.
  /// Events at exactly `horizon` still fire. Returns the number of
  /// events executed.
  std::uint64_t run_until(SimTime horizon);

  /// Executes the single next event; returns false if calendar is empty.
  bool step();

  bool empty() const { return calendar_.empty(); }
  std::size_t pending() const { return calendar_.size(); }
  std::uint64_t executed() const { return executed_; }
  /// High-water mark of the calendar — how deep the event heap ever got.
  std::size_t peak_pending() const { return peak_pending_; }

  /// Enables a wall-clock heartbeat during run_until: every
  /// `wall_interval_sec` of real time, `fn` (default: an INFO log line)
  /// receives sim-time progress and the event rate. `<= 0` disables.
  void set_heartbeat(double wall_interval_sec,
                     obs::Heartbeat::ReportFn fn = nullptr) {
    heartbeat_.configure(wall_interval_sec, std::move(fn));
  }

  /// Arms a no-progress stall watchdog for run_until: the watchdog is
  /// ticked once per event and throws fault::StallError when simulated
  /// time stops advancing (see fault::Watchdog). Non-owning — `wd` must
  /// outlive the run; null or inactive disarms. While armed, heartbeat
  /// beats carry the watchdog's stall counters.
  void set_watchdog(fault::Watchdog* wd);

 private:
  SimTime now_{};
  EventId next_id_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t peak_pending_ = 0;
  obs::Heartbeat heartbeat_;
  fault::Watchdog* watchdog_ = nullptr;  // non-owning; null = disarmed
  LadderQueue calendar_;
};

/// Invokes a callback every `interval` until `horizon` (inclusive of the
/// first tick at `start`). Used for queue-length sampling.
void schedule_periodic(Engine& engine, SimTime start, SimTime interval,
                       SimTime horizon,
                       std::function<void(SimTime)> callback);

}  // namespace basrpt::sim
