#include "sim/ladder_queue.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace basrpt::sim {

namespace {
/// (e.t, e.id) > (t, id) — the descending-order predicate for bottom_.
bool entry_greater(const LadderQueue::Entry& e, SimTime t, EventId id) {
  if (e.t.seconds != t.seconds) {
    return t < e.t;
  }
  return id < e.id;
}
}  // namespace

void LadderQueue::push(SimTime t, EventId id, EventFn fn) {
  if (below_boundary(t, id)) {
    // Near-future event: keep bottom_ sorted (descending) with a
    // bounded memmove insert. Binary search over (t, id) directly so no
    // probe Entry has to be constructed.
    std::size_t lo = 0;
    std::size_t hi = bottom_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (entry_greater(bottom_[mid], t, id)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    bottom_.insert(bottom_.begin() + static_cast<std::ptrdiff_t>(lo),
                   Entry{t, id, std::move(fn)});
  } else {
    far_.push_back(Entry{t, id, std::move(fn)});
  }
}

SimTime LadderQueue::min_time() {
  BASRPT_ASSERT(!empty(), "min_time() on an empty calendar");
  if (bottom_.empty()) {
    refill();
  }
  return bottom_.back().t;
}

LadderQueue::Entry LadderQueue::pop_min() {
  BASRPT_ASSERT(!empty(), "pop_min() on an empty calendar");
  if (bottom_.empty()) {
    refill();
  }
  Entry e = std::move(bottom_.back());
  bottom_.pop_back();
  return e;
}

void LadderQueue::refill() {
  BASRPT_ASSERT(!far_.empty(), "refill with no spilled events");
  // Promote the K smallest far_ entries. Taking a quarter amortizes the
  // O(|far|) selection across K subsequent pops; small backlogs are
  // taken whole so the boundary advances past everything pending.
  std::size_t k = far_.size() / 4;
  if (k < kMinRefill) {
    k = kMinRefill;
  }
  if (k * 2 >= far_.size()) {
    k = far_.size();
  }

  if (k < far_.size()) {
    std::nth_element(far_.begin(),
                     far_.begin() + static_cast<std::ptrdiff_t>(k),
                     far_.end(), before);
    // far_[k] is the minimum of what stays behind: the new boundary.
    boundary_t_ = far_[k].t;
    boundary_id_ = far_[k].id;
    bottom_.reserve(bottom_.size() + k);
    for (std::size_t i = 0; i < k; ++i) {
      bottom_.push_back(std::move(far_[i]));
    }
    far_.erase(far_.begin(), far_.begin() + static_cast<std::ptrdiff_t>(k));
  } else {
    bottom_.reserve(bottom_.size() + far_.size());
    for (Entry& e : far_) {
      bottom_.push_back(std::move(e));
    }
    far_.clear();
  }
  // Sort descending by (t, id): min at the back, pop is pop_back().
  std::sort(bottom_.begin(), bottom_.end(),
            [](const Entry& a, const Entry& b) { return before(b, a); });
  if (k == bottom_.size() && far_.empty()) {
    // Everything pending is now in bottom_; park the boundary just past
    // the maximum so newly scheduled events spill to far_ again (pushes
    // below it still sort into bottom_ correctly).
    boundary_t_ = bottom_.front().t;
    boundary_id_ = bottom_.front().id + 1;
  }
}

}  // namespace basrpt::sim
