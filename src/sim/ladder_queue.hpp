// Two-tier ladder / calendar queue for the event engine.
//
// The engine's calendar used to be a std::priority_queue binary heap;
// every push/pop sifted O(log n) Entry objects around, and because
// top() is const the callback had to be *copied* out on every pop.
// This structure replaces it with two contiguous tiers:
//
//   * bottom_ — a small vector kept sorted DESCENDING by (t, id), so
//     the global minimum is bottom_.back(): pop is a move + pop_back,
//     and near-future pushes are a bounded memmove insert;
//   * far_ — an unsorted spill vector for everything at or beyond the
//     boundary_ (t, id) threshold: push is an O(1) push_back, which is
//     the common case since simulators schedule into the future.
//
// Invariant: every far_ entry is >= boundary_ and every bottom_ entry
// is < boundary_. When bottom_ drains, a refill selects the K smallest
// far_ entries with nth_element (O(|far|)), sorts just those, and
// advances boundary_ to the smallest entry left behind — so sorting
// work is incremental and amortized O(log n)-ish per event, but over
// flat arrays instead of a pointer-chasing heap.
//
// Pop order is bit-identical to the heap's: strictly ascending (t, id),
// and EventIds are unique (the engine allocates them monotonically), so
// (t, id) is a strict total order — same-timestamp events fire in
// scheduling order, the engine's determinism contract. Differential
// tests pin this against a reference binary heap (tests/test_sim.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "sim/event_fn.hpp"

namespace basrpt::sim {

using EventId = std::uint64_t;

class LadderQueue {
 public:
  struct Entry {
    SimTime t;
    EventId id;
    EventFn fn;
  };

  bool empty() const { return bottom_.empty() && far_.empty(); }
  std::size_t size() const { return bottom_.size() + far_.size(); }

  void push(SimTime t, EventId id, EventFn fn);

  /// Time of the earliest event. Requires non-empty; may promote far_
  /// entries into bottom_ (the set of pending events is unchanged).
  SimTime min_time();

  /// Removes and returns the earliest event (ascending (t, id) order).
  Entry pop_min();

 private:
  // Refill size floor: sorting fewer than this per refill wastes the
  // O(|far|) selection pass that each refill costs.
  static constexpr std::size_t kMinRefill = 64;

  static bool before(const Entry& a, const Entry& b) {
    if (a.t.seconds != b.t.seconds) {
      return a.t < b.t;
    }
    return a.id < b.id;
  }
  bool below_boundary(SimTime t, EventId id) const {
    if (t.seconds != boundary_t_.seconds) {
      return t < boundary_t_;
    }
    return id < boundary_id_;
  }

  void refill();

  std::vector<Entry> bottom_;  // sorted descending; back() is the min
  std::vector<Entry> far_;     // unsorted; all >= (boundary_t_, boundary_id_)
  SimTime boundary_t_{0.0};
  EventId boundary_id_ = 0;  // boundary starts at (0, 0): empty bottom tier
};

}  // namespace basrpt::sim
