// Move-only callback type for the event calendar.
//
// std::function<void()> forced two allocations per simulated event on
// the hot path: its small-buffer is ~16 bytes, and the simulators'
// event captures (an arrival record + this, a completion generation +
// target) are 24-40 bytes, so every schedule heap-allocated the
// closure — and because priority_queue::top() is const, every pop
// *copied* it, allocating again. EventFn fixes both: a 64-byte inline
// buffer absorbs every closure the simulators create, and the type is
// move-only, so the calendar can hand closures out without copies (and
// closures may own move-only state such as unique_ptr).
//
// Callables larger than the inline buffer fall back to one heap
// allocation (pktsim's packet-carrying closures); the dispatch is a
// two-pointer vtable (invoke + move-destroy), one indirect call each.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace basrpt::sim {

class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at every schedule_at call site
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      relocate_ = [](void* dst, void* src) noexcept {
        Fn* from = static_cast<Fn*>(src);
        if (dst != nullptr) {
          ::new (dst) Fn(std::move(*from));
        }
        from->~Fn();
      };
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* p) { (**static_cast<Fn**>(p))(); };
      relocate_ = [](void* dst, void* src) noexcept {
        Fn** from = static_cast<Fn**>(src);
        if (dst != nullptr) {
          ::new (dst) Fn*(*from);
        } else {
          delete *from;
        }
      };
    }
  }

  EventFn(EventFn&& other) noexcept { steal(std::move(other)); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(std::move(other));
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

 private:
  using InvokeFn = void (*)(void*);
  /// Move-constructs the callable into `dst` (or just destroys it when
  /// `dst` is null), then tears down the source.
  using RelocateFn = void (*)(void* dst, void* src) noexcept;

  void steal(EventFn&& other) noexcept {
    if (other.invoke_ != nullptr) {
      invoke_ = other.invoke_;
      relocate_ = other.relocate_;
      relocate_(buf_, other.buf_);
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
    }
  }

  void reset() noexcept {
    if (invoke_ != nullptr) {
      relocate_(nullptr, buf_);
      invoke_ = nullptr;
      relocate_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  InvokeFn invoke_ = nullptr;
  RelocateFn relocate_ = nullptr;
};

}  // namespace basrpt::sim
