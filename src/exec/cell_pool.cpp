#include "exec/cell_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdarg>
#include <cstdio>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/heartbeat.hpp"

namespace basrpt::exec {

namespace {

/// Progress counters of the (single) running pool. The runner is not
/// reentrant — sweeps do not nest — so one global set suffices; the
/// heartbeat note reads these from worker threads.
struct StatusCounters {
  std::atomic<std::size_t> cells{0};
  std::atomic<std::size_t> committed{0};
  std::atomic<std::size_t> started{0};
  std::atomic<std::size_t> finished{0};
  std::atomic<bool> active{false};
};
StatusCounters g_status;

std::mutex& progress_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

int resolve_jobs(int jobs) {
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }
  return jobs > 1 ? jobs : 1;
}

PoolStatus pool_status() {
  PoolStatus s;
  s.active = g_status.active.load(std::memory_order_relaxed);
  if (!s.active) {
    return s;
  }
  s.cells = g_status.cells.load(std::memory_order_relaxed);
  s.committed = g_status.committed.load(std::memory_order_relaxed);
  const std::size_t started = g_status.started.load(std::memory_order_relaxed);
  const std::size_t finished =
      g_status.finished.load(std::memory_order_relaxed);
  s.in_flight = started > finished ? started - finished : 0;
  return s;
}

void progress(const char* format, ...) {
  std::va_list args;
  va_start(args, format);
  char buf[512];
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  const std::lock_guard<std::mutex> lock(progress_mutex());
  std::fputs(buf, stderr);
}

CellPool::CellPool(int jobs) : jobs_(resolve_jobs(jobs)) {}

void CellPool::run(std::size_t count,
                   const std::function<void(std::size_t)>& task,
                   const std::function<void(std::size_t)>& commit) {
  if (count == 0) {
    return;
  }
  if (jobs_ <= 1 || count == 1) {
    // The sequential path is exactly the pre-parallel bench loop:
    // compute one cell, commit it, move on. No threads, no shards.
    for (std::size_t i = 0; i < count; ++i) {
      task(i);
      commit(i);
    }
    return;
  }

  struct Slot {
    bool done = false;
    std::exception_ptr error;
  };
  std::vector<Slot> slots(count);
  std::mutex mutex;
  std::condition_variable done_cv;
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> cancel{false};

  g_status.cells.store(count, std::memory_order_relaxed);
  g_status.committed.store(0, std::memory_order_relaxed);
  g_status.started.store(0, std::memory_order_relaxed);
  g_status.finished.store(0, std::memory_order_relaxed);
  g_status.active.store(true, std::memory_order_relaxed);
  obs::HeartbeatNoteFn previous_note = obs::set_heartbeat_note([] {
    const PoolStatus s = pool_status();
    if (!s.active) {
      return std::string();
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf), "cells %zu/%zu committed, %zu in flight",
                  s.committed, s.cells, s.in_flight);
    return std::string(buf);
  });

  auto worker = [&] {
    for (;;) {
      if (cancel.load(std::memory_order_relaxed)) {
        return;
      }
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      g_status.started.fetch_add(1, std::memory_order_relaxed);
      std::exception_ptr error;
      try {
        task(i);
      } catch (...) {
        error = std::current_exception();
      }
      g_status.finished.fetch_add(1, std::memory_order_relaxed);
      {
        const std::lock_guard<std::mutex> lock(mutex);
        slots[i].done = true;
        slots[i].error = error;
      }
      done_cv.notify_all();
    }
  };

  const std::size_t n_workers =
      count < static_cast<std::size_t>(jobs_) ? count
                                              : static_cast<std::size_t>(jobs_);
  std::vector<std::thread> workers;
  workers.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    workers.emplace_back(worker);
  }

  // Commit frontier: strictly in submission order, on this thread. On
  // the first failing index, cells before it are already committed;
  // everything at or after it is cancelled and *its* exception — the
  // lowest-index one, a deterministic choice — propagates.
  std::exception_ptr failure;
  for (std::size_t i = 0; i < count; ++i) {
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(mutex);
      done_cv.wait(lock, [&] { return slots[i].done; });
      error = slots[i].error;
    }
    if (error == nullptr) {
      try {
        commit(i);
        g_status.committed.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        error = std::current_exception();
      }
    }
    if (error != nullptr) {
      failure = error;
      break;
    }
  }

  if (failure != nullptr) {
    cancel.store(true, std::memory_order_relaxed);
  }
  for (std::thread& t : workers) {
    t.join();
  }
  obs::set_heartbeat_note(std::move(previous_note));
  g_status.active.store(false, std::memory_order_relaxed);
  if (failure != nullptr) {
    std::rethrow_exception(failure);
  }
}

}  // namespace basrpt::exec
