#include "exec/cell_pool.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdarg>
#include <cstdio>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/heartbeat.hpp"

namespace basrpt::exec {

namespace {

/// Progress counters of the (single) running pool. The runner is not
/// reentrant — sweeps do not nest — so one global set suffices; the
/// heartbeat note reads these from worker threads.
struct StatusCounters {
  std::atomic<std::size_t> cells{0};
  std::atomic<std::size_t> committed{0};
  std::atomic<std::size_t> started{0};
  std::atomic<std::size_t> finished{0};
  std::atomic<bool> active{false};
};
StatusCounters g_status;

/// Per-worker claimed-cell counters for the heartbeat note. Static and
/// bounded so the note lambda — which may run on the heartbeat thread
/// after a worker's stack frame is gone — never chases a dangling
/// pointer into run()'s locals. Workers beyond the bound still run;
/// only their note attribution folds into the last slot.
constexpr std::size_t kMaxNotedWorkers = 64;
std::array<std::atomic<std::uint64_t>, kMaxNotedWorkers> g_claimed{};
std::atomic<std::size_t> g_noted_workers{0};

std::size_t note_slot(std::size_t worker) {
  return worker < kMaxNotedWorkers ? worker : kMaxNotedWorkers - 1;
}

/// Profile of the last completed run; written by the commit thread
/// after workers join, so readers honouring the "read after run()
/// returns" contract see a quiescent value.
PoolPerf g_last_perf;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::mutex& progress_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

int resolve_jobs(int jobs) {
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }
  return jobs > 1 ? jobs : 1;
}

PoolStatus pool_status() {
  PoolStatus s;
  s.active = g_status.active.load(std::memory_order_relaxed);
  if (!s.active) {
    return s;
  }
  s.cells = g_status.cells.load(std::memory_order_relaxed);
  s.committed = g_status.committed.load(std::memory_order_relaxed);
  const std::size_t started = g_status.started.load(std::memory_order_relaxed);
  const std::size_t finished =
      g_status.finished.load(std::memory_order_relaxed);
  s.in_flight = started > finished ? started - finished : 0;
  return s;
}

double PoolPerf::busy_frac_mean() const {
  if (wall_ns == 0 || worker_busy_ns.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const std::uint64_t busy : worker_busy_ns) {
    sum += static_cast<double>(busy) / static_cast<double>(wall_ns);
  }
  return sum / static_cast<double>(worker_busy_ns.size());
}

PoolPerf last_pool_perf() { return g_last_perf; }

void progress(const char* format, ...) {
  std::va_list args;
  va_start(args, format);
  char buf[512];
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  const std::lock_guard<std::mutex> lock(progress_mutex());
  std::fputs(buf, stderr);
}

CellPool::CellPool(int jobs) : jobs_(resolve_jobs(jobs)) {}

void CellPool::run(std::size_t count,
                   const std::function<void(std::size_t)>& task,
                   const std::function<void(std::size_t)>& commit) {
  if (count == 0) {
    return;
  }
  if (jobs_ <= 1 || count == 1) {
    // The sequential path is exactly the pre-parallel bench loop:
    // compute one cell, commit it, move on. No threads, no shards.
    for (std::size_t i = 0; i < count; ++i) {
      task(i);
      commit(i);
    }
    return;
  }

  struct Slot {
    bool done = false;
    std::exception_ptr error;
  };
  std::vector<Slot> slots(count);
  std::mutex mutex;
  std::condition_variable done_cv;
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> cancel{false};

  const std::size_t n_workers =
      count < static_cast<std::size_t>(jobs_) ? count
                                              : static_cast<std::size_t>(jobs_);
  std::vector<std::uint64_t> busy_ns(n_workers, 0);
  std::vector<std::uint64_t> claimed(n_workers, 0);

  g_status.cells.store(count, std::memory_order_relaxed);
  g_status.committed.store(0, std::memory_order_relaxed);
  g_status.started.store(0, std::memory_order_relaxed);
  g_status.finished.store(0, std::memory_order_relaxed);
  const std::size_t noted =
      n_workers < kMaxNotedWorkers ? n_workers : kMaxNotedWorkers;
  for (std::size_t w = 0; w < noted; ++w) {
    g_claimed[w].store(0, std::memory_order_relaxed);
  }
  g_noted_workers.store(noted, std::memory_order_relaxed);
  g_status.active.store(true, std::memory_order_relaxed);
  obs::HeartbeatNoteFn previous_note = obs::set_heartbeat_note([] {
    const PoolStatus s = pool_status();
    if (!s.active) {
      return std::string();
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf), "cells %zu/%zu committed, %zu in flight",
                  s.committed, s.cells, s.in_flight);
    std::string note(buf);
    // Per-worker claimed-cell counts: a stuck worker shows up as one
    // count frozen while its siblings keep climbing.
    note += ", claimed [";
    const std::size_t n = g_noted_workers.load(std::memory_order_relaxed);
    for (std::size_t w = 0; w < n; ++w) {
      if (w > 0) {
        note += " ";
      }
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(
                        g_claimed[w].load(std::memory_order_relaxed)));
      note += buf;
    }
    note += "]";
    return note;
  });

  const std::uint64_t run_t0 = now_ns();
  auto worker = [&](std::size_t w) {
    for (;;) {
      if (cancel.load(std::memory_order_relaxed)) {
        return;
      }
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      ++claimed[w];
      g_claimed[note_slot(w)].fetch_add(1, std::memory_order_relaxed);
      g_status.started.fetch_add(1, std::memory_order_relaxed);
      std::exception_ptr error;
      const std::uint64_t t0 = now_ns();
      try {
        task(i);
      } catch (...) {
        error = std::current_exception();
      }
      busy_ns[w] += now_ns() - t0;
      g_status.finished.fetch_add(1, std::memory_order_relaxed);
      {
        const std::lock_guard<std::mutex> lock(mutex);
        slots[i].done = true;
        slots[i].error = error;
      }
      done_cv.notify_all();
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    workers.emplace_back(worker, w);
  }

  // Commit frontier: strictly in submission order, on this thread. On
  // the first failing index, cells before it are already committed;
  // everything at or after it is cancelled and *its* exception — the
  // lowest-index one, a deterministic choice — propagates.
  std::exception_ptr failure;
  std::uint64_t stall_ns = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::exception_ptr error;
    {
      const std::uint64_t wait_t0 = now_ns();
      std::unique_lock<std::mutex> lock(mutex);
      done_cv.wait(lock, [&] { return slots[i].done; });
      stall_ns += now_ns() - wait_t0;
      error = slots[i].error;
    }
    if (error == nullptr) {
      try {
        commit(i);
        g_status.committed.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        error = std::current_exception();
      }
    }
    if (error != nullptr) {
      failure = error;
      break;
    }
  }

  if (failure != nullptr) {
    cancel.store(true, std::memory_order_relaxed);
  }
  for (std::thread& t : workers) {
    t.join();
  }
  obs::set_heartbeat_note(std::move(previous_note));
  g_status.active.store(false, std::memory_order_relaxed);
  g_last_perf.wall_ns = now_ns() - run_t0;
  g_last_perf.commit_stall_ns = stall_ns;
  g_last_perf.worker_busy_ns = std::move(busy_ns);
  g_last_perf.worker_claimed = std::move(claimed);
  if (failure != nullptr) {
    std::rethrow_exception(failure);
  }
}

}  // namespace basrpt::exec
