#include "exec/sweep.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "exec/artifacts.hpp"
#include "exec/cell_pool.hpp"

namespace basrpt::exec {

std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                               std::uint64_t cell_index) {
  // Jump to the (index+1)-th point of the SplitMix64 sequence anchored
  // at the base seed, then mix once: equal bases with distinct indices
  // land on decorrelated streams, and index 0 never echoes the base.
  std::uint64_t state =
      base_seed + 0x9E3779B97F4A7C15ull * (cell_index + 1);
  return splitmix64(state);
}

Sweep& Sweep::add(std::string label, core::ExperimentConfig config,
                  std::function<void(const core::ExperimentResult&)> commit) {
  Cell cell;
  cell.kind = Cell::Kind::kExperiment;
  cell.label = std::move(label);
  cell.experiment = config;
  cell.on_experiment = std::move(commit);
  cells_.push_back(std::move(cell));
  return *this;
}

Sweep& Sweep::add_slotted(
    std::string label, switchsim::SlottedConfig config,
    std::function<sched::SchedulerPtr()> make_scheduler,
    std::function<switchsim::ArrivalStream()> make_stream,
    std::function<void(const switchsim::SlottedResult&)> commit) {
  Cell cell;
  cell.kind = Cell::Kind::kSlotted;
  cell.label = std::move(label);
  cell.slotted = std::move(config);
  cell.make_scheduler = std::move(make_scheduler);
  cell.make_stream = std::move(make_stream);
  cell.on_slotted = std::move(commit);
  cells_.push_back(std::move(cell));
  return *this;
}

CellOutput Sweep::compute(std::size_t i, obs::FlowTracer* cell_tracer) const {
  const Cell& cell = cells_[i];
  CellOutput out;
  if (cell.kind == Cell::Kind::kExperiment) {
    core::ExperimentConfig config = cell.experiment;
    if (cell_tracer != nullptr && config.tracer != nullptr) {
      config.tracer = cell_tracer;
    }
    out.experiment = core::run_experiment(config);
    return out;
  }
  switchsim::SlottedConfig config = cell.slotted;
  if (cell_tracer != nullptr && config.tracer != nullptr) {
    config.tracer = cell_tracer;
  }
  if (cell.resume_state) {
    config.resume_from = cell.resume_state.get();
  }
  sched::SchedulerPtr scheduler = cell.make_scheduler();
  BASRPT_REQUIRE(scheduler != nullptr, "slotted cell factory returned null");
  out.slotted = switchsim::run_slotted(config, *scheduler, cell.make_stream());
  return out;
}

void Sweep::commit(std::size_t i, const CellOutput& out) const {
  const Cell& cell = cells_[i];
  if (cell.kind == Cell::Kind::kExperiment) {
    if (cell.on_experiment) {
      cell.on_experiment(*out.experiment);
    }
    return;
  }
  if (cell.on_slotted) {
    cell.on_slotted(*out.slotted);
  }
}

void Sweep::run(int jobs, obs::FlowTracer* session_tracer) {
  CellPool pool(jobs);
  if (pool.jobs() <= 1 || size() <= 1) {
    for (std::size_t i = 0; i < size(); ++i) {
      commit(i, compute(i, nullptr));
    }
    return;
  }
  // Metrics always shard under parallelism: even with observability
  // disabled the simulators still *name* metrics in Registry::active()
  // (creating map nodes), so routing workers at global() would race.
  const bool shard_metrics = true;
  const bool shard_trace = session_tracer != nullptr;
  std::vector<std::unique_ptr<CellArtifacts>> artifacts(size());
  std::vector<std::optional<CellOutput>> outputs(size());
  pool.run(
      size(),
      [&](std::size_t i) {
        artifacts[i] =
            std::make_unique<CellArtifacts>(shard_metrics, shard_trace);
        obs::ScopedRegistryBind bind(artifacts[i]->registry());
        outputs[i] = compute(i, artifacts[i]->tracer());
      },
      [&](std::size_t i) {
        artifacts[i]->absorb(session_tracer);
        commit(i, *outputs[i]);
        outputs[i].reset();
        artifacts[i].reset();
      });
}

}  // namespace basrpt::exec
