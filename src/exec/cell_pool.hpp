// Deterministic parallel cell execution — the tentpole of the sweep
// runner (see docs/PARALLEL.md).
//
// CellPool runs N independent tasks on a fixed set of worker threads
// and commits their results on the *calling* thread in strict
// submission order. There is no work stealing and no reordering:
// workers claim task indices from a single atomic cursor (so claiming
// order equals submission order) and the caller walks a commit frontier
// index by index. Everything order-sensitive — result tables, CSV
// bytes, checkpoint sequence numbers, tracer merges, metric-shard
// folds — therefore happens in exactly the order a sequential run would
// produce, and the output is bit-identical at any job count.
//
// Failure semantics are deterministic too: if tasks or commits throw,
// the exception of the *lowest* failing index is rethrown after the
// cells before it have committed, regardless of which thread failed
// first in wall-clock terms. Remaining uncommitted work is cancelled
// (already-running tasks are drained, not interrupted — the simulators'
// cooperative interrupt flag handles SIGINT-style cancellation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace basrpt::exec {

/// --jobs semantics: 0 = hardware concurrency, otherwise the value
/// itself; the result is always at least 1.
int resolve_jobs(int jobs);

/// Progress snapshot of the currently running pool (all zeros /
/// inactive when no parallel run is in flight). Safe to call from any
/// thread; the heartbeat's cells-in-flight note reads it.
struct PoolStatus {
  std::size_t cells = 0;      // total cells in the running sweep
  std::size_t committed = 0;  // committed in submission order so far
  std::size_t in_flight = 0;  // tasks started but not yet finished
  bool active = false;
};
PoolStatus pool_status();

/// Timing profile of the most recent parallel run (empty after a
/// sequential run — the jobs<=1 path has no workers or frontier to
/// profile). Busy time is the wall-clock a worker spent inside task();
/// commit-frontier stall time is the wall-clock the calling thread
/// spent blocked waiting for the next in-order cell to finish. The
/// perf-suite bench reports busy fractions and stall fraction from
/// these.
struct PoolPerf {
  std::uint64_t wall_ns = 0;
  std::uint64_t commit_stall_ns = 0;
  std::vector<std::uint64_t> worker_busy_ns;  // one entry per worker
  std::vector<std::uint64_t> worker_claimed;  // cells claimed per worker

  std::size_t workers() const { return worker_busy_ns.size(); }
  /// Mean of per-worker busy_ns / wall_ns; 0 when nothing ran.
  double busy_frac_mean() const;
  double stall_frac() const {
    return wall_ns > 0 ? static_cast<double>(commit_stall_ns) /
                             static_cast<double>(wall_ns)
                       : 0.0;
  }
};
/// Snapshot of the last completed CellPool::run on this thread's pool.
/// Not thread-safe against a concurrently running pool; read it after
/// run() returns.
PoolPerf last_pool_perf();

/// Serialized printf-style progress line on stderr. Cell-completion
/// chatter ("load 0.8 done") goes through here so lines from the commit
/// thread never interleave with worker-side logging mid-line.
void progress(const char* format, ...) __attribute__((format(printf, 1, 2)));

class CellPool {
 public:
  /// `jobs` as passed on the command line (resolve_jobs applied).
  explicit CellPool(int jobs);

  int jobs() const { return jobs_; }

  /// Runs `task(i)` for i in [0, count) on the workers and `commit(i)`
  /// on the calling thread, in index order. With jobs() == 1 (or a
  /// single cell) no threads are spawned and task/commit strictly
  /// alternate — byte-identical to the pre-parallel code path. While a
  /// parallel run is active, a heartbeat note reporting cells-in-flight
  /// is installed (see obs::set_heartbeat_note).
  void run(std::size_t count, const std::function<void(std::size_t)>& task,
           const std::function<void(std::size_t)>& commit);

 private:
  int jobs_;
};

}  // namespace basrpt::exec
