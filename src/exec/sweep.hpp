// Declarative sweep API: an ordered list of independent simulation
// cells — flow-level experiments (core::run_experiment) or slotted
// switch runs (switchsim::run_slotted) — each with a commit callback
// that consumes its result in submission order.
//
// A bench declares its cells up front, then hands the Sweep to
// bench::RunSession::run_sweep (which layers checkpoint/resume and the
// --jobs flag on top) or to Sweep::run directly (tests, checkpoint-free
// callers). Cells must be independent: each one's config carries its
// own seed, and nothing a cell computes may feed another cell's
// *compute* (commit callbacks may chain state — they always run in
// order, on one thread).
//
// Seeding: benches that sweep a parameter usually run every cell at the
// same workload seed so curves are paired. Benches that want distinct
// per-cell streams derive them with derive_cell_seed, which feeds the
// cell index through SplitMix64 — cells get decorrelated seeds that
// depend only on (base seed, position), never on thread scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "switchsim/slotted_sim.hpp"

namespace basrpt::exec {

/// Deterministic per-cell seed: base seed and cell index through the
/// SplitMix64 mixer. Distinct indices give decorrelated streams; the
/// result depends only on the arguments, so any --jobs value sees the
/// same seeds.
std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                               std::uint64_t cell_index);

/// One sweep cell. Exactly one of the two kinds is populated.
struct Cell {
  enum class Kind { kExperiment, kSlotted };

  Kind kind = Kind::kExperiment;
  std::string label;  // checkpoint cell name; unique, order-stable

  // kExperiment
  core::ExperimentConfig experiment{};
  std::function<void(const core::ExperimentResult&)> on_experiment;

  // kSlotted. The factories run on the worker thread; they must build a
  // freshly seeded scheduler/stream per call (resume replays the stream
  // against the checkpointed pull count).
  switchsim::SlottedConfig slotted{};
  std::function<sched::SchedulerPtr()> make_scheduler;
  std::function<switchsim::ArrivalStream()> make_stream;
  std::function<void(const switchsim::SlottedResult&)> on_slotted;

  /// Mid-run resume state (set by the checkpoint layer, consumed by
  /// compute). Shared_ptr: the state must outlive the worker-side run.
  std::shared_ptr<switchsim::SlottedSimState> resume_state;
};

/// A computed cell's result, passed from worker to committer.
struct CellOutput {
  std::optional<core::ExperimentResult> experiment;
  std::optional<switchsim::SlottedResult> slotted;
};

class Sweep {
 public:
  /// Declares an experiment cell. `commit` is invoked in submission
  /// order on the driving thread.
  Sweep& add(std::string label, core::ExperimentConfig config,
             std::function<void(const core::ExperimentResult&)> commit);

  /// Declares a slotted cell; see Cell for the factory contract.
  Sweep& add_slotted(
      std::string label, switchsim::SlottedConfig config,
      std::function<sched::SchedulerPtr()> make_scheduler,
      std::function<switchsim::ArrivalStream()> make_stream,
      std::function<void(const switchsim::SlottedResult&)> commit);

  std::size_t size() const { return cells_.size(); }
  Cell& cell(std::size_t i) { return cells_[i]; }
  const Cell& cell(std::size_t i) const { return cells_[i]; }

  /// Computes cell i (worker side). When `cell_tracer` is non-null it
  /// replaces the cell config's tracer (the per-cell shard); the
  /// config's own tracer pointer is used as-is otherwise.
  CellOutput compute(std::size_t i, obs::FlowTracer* cell_tracer) const;

  /// Invokes cell i's commit callback (committer side).
  void commit(std::size_t i, const CellOutput& out) const;

  /// Runs every cell at `jobs` (resolve_jobs semantics) without any
  /// checkpoint layer: per-cell metric shards when obs::enabled(),
  /// per-cell tracers merged into `session_tracer` when non-null,
  /// commits in submission order. Benches with checkpoint support go
  /// through bench::RunSession::run_sweep instead, which reuses the
  /// same pool and artifact plumbing.
  void run(int jobs, obs::FlowTracer* session_tracer = nullptr);

 private:
  std::vector<Cell> cells_;
};

}  // namespace basrpt::exec
