// Per-cell observability isolation for the parallel sweep runner.
//
// Under --jobs N, concurrent cells must not write into the shared
// metrics registry or flow tracer: both are single-threaded by
// contract. Each in-flight cell therefore gets a CellArtifacts — a
// private Registry shard (bound to the worker thread around the cell's
// compute via obs::ScopedRegistryBind) and a private FlowTracer.
// absorb(), called on the committing thread in submission order, folds
// the shard into the global registry and the trace records into the
// session tracer with run ids renumbered — reproducing exactly what a
// sequential run sharing those objects would have written.
#pragma once

#include <optional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace basrpt::exec {

class CellArtifacts {
 public:
  /// `shard_metrics`: give the cell a private Registry (pass it to
  /// ScopedRegistryBind). `shard_trace`: give it a private FlowTracer
  /// (point the cell's config at it).
  CellArtifacts(bool shard_metrics, bool shard_trace) {
    if (shard_metrics) {
      registry_.emplace();
    }
    if (shard_trace) {
      tracer_.emplace();
    }
  }

  obs::Registry* registry() { return registry_ ? &*registry_ : nullptr; }
  obs::FlowTracer* tracer() { return tracer_ ? &*tracer_ : nullptr; }

  /// Ordered commit: merges the shard into obs::Registry::global() and
  /// the trace records into `session_tracer` (ignored when either side
  /// is absent). Call on the committing thread only.
  void absorb(obs::FlowTracer* session_tracer) {
    if (registry_) {
      obs::Registry::global().merge_from(*registry_);
      registry_.reset();
    }
    if (tracer_ && session_tracer != nullptr) {
      session_tracer->absorb(*tracer_);
    }
    tracer_.reset();
  }

 private:
  std::optional<obs::Registry> registry_;
  std::optional<obs::FlowTracer> tracer_;
};

}  // namespace basrpt::exec
