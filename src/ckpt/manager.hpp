// CheckpointManager: durable, atomic, rotated checkpoint files.
//
// A checkpoint that can be torn by a crash mid-write is worse than no
// checkpoint — resume would act on garbage. Every write therefore goes
// temp file → fsync(file) → rename → fsync(directory), so the final
// name only ever refers to a fully-flushed snapshot. Rotation keeps the
// last K checkpoints (the newest can still be lost to e.g. a disk-full
// partial rename-source, and keeping history lets operators roll back
// past a checkpoint that captures an already-wedged state).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace basrpt::ckpt {

struct CheckpointManagerConfig {
  std::string dir;          // created if missing
  std::string run_id;       // filename stem, e.g. "fig5_stability"
  int keep_last = 3;        // rotation depth; >= 1
  double min_wall_interval_sec = 0.0;  // throttle for maybe_write()
};

class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointManagerConfig config);

  /// Writes `payload` atomically as `<run_id>.<seq>.ckpt`, rotates old
  /// checkpoints, returns the final path. Throws ConfigError on I/O
  /// failure (callers decide whether a failed checkpoint is fatal).
  std::string write(const std::string& payload);

  /// Cadence-friendly write: skipped (returns empty string) when the
  /// last write was less than min_wall_interval_sec ago. Signal/stall
  /// paths use write() directly — those must never be throttled.
  std::string maybe_write(const std::string& payload);

  /// Next sequence number to be assigned (monotonic per manager).
  std::uint64_t sequence() const { return seq_; }

  /// Resumed runs continue numbering after the checkpoint they loaded,
  /// so rotation never deletes the file the run was restored from first.
  void set_sequence(std::uint64_t next) { seq_ = next; }

  std::uint64_t writes() const { return writes_; }

  /// Path of the newest `<run_id>.<seq>.ckpt` in `dir`, or empty string
  /// when none exists. Newest = highest sequence number (not mtime:
  /// clocks lie, sequence numbers do not).
  static std::string latest(const std::string& dir, const std::string& run_id);

  /// Sequence number parsed from a checkpoint path produced by this
  /// manager; ConfigError when the name does not match the pattern.
  static std::uint64_t sequence_of(const std::string& path);

 private:
  void prune();

  CheckpointManagerConfig config_;
  std::uint64_t seq_ = 0;
  std::uint64_t writes_ = 0;
  bool have_last_write_ = false;
  std::chrono::steady_clock::time_point last_write_{};
};

}  // namespace basrpt::ckpt
