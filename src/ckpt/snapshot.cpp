#include "ckpt/snapshot.hpp"

#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/serial.hpp"

namespace basrpt::ckpt {

namespace {

bool valid_name(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-' || c == '.';
    if (!ok) {
      return false;
    }
  }
  return true;
}

std::uint32_t crc_of_lines(const std::vector<std::string>& lines) {
  std::uint32_t crc = 0;
  for (const std::string& line : lines) {
    crc = crc32(crc, line.data(), line.size());
    crc = crc32(crc, "\n", 1);
  }
  return crc;
}

std::string crc_hex(std::uint32_t crc) {
  // Low 8 digits of the 16-digit helper: CRC-32 is 32 bits wide.
  return u64_to_hex(crc).substr(8);
}

std::uint64_t parse_count(const std::string& cell, std::size_t line,
                          const char* what) {
  try {
    std::size_t pos = 0;
    const std::uint64_t value = std::stoull(cell, &pos);
    if (pos != cell.size() || cell.empty() || cell[0] == '-' ||
        cell[0] == '+') {
      throw ParseError(kParseContext, line,
                       std::string(what) + " is not a count: '" + cell + "'");
    }
    return value;
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception&) {
    throw ParseError(kParseContext, line,
                     std::string(what) + " is not a count: '" + cell + "'");
  }
}

std::uint32_t parse_crc(const std::string& cell, std::size_t line) {
  if (cell.size() != 8) {
    throw ParseError(kParseContext, line,
                     "CRC must be 8 hex digits: '" + cell + "'");
  }
  try {
    return static_cast<std::uint32_t>(u64_from_hex("00000000" + cell));
  } catch (const std::exception&) {
    throw ParseError(kParseContext, line,
                     "CRC must be 8 hex digits: '" + cell + "'");
  }
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream in(line);
  std::string cell;
  while (in >> cell) {
    fields.push_back(cell);
  }
  return fields;
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer

void SnapshotWriter::Section::line(const std::string& raw) {
  BASRPT_ASSERT(raw.find('\n') == std::string::npos &&
                    raw.find('\r') == std::string::npos,
                "checkpoint payload line contains a line break");
  lines_.push_back(raw);
}

void SnapshotWriter::Section::u64(const char* key, std::uint64_t value) {
  line(std::string(key) + ' ' + std::to_string(value));
}

void SnapshotWriter::Section::i64(const char* key, std::int64_t value) {
  line(std::string(key) + ' ' + std::to_string(value));
}

void SnapshotWriter::Section::f64(const char* key, double value) {
  line(std::string(key) + ' ' + f64_to_hex(value));
}

void SnapshotWriter::Section::text(const char* key, const std::string& value) {
  line(std::string(key) + ' ' + value);
}

SnapshotWriter::Section& SnapshotWriter::section(const std::string& name) {
  BASRPT_ASSERT(valid_name(name),
                "checkpoint section name must be [a-z0-9_.-]+: '" + name + "'");
  for (const Section& s : sections_) {
    BASRPT_ASSERT(s.name_ != name,
                  "checkpoint section written twice: '" + name + "'");
  }
  sections_.emplace_back();
  sections_.back().name_ = name;
  return sections_.back();
}

std::string SnapshotWriter::str() const {
  std::ostringstream out;
  out << kMagic << '\n';
  for (const Section& s : sections_) {
    out << "section " << s.name_ << ' ' << s.lines_.size() << ' '
        << crc_hex(crc_of_lines(s.lines_)) << '\n';
    for (const std::string& line : s.lines_) {
      out << line << '\n';
    }
  }
  out << "end " << sections_.size() << '\n';
  return out.str();
}

// ---------------------------------------------------------------------------
// Reader

const std::string& SectionReader::next(const char* what) {
  if (cursor_ >= section_->lines.size()) {
    throw ParseError(kParseContext,
                     section_->first_line + section_->lines.size(),
                     "section '" + section_->name + "' is missing " + what);
  }
  return section_->lines[cursor_++];
}

std::size_t SectionReader::current_file_line() const {
  // Line of the row the cursor just consumed (or would consume next when
  // nothing was consumed yet).
  const std::size_t row = cursor_ == 0 ? 0 : cursor_ - 1;
  return section_->first_line + row;
}

void SectionReader::fail(const std::string& what) const {
  throw ParseError(kParseContext, current_file_line(),
                   "section '" + section_->name + "': " + what);
}

std::string SectionReader::value_of(const char* key) {
  const std::string& line = next(key);
  const std::size_t space = line.find(' ');
  if (space == std::string::npos) {
    fail("expected 'key value', got '" + line + "'");
  }
  const std::string got = line.substr(0, space);
  if (got != key) {
    fail("expected key '" + std::string(key) + "', got '" + got + "'");
  }
  return line.substr(space + 1);
}

std::uint64_t SectionReader::u64(const char* key) {
  const std::string cell = value_of(key);
  try {
    std::size_t pos = 0;
    const std::uint64_t value = std::stoull(cell, &pos);
    if (pos != cell.size() || cell.empty() || cell[0] == '-' ||
        cell[0] == '+') {
      fail(std::string(key) + " is not a u64: '" + cell + "'");
    }
    return value;
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception&) {
    fail(std::string(key) + " is not a u64: '" + cell + "'");
  }
}

std::int64_t SectionReader::i64(const char* key) {
  const std::string cell = value_of(key);
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(cell, &pos);
    if (pos != cell.size()) {
      fail(std::string(key) + " is not an integer: '" + cell + "'");
    }
    return value;
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception&) {
    fail(std::string(key) + " is not an integer: '" + cell + "'");
  }
}

double SectionReader::f64(const char* key) {
  const std::string cell = value_of(key);
  try {
    return f64_from_hex(cell);
  } catch (const std::exception&) {
    fail(std::string(key) + " is not a hex-encoded double: '" + cell + "'");
  }
}

std::string SectionReader::text(const char* key) { return value_of(key); }

void SectionReader::expect_done() {
  if (cursor_ != section_->lines.size()) {
    throw ParseError(kParseContext, section_->first_line + cursor_,
                     "section '" + section_->name + "' has " +
                         std::to_string(remaining()) +
                         " unexpected trailing line(s)");
  }
}

// ---------------------------------------------------------------------------
// Snapshot parse

Snapshot Snapshot::parse(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw ParseError(kParseContext, 1,
                     std::string("expected '") + kMagic + "'");
  }
  if (!line.empty() && line.back() == '\r') {
    line.pop_back();  // tolerate CRLF
  }
  if (line != kMagic) {
    throw ParseError(kParseContext, 1,
                     std::string("expected '") + kMagic + "'");
  }

  Snapshot snap;
  std::size_t line_no = 1;
  bool saw_newline_at_end = !in.eof();
  bool saw_trailer = false;
  while (std::getline(in, line)) {
    ++line_no;
    saw_newline_at_end = !in.eof();
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (saw_trailer) {
      // Anything after `end <n>` is a concatenation accident or an
      // attacker-controlled tail; either way the file is not trustworthy.
      throw ParseError(kParseContext, line_no,
                       "trailing content after 'end' trailer");
    }
    const auto fields = split_ws(line);
    if (fields.empty()) {
      throw ParseError(kParseContext, line_no, "blank line inside snapshot");
    }
    if (fields[0] == "end") {
      if (fields.size() != 2) {
        throw ParseError(kParseContext, line_no,
                         "'end' expects the section count");
      }
      const std::uint64_t count =
          parse_count(fields[1], line_no, "section count");
      if (count != snap.sections_.size()) {
        throw ParseError(kParseContext, line_no,
                         "trailer says " + std::to_string(count) +
                             " sections, file has " +
                             std::to_string(snap.sections_.size()));
      }
      saw_trailer = true;
      continue;
    }
    if (fields[0] != "section") {
      throw ParseError(kParseContext, line_no,
                       "expected 'section' or 'end', got '" + fields[0] + "'");
    }
    if (fields.size() != 4) {
      throw ParseError(kParseContext, line_no,
                       "'section' expects <name> <nlines> <crc32>");
    }
    Section section;
    section.name = fields[1];
    if (!valid_name(section.name)) {
      throw ParseError(kParseContext, line_no,
                       "bad section name '" + section.name + "'");
    }
    if (snap.index_.count(section.name)) {
      throw ParseError(kParseContext, line_no,
                       "duplicate section '" + section.name + "'");
    }
    const std::uint64_t nlines = parse_count(fields[2], line_no, "nlines");
    // An absurd count is a corrupt header; refuse before attempting to
    // allocate or loop on it.
    if (nlines > (1ull << 32)) {
      throw ParseError(kParseContext, line_no,
                       "implausible section size " + std::to_string(nlines));
    }
    const std::uint32_t want_crc = parse_crc(fields[3], line_no);
    section.first_line = line_no + 1;
    section.lines.reserve(static_cast<std::size_t>(nlines));
    for (std::uint64_t i = 0; i < nlines; ++i) {
      if (!std::getline(in, line)) {
        throw ParseError(kParseContext, line_no,
                         "section '" + section.name + "' truncated: expected " +
                             std::to_string(nlines) + " lines, got " +
                             std::to_string(i));
      }
      ++line_no;
      saw_newline_at_end = !in.eof();
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      section.lines.push_back(line);
    }
    const std::uint32_t got_crc = crc_of_lines(section.lines);
    if (got_crc != want_crc) {
      throw ParseError(kParseContext, section.first_line,
                       "section '" + section.name + "' CRC mismatch: header " +
                           crc_hex(want_crc) + ", payload " +
                           crc_hex(got_crc));
    }
    snap.index_[section.name] = snap.sections_.size();
    snap.sections_.push_back(std::move(section));
  }
  if (in.bad()) {
    throw ConfigError("checkpoint: I/O error while reading");
  }
  if (!saw_trailer) {
    throw ParseError(kParseContext, line_no,
                     "file truncated (missing 'end' trailer)");
  }
  if (!saw_newline_at_end) {
    throw ParseError(kParseContext, line_no,
                     "file truncated (no trailing newline)");
  }
  return snap;
}

Snapshot Snapshot::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  BASRPT_REQUIRE(in.good(), "cannot open checkpoint: " + path);
  return parse(in);
}

bool Snapshot::has(const std::string& name) const {
  return index_.count(name) != 0;
}

const Section& Snapshot::section(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    throw ParseError(kParseContext, 1,
                     "snapshot has no section '" + name + "'");
  }
  return sections_[it->second];
}

}  // namespace basrpt::ckpt
