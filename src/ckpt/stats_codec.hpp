// Sub-codecs for the statistics accumulators embedded in every
// checkpointable simulator state (moments, time series, FCT aggregates,
// backlog traces, fault counters).
//
// Each write_*/read_* pair is strictly symmetric: the reader consumes
// exactly the lines the writer produced, in order, and any drift —
// missing field, renamed key, wrong count — surfaces as a line-numbered
// ParseError from the SectionReader rather than a default-filled struct.
#pragma once

#include "ckpt/snapshot.hpp"
#include "fault/injector.hpp"
#include "queueing/backlog_recorder.hpp"
#include "queueing/lyapunov.hpp"
#include "stats/fct.hpp"
#include "stats/summary.hpp"
#include "stats/timeseries.hpp"

namespace basrpt::ckpt {

void write_moments(SnapshotWriter::Section& out,
                   const stats::StreamingMoments::State& s);
stats::StreamingMoments::State read_moments(SectionReader& in);

void write_timeseries(SnapshotWriter::Section& out,
                      const stats::TimeSeries::State& s);
stats::TimeSeries::State read_timeseries(SectionReader& in);

void write_fct(SnapshotWriter::Section& out,
               const stats::FctAggregator::State& s);
stats::FctAggregator::State read_fct(SectionReader& in);

void write_backlog(SnapshotWriter::Section& out,
                   const queueing::BacklogRecorder::State& s);
queueing::BacklogRecorder::State read_backlog(SectionReader& in);

void write_drift(SnapshotWriter::Section& out,
                 const queueing::DriftTracker::State& s);
queueing::DriftTracker::State read_drift(SectionReader& in);

void write_fault_stats(SnapshotWriter::Section& out,
                       const fault::FaultStats& s);
fault::FaultStats read_fault_stats(SectionReader& in);

}  // namespace basrpt::ckpt
