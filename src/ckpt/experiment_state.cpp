#include "ckpt/experiment_state.hpp"

#include <cstdint>

#include "ckpt/stats_codec.hpp"

namespace basrpt::ckpt {

namespace {

void write_trend(SnapshotWriter::Section& out, const char* slope_key,
                 const char* ratio_key, const char* growing_key,
                 const stats::TrendVerdict& t) {
  out.f64(slope_key, t.slope);
  out.f64(ratio_key, t.growth_ratio);
  out.u64(growing_key, t.growing ? 1 : 0);
}

stats::TrendVerdict read_trend(SectionReader& in, const char* slope_key,
                               const char* ratio_key,
                               const char* growing_key) {
  stats::TrendVerdict t;
  t.slope = in.f64(slope_key);
  t.growth_ratio = in.f64(ratio_key);
  const std::uint64_t growing = in.u64(growing_key);
  if (growing > 1) {
    in.fail(std::string(growing_key) + " must be 0 or 1");
  }
  t.growing = growing == 1;
  return t;
}

}  // namespace

void write_experiment_result(SnapshotWriter& out, const std::string& prefix,
                             const core::ExperimentResult& r) {
  auto& sum = out.section(prefix + ".summary");
  sum.text("scheduler_name", r.scheduler_name);
  sum.f64("query_avg_ms", r.query_avg_ms);
  sum.f64("query_p99_ms", r.query_p99_ms);
  sum.f64("background_avg_ms", r.background_avg_ms);
  sum.f64("background_p99_ms", r.background_p99_ms);
  sum.f64("query_mean_slowdown", r.query_mean_slowdown);
  sum.f64("background_mean_slowdown", r.background_mean_slowdown);
  sum.f64("throughput_gbps", r.throughput_gbps);
  write_trend(sum, "watched_slope", "watched_ratio", "watched_growing",
              r.watched_trend);
  write_trend(sum, "total_slope", "total_ratio", "total_growing",
              r.total_backlog_trend);
  sum.f64("watched_tail_mean_bytes", r.watched_tail_mean_bytes);
  sum.f64("total_tail_mean_bytes", r.total_tail_mean_bytes);
  sum.i64("flows_arrived", r.flows_arrived);
  sum.i64("flows_completed", r.flows_completed);
  sum.i64("flows_left", r.flows_left);
  sum.f64("bytes_left_gb", r.bytes_left_gb);

  auto& raw = out.section(prefix + ".raw");
  raw.i64("delivered", r.raw.delivered.count);
  raw.i64("bytes_arrived", r.raw.bytes_arrived.count);
  raw.i64("flows_arrived", r.raw.flows_arrived);
  raw.i64("flows_completed", r.raw.flows_completed);
  raw.i64("flows_left", r.raw.flows_left);
  raw.i64("bytes_left", r.raw.bytes_left.count);
  raw.f64("horizon", r.raw.horizon.seconds);
  raw.u64("scheduler_invocations", r.raw.scheduler_invocations);
  write_fault_stats(raw, r.raw.fault_stats);

  write_fct(out.section(prefix + ".fct"), r.raw.fct.state());
  write_backlog(out.section(prefix + ".backlog"), r.raw.backlog.state());
  write_timeseries(out.section(prefix + ".delivered_trace"),
                   r.raw.delivered_trace.state());
}

core::ExperimentResult read_experiment_result(const Snapshot& snap,
                                              const std::string& prefix,
                                              flowsim::PortId ws,
                                              flowsim::PortId wd) {
  core::ExperimentResult r(ws, wd);

  SectionReader sum = snap.reader(prefix + ".summary");
  r.scheduler_name = sum.text("scheduler_name");
  r.query_avg_ms = sum.f64("query_avg_ms");
  r.query_p99_ms = sum.f64("query_p99_ms");
  r.background_avg_ms = sum.f64("background_avg_ms");
  r.background_p99_ms = sum.f64("background_p99_ms");
  r.query_mean_slowdown = sum.f64("query_mean_slowdown");
  r.background_mean_slowdown = sum.f64("background_mean_slowdown");
  r.throughput_gbps = sum.f64("throughput_gbps");
  r.watched_trend =
      read_trend(sum, "watched_slope", "watched_ratio", "watched_growing");
  r.total_backlog_trend =
      read_trend(sum, "total_slope", "total_ratio", "total_growing");
  r.watched_tail_mean_bytes = sum.f64("watched_tail_mean_bytes");
  r.total_tail_mean_bytes = sum.f64("total_tail_mean_bytes");
  r.flows_arrived = sum.i64("flows_arrived");
  r.flows_completed = sum.i64("flows_completed");
  r.flows_left = sum.i64("flows_left");
  r.bytes_left_gb = sum.f64("bytes_left_gb");
  sum.expect_done();

  SectionReader raw = snap.reader(prefix + ".raw");
  r.raw.delivered = Bytes{raw.i64("delivered")};
  r.raw.bytes_arrived = Bytes{raw.i64("bytes_arrived")};
  r.raw.flows_arrived = raw.i64("flows_arrived");
  r.raw.flows_completed = raw.i64("flows_completed");
  r.raw.flows_left = raw.i64("flows_left");
  r.raw.bytes_left = Bytes{raw.i64("bytes_left")};
  r.raw.horizon = SimTime{raw.f64("horizon")};
  r.raw.scheduler_invocations = raw.u64("scheduler_invocations");
  r.raw.fault_stats = read_fault_stats(raw);
  raw.expect_done();

  SectionReader fct = snap.reader(prefix + ".fct");
  r.raw.fct.restore(read_fct(fct));
  fct.expect_done();

  SectionReader bl = snap.reader(prefix + ".backlog");
  r.raw.backlog.restore(read_backlog(bl));
  bl.expect_done();

  SectionReader dt = snap.reader(prefix + ".delivered_trace");
  r.raw.delivered_trace.restore(read_timeseries(dt));
  dt.expect_done();

  return r;
}

}  // namespace basrpt::ckpt
