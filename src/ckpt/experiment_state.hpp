// basrpt-ckpt-v1 encoding of a completed core::ExperimentResult.
//
// The figure benches are sequences of independent work units ("cells"):
// each core::run_experiment call seeds a fresh RNG from its own config,
// so a cell's result depends only on that config — never on the cells
// before it. Checkpointing therefore stores *finished* cells; resuming
// replays them from the file (bit-identical, no recomputation) and runs
// the remaining cells live. The final CSVs are byte-identical to an
// uninterrupted run's.
//
// Sections are namespaced by a caller-chosen prefix (`<prefix>.summary`,
// `<prefix>.fct`, ...) so one snapshot can hold many cells.
#pragma once

#include <string>

#include "ckpt/snapshot.hpp"
#include "core/experiment.hpp"

namespace basrpt::ckpt {

/// Appends the result's sections, all named `<prefix>.<part>`. The
/// prefix must satisfy the section-name charset ([a-z0-9_.-]+).
void write_experiment_result(SnapshotWriter& out, const std::string& prefix,
                             const core::ExperimentResult& r);

/// Rebuilds a stored result. `ws`/`wd` are the watched ports of the
/// resuming config (construction-time state of the embedded recorder;
/// the config fingerprint upstream guarantees they match the writer's).
core::ExperimentResult read_experiment_result(const Snapshot& snap,
                                              const std::string& prefix,
                                              flowsim::PortId ws,
                                              flowsim::PortId wd);

}  // namespace basrpt::ckpt
