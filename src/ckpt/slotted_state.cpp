#include "ckpt/slotted_state.hpp"

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/stats_codec.hpp"
#include "common/serial.hpp"

namespace basrpt::ckpt {

namespace {

using switchsim::SlottedArrival;
using switchsim::SlottedSimState;

void write_arrival(SnapshotWriter::Section& out, const char* key,
                   const SlottedArrival& a) {
  out.line(std::string(key) + ' ' + std::to_string(a.slot) + ' ' +
           std::to_string(a.src) + ' ' + std::to_string(a.dst) + ' ' +
           std::to_string(a.size) + ' ' +
           std::to_string(static_cast<unsigned>(a.cls)));
}

SlottedArrival read_arrival(SectionReader& in, const char* key) {
  const std::string v = in.text(key);
  std::istringstream cells(v);
  SlottedArrival a;
  long long slot = 0, size = 0;
  long src = 0, dst = 0;
  unsigned cls = 0;
  if (!(cells >> slot >> src >> dst >> size >> cls) ||
      !(cells >> std::ws).eof() || cls > 1) {
    in.fail(std::string(key) +
            " must be '<slot> <src> <dst> <size> <cls>', got '" + v + "'");
  }
  a.slot = slot;
  a.src = static_cast<switchsim::PortId>(src);
  a.dst = static_cast<switchsim::PortId>(dst);
  a.size = size;
  a.cls = static_cast<stats::FlowClass>(cls);
  return a;
}

}  // namespace

void write_slotted_state(SnapshotWriter& out, const SlottedSimState& s) {
  auto& run = out.section("slotted.run");
  run.i64("slot", s.slot);
  run.u64("arrival_pulls", s.arrival_pulls);
  run.u64("has_pending", s.has_pending ? 1 : 0);
  if (s.has_pending) {
    write_arrival(run, "pending", s.pending);
  }
  run.i64("last_slot_seen", s.last_slot_seen);
  run.u64("scheduler_invocations", s.scheduler_invocations);
  run.i64("delivered_packets", s.delivered_packets);
  run.u64("scheduler_state", s.scheduler_state.size());
  for (const std::uint64_t word : s.scheduler_state) {
    run.u64("w", word);
  }

  auto& lc = out.section("slotted.lifecycle");
  lc.i64("next_id", s.lifecycle.next_id);
  lc.i64("flows_arrived", s.lifecycle.flows_arrived);
  lc.i64("flows_completed", s.lifecycle.flows_completed);
  lc.i64("flows_requeued", s.lifecycle.flows_requeued);
  lc.i64("bytes_arrived", s.lifecycle.bytes_arrived.count);
  lc.u64("prev_selected", s.lifecycle.prev_selected.size());
  for (const queueing::FlowId id : s.lifecycle.prev_selected) {
    lc.i64("id", id);
  }

  auto& fl = out.section("slotted.flows");
  fl.u64("flows", s.flows.size());
  for (const queueing::Flow& f : s.flows) {
    // id src dst size remaining arrival(slot-valued double) cls
    fl.line("f " + std::to_string(f.id) + ' ' + std::to_string(f.src) + ' ' +
            std::to_string(f.dst) + ' ' + std::to_string(f.size.count) + ' ' +
            std::to_string(f.remaining.count) + ' ' +
            f64_to_hex(f.arrival.seconds) + ' ' +
            std::to_string(static_cast<unsigned>(f.cls)));
  }

  write_fct(out.section("slotted.fct"), s.fct);
  write_backlog(out.section("slotted.backlog"), s.backlog);
  write_drift(out.section("slotted.drift"), s.drift);
  write_moments(out.section("slotted.penalty"), s.penalty);
  write_moments(out.section("slotted.backlog_packets"), s.backlog_packets);

  auto& ft = out.section("slotted.fault");
  ft.u64("cursor", s.fault_cursor);
  write_fault_stats(ft, s.fault_stats);
  ft.u64("credit", s.credit.size());
  for (const double c : s.credit) {
    ft.f64("c", c);
  }
  ft.u64("last_selected", s.last_selected.size());
  for (const queueing::FlowId id : s.last_selected) {
    ft.i64("id", id);
  }
  ft.i64("candidates_masked_base", s.candidates_masked_base);
}

switchsim::SlottedSimState read_slotted_state(const Snapshot& snap) {
  SlottedSimState s;

  SectionReader run = snap.reader("slotted.run");
  s.slot = run.i64("slot");
  s.arrival_pulls = run.u64("arrival_pulls");
  const std::uint64_t has_pending = run.u64("has_pending");
  if (has_pending > 1) {
    run.fail("has_pending must be 0 or 1");
  }
  s.has_pending = has_pending == 1;
  if (s.has_pending) {
    s.pending = read_arrival(run, "pending");
  }
  s.last_slot_seen = run.i64("last_slot_seen");
  s.scheduler_invocations = run.u64("scheduler_invocations");
  s.delivered_packets = run.i64("delivered_packets");
  const std::uint64_t n_words = run.u64("scheduler_state");
  if (n_words > run.remaining()) {
    run.fail("scheduler_state count exceeds the section's remaining payload");
  }
  s.scheduler_state.reserve(static_cast<std::size_t>(n_words));
  for (std::uint64_t i = 0; i < n_words; ++i) {
    s.scheduler_state.push_back(run.u64("w"));
  }
  run.expect_done();

  SectionReader lc = snap.reader("slotted.lifecycle");
  s.lifecycle.next_id = lc.i64("next_id");
  s.lifecycle.flows_arrived = lc.i64("flows_arrived");
  s.lifecycle.flows_completed = lc.i64("flows_completed");
  s.lifecycle.flows_requeued = lc.i64("flows_requeued");
  s.lifecycle.bytes_arrived = Bytes{lc.i64("bytes_arrived")};
  const std::uint64_t n_prev = lc.u64("prev_selected");
  if (n_prev > lc.remaining()) {
    lc.fail("prev_selected count exceeds the section's remaining payload");
  }
  s.lifecycle.prev_selected.reserve(static_cast<std::size_t>(n_prev));
  for (std::uint64_t i = 0; i < n_prev; ++i) {
    s.lifecycle.prev_selected.push_back(lc.i64("id"));
  }
  lc.expect_done();

  SectionReader fl = snap.reader("slotted.flows");
  const std::uint64_t n_flows = fl.u64("flows");
  if (n_flows > fl.remaining()) {
    fl.fail("flow count exceeds the section's remaining payload");
  }
  s.flows.reserve(static_cast<std::size_t>(n_flows));
  for (std::uint64_t i = 0; i < n_flows; ++i) {
    const std::string v = fl.text("f");
    std::istringstream cells(v);
    long long id = 0, size = 0, remaining = 0;
    long src = 0, dst = 0;
    std::string arrival_hex;
    unsigned cls = 0;
    if (!(cells >> id >> src >> dst >> size >> remaining >> arrival_hex >>
          cls) ||
        !(cells >> std::ws).eof() || cls > 1) {
      fl.fail("malformed flow record '" + v + "'");
    }
    queueing::Flow f;
    f.id = id;
    f.src = static_cast<queueing::PortId>(src);
    f.dst = static_cast<queueing::PortId>(dst);
    f.size = Bytes{size};
    f.remaining = Bytes{remaining};
    try {
      f.arrival = SimTime{f64_from_hex(arrival_hex)};
    } catch (const std::exception&) {
      fl.fail("flow arrival must be a hex-encoded double: '" + v + "'");
    }
    f.cls = static_cast<stats::FlowClass>(cls);
    s.flows.push_back(f);
  }
  fl.expect_done();

  SectionReader fct = snap.reader("slotted.fct");
  s.fct = read_fct(fct);
  fct.expect_done();

  SectionReader bl = snap.reader("slotted.backlog");
  s.backlog = read_backlog(bl);
  bl.expect_done();

  SectionReader dr = snap.reader("slotted.drift");
  s.drift = read_drift(dr);
  dr.expect_done();

  SectionReader pen = snap.reader("slotted.penalty");
  s.penalty = read_moments(pen);
  pen.expect_done();

  SectionReader bp = snap.reader("slotted.backlog_packets");
  s.backlog_packets = read_moments(bp);
  bp.expect_done();

  SectionReader ft = snap.reader("slotted.fault");
  s.fault_cursor = ft.u64("cursor");
  s.fault_stats = read_fault_stats(ft);
  const std::uint64_t n_credit = ft.u64("credit");
  if (n_credit > ft.remaining()) {
    ft.fail("credit count exceeds the section's remaining payload");
  }
  s.credit.reserve(static_cast<std::size_t>(n_credit));
  for (std::uint64_t i = 0; i < n_credit; ++i) {
    s.credit.push_back(ft.f64("c"));
  }
  const std::uint64_t n_sel = ft.u64("last_selected");
  if (n_sel > ft.remaining()) {
    ft.fail("last_selected count exceeds the section's remaining payload");
  }
  s.last_selected.reserve(static_cast<std::size_t>(n_sel));
  for (std::uint64_t i = 0; i < n_sel; ++i) {
    s.last_selected.push_back(ft.i64("id"));
  }
  s.candidates_masked_base = ft.i64("candidates_masked_base");
  ft.expect_done();

  return s;
}

void write_slotted_result(SnapshotWriter& out, const std::string& prefix,
                          const switchsim::SlottedResult& r) {
  auto& sum = out.section(prefix + ".summary");
  sum.i64("delivered_packets", r.delivered_packets);
  sum.i64("left_packets", r.left_packets);
  sum.i64("left_flows", r.left_flows);
  sum.i64("horizon", r.horizon);
  sum.u64("scheduler_invocations", r.scheduler_invocations);
  write_fault_stats(sum, r.fault_stats);
  write_fct(out.section(prefix + ".fct"), r.fct.state());
  write_backlog(out.section(prefix + ".backlog"), r.backlog.state());
  write_drift(out.section(prefix + ".drift"), r.drift.state());
  write_moments(out.section(prefix + ".penalty"), r.penalty.state());
  write_moments(out.section(prefix + ".backlog_packets"),
                r.backlog_packets.state());
}

switchsim::SlottedResult read_slotted_result(const Snapshot& snap,
                                             const std::string& prefix,
                                             switchsim::PortId ws,
                                             switchsim::PortId wd) {
  switchsim::SlottedResult r(ws, wd);
  SectionReader sum = snap.reader(prefix + ".summary");
  r.delivered_packets = sum.i64("delivered_packets");
  r.left_packets = sum.i64("left_packets");
  r.left_flows = sum.i64("left_flows");
  r.horizon = sum.i64("horizon");
  r.scheduler_invocations = sum.u64("scheduler_invocations");
  r.fault_stats = read_fault_stats(sum);
  sum.expect_done();

  SectionReader fct = snap.reader(prefix + ".fct");
  r.fct.restore(read_fct(fct));
  fct.expect_done();
  SectionReader bl = snap.reader(prefix + ".backlog");
  r.backlog.restore(read_backlog(bl));
  bl.expect_done();
  SectionReader dr = snap.reader(prefix + ".drift");
  r.drift.restore(read_drift(dr));
  dr.expect_done();
  SectionReader pen = snap.reader(prefix + ".penalty");
  r.penalty.restore(read_moments(pen));
  pen.expect_done();
  SectionReader bp = snap.reader(prefix + ".backlog_packets");
  r.backlog_packets.restore(read_moments(bp));
  bp.expect_done();
  return r;
}

}  // namespace basrpt::ckpt
