// basrpt-ckpt-v1 encoding of switchsim::SlottedSimState — the genuine
// mid-run snapshot of the slotted simulator. Restoring it and re-running
// with an identically configured SlottedConfig + freshly seeded arrival
// stream continues the run bit-identically (enforced by the differential
// tests in tests/test_ckpt.cpp).
#pragma once

#include "ckpt/snapshot.hpp"
#include "switchsim/slotted_sim.hpp"

namespace basrpt::ckpt {

/// Appends the state's sections (all prefixed `slotted.`) to `out`. The
/// caller may add its own sections (e.g. a `meta` fingerprint) alongside.
void write_slotted_state(SnapshotWriter& out,
                         const switchsim::SlottedSimState& s);

/// Rebuilds the state from a parsed snapshot; ParseError on any missing
/// section, schema drift, or implausible value.
switchsim::SlottedSimState read_slotted_state(const Snapshot& snap);

/// Encoding of a *finished* slotted run, namespaced `<prefix>.<part>` —
/// how the slotted benches store completed cells so resume can re-emit
/// their tables without recomputation.
void write_slotted_result(SnapshotWriter& out, const std::string& prefix,
                          const switchsim::SlottedResult& r);

/// `ws`/`wd` are the resuming config's watched ports (construction-time
/// state of the embedded recorder, covered by the config fingerprint).
switchsim::SlottedResult read_slotted_result(const Snapshot& snap,
                                             const std::string& prefix,
                                             switchsim::PortId ws,
                                             switchsim::PortId wd);

}  // namespace basrpt::ckpt
