// basrpt-ckpt-v1: the versioned, CRC-guarded checkpoint container.
//
// Layout (line-oriented text, one logical record per line):
//
//   basrpt-ckpt-v1
//   section <name> <nlines> <crc32-8hex>
//   <nlines payload lines>
//   ... more sections ...
//   end <nsections>
//
// Each section's CRC-32 covers its payload lines (each with a trailing
// '\n', after CRLF normalization), so a torn write, bit flip, or
// truncation inside any section is detected before a single field is
// acted on. The reader follows the `src/fault` conventions: 1-based
// line-numbered ParseError for every malformed construct, truncation
// detection via the missing trailing newline, CRLF tolerance, and it
// must never crash or silently resume on arbitrary bytes.
//
// Payload lines are `key value` pairs read back in writer order by a
// sequential SectionReader — a checkpoint is a machine-to-machine
// artifact, so field order is part of the schema and any drift is a
// loud ParseError rather than a default-filled struct. Integers travel
// in decimal; doubles travel as the hex image of their IEEE-754 bits
// (see common/serial.hpp) because resume must be bit-deterministic.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace basrpt::ckpt {

/// Format magic, shared by writer, reader, and tests.
inline constexpr const char* kMagic = "basrpt-ckpt-v1";

/// Context string used in every ParseError thrown by the reader.
inline constexpr const char* kParseContext = "checkpoint";

/// Accumulates one snapshot and serializes it to basrpt-ckpt-v1 text.
class SnapshotWriter {
 public:
  /// Typed append helpers for one section's payload.
  class Section {
   public:
    /// Raw payload line; must not contain '\n' or '\r'.
    void line(const std::string& raw);

    void u64(const char* key, std::uint64_t value);
    void i64(const char* key, std::int64_t value);
    /// Doubles are written as their 16-digit IEEE-754 hex image.
    void f64(const char* key, double value);
    /// Free-form value (everything after "key " up to end of line).
    void text(const char* key, const std::string& value);

   private:
    friend class SnapshotWriter;
    std::string name_;
    std::vector<std::string> lines_;
  };

  /// Opens a new section. Names must be unique within a snapshot and
  /// contain no whitespace. The returned reference stays valid across
  /// later section() calls (deque storage — no reallocation moves).
  Section& section(const std::string& name);

  /// Serializes the whole snapshot, trailer included.
  std::string str() const;

 private:
  std::deque<Section> sections_;
};

/// One parsed, CRC-verified section.
struct Section {
  std::string name;
  std::size_t first_line = 0;  // 1-based file line of the first payload row
  std::vector<std::string> lines;
};

/// Sequential typed reader over one section's payload. Keys are part of
/// the schema: a mismatch between the expected and stored key means the
/// file was produced by an incompatible writer and raises ParseError.
class SectionReader {
 public:
  explicit SectionReader(const Section& section) : section_(&section) {}

  std::size_t remaining() const { return section_->lines.size() - cursor_; }

  /// Next raw payload line; ParseError (with file line number) when the
  /// section is exhausted.
  const std::string& next(const char* what);

  std::uint64_t u64(const char* key);
  std::int64_t i64(const char* key);
  double f64(const char* key);
  std::string text(const char* key);

  /// Asserts the section was fully consumed; trailing unread lines mean
  /// schema drift and raise ParseError.
  void expect_done();

  /// Raises ParseError at the current position — for codec-level value
  /// validation (bad enum, implausible count) on top of the typed reads.
  [[noreturn]] void fail(const std::string& what) const;

 private:
  /// Splits `key value`, validating the key. Returns the value part.
  std::string value_of(const char* key);
  std::size_t current_file_line() const;

  const Section* section_;
  std::size_t cursor_ = 0;
};

/// A parsed basrpt-ckpt-v1 snapshot.
class Snapshot {
 public:
  /// Parses and CRC-verifies a full snapshot. Throws ParseError (line
  /// numbered) on any malformed, truncated, or corrupt input.
  static Snapshot parse(std::istream& in);
  static Snapshot from_file(const std::string& path);

  bool has(const std::string& name) const;

  /// The named section; ParseError if the snapshot does not contain it.
  const Section& section(const std::string& name) const;

  /// Reader positioned at the start of the named section.
  SectionReader reader(const std::string& name) const {
    return SectionReader(section(name));
  }

  const std::vector<Section>& sections() const { return sections_; }

 private:
  std::vector<Section> sections_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace basrpt::ckpt
