#include "ckpt/manager.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <system_error>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "perf/profiler.hpp"

namespace basrpt::ckpt {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSuffix = ".ckpt";

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  throw ConfigError("checkpoint: " + what + " failed for " + path + ": " +
                    std::strerror(errno));
}

/// write(2) the whole buffer and fsync before close; any failure throws.
void write_durable(const std::string& path, const std::string& payload) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    io_fail("open", path);
  }
  std::size_t written = 0;
  while (written < payload.size()) {
    const ssize_t n =
        ::write(fd, payload.data() + written, payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      io_fail("write", path);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    io_fail("fsync", path);
  }
  if (::close(fd) != 0) {
    io_fail("close", path);
  }
}

/// fsync the directory so the rename itself is durable. Best effort on
/// filesystems that refuse O_DIRECTORY fsync (some network mounts).
void sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return;
  }
  (void)::fsync(fd);
  (void)::close(fd);
}

/// `<run_id>.<seq>.ckpt` → seq, or nullopt when the name doesn't match.
std::optional<std::uint64_t> parse_seq(const std::string& filename,
                                       const std::string& run_id) {
  const std::string prefix = run_id + ".";
  if (filename.rfind(prefix, 0) != 0 ||
      filename.size() <= prefix.size() + std::strlen(kSuffix)) {
    return std::nullopt;
  }
  if (filename.compare(filename.size() - std::strlen(kSuffix),
                       std::strlen(kSuffix), kSuffix) != 0) {
    return std::nullopt;
  }
  const std::string digits = filename.substr(
      prefix.size(), filename.size() - prefix.size() - std::strlen(kSuffix));
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  try {
    return std::stoull(digits);
  } catch (const std::exception&) {
    return std::nullopt;  // > 2^64: not ours
  }
}

std::string seq_name(const std::string& run_id, std::uint64_t seq) {
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%06llu",
                static_cast<unsigned long long>(seq));
  return run_id + "." + digits + kSuffix;
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointManagerConfig config)
    : config_(std::move(config)) {
  BASRPT_REQUIRE(!config_.dir.empty(), "checkpoint dir must not be empty");
  BASRPT_REQUIRE(!config_.run_id.empty(),
                 "checkpoint run id must not be empty");
  BASRPT_REQUIRE(
      config_.run_id.find('/') == std::string::npos &&
          config_.run_id.find('.') == std::string::npos,
      "checkpoint run id must not contain '/' or '.': " + config_.run_id);
  BASRPT_REQUIRE(config_.keep_last >= 1, "checkpoint keep_last must be >= 1");
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  BASRPT_REQUIRE(!ec, "cannot create checkpoint dir " + config_.dir + ": " +
                          ec.message());
}

std::string CheckpointManager::write(const std::string& payload) {
  const perf::ScopedPhase phase(perf::Phase::kCheckpointWrite);
  const std::string final_name = seq_name(config_.run_id, seq_);
  const std::string final_path =
      (fs::path(config_.dir) / final_name).string();
  // The temp name carries the pid so two racing runs pointed at the same
  // directory cannot tear each other's in-flight file.
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid());
  write_durable(tmp_path, payload);
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    io_fail("rename", final_path);
  }
  sync_dir(config_.dir);
  ++seq_;
  ++writes_;
  last_write_ = std::chrono::steady_clock::now();
  have_last_write_ = true;
  prune();
  return final_path;
}

std::string CheckpointManager::maybe_write(const std::string& payload) {
  if (have_last_write_ && config_.min_wall_interval_sec > 0.0) {
    const std::chrono::duration<double> since =
        std::chrono::steady_clock::now() - last_write_;
    if (since.count() < config_.min_wall_interval_sec) {
      return {};
    }
  }
  return write(payload);
}

void CheckpointManager::prune() {
  std::vector<std::pair<std::uint64_t, fs::path>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    const auto seq = parse_seq(entry.path().filename().string(),
                               config_.run_id);
    if (seq) {
      found.emplace_back(*seq, entry.path());
    }
  }
  if (found.size() <= static_cast<std::size_t>(config_.keep_last)) {
    return;
  }
  std::sort(found.begin(), found.end());
  const std::size_t surplus =
      found.size() - static_cast<std::size_t>(config_.keep_last);
  for (std::size_t i = 0; i < surplus; ++i) {
    fs::remove(found[i].second, ec);  // best effort; rotation is hygiene
  }
}

std::string CheckpointManager::latest(const std::string& dir,
                                      const std::string& run_id) {
  std::error_code ec;
  std::optional<std::uint64_t> best_seq;
  fs::path best_path;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const auto seq = parse_seq(entry.path().filename().string(), run_id);
    if (seq && (!best_seq || *seq > *best_seq)) {
      best_seq = *seq;
      best_path = entry.path();
    }
  }
  return best_seq ? best_path.string() : std::string();
}

std::uint64_t CheckpointManager::sequence_of(const std::string& path) {
  const std::string filename = fs::path(path).filename().string();
  // Recover the run id by stripping `.<digits>.ckpt` from the right.
  const std::size_t suffix_len = std::strlen(kSuffix);
  BASRPT_REQUIRE(filename.size() > suffix_len &&
                     filename.compare(filename.size() - suffix_len,
                                      suffix_len, kSuffix) == 0,
                 "not a checkpoint filename: " + filename);
  const std::string stem =
      filename.substr(0, filename.size() - suffix_len);
  const std::size_t dot = stem.rfind('.');
  BASRPT_REQUIRE(dot != std::string::npos && dot + 1 < stem.size(),
                 "not a checkpoint filename: " + filename);
  const auto seq = parse_seq(filename, stem.substr(0, dot));
  BASRPT_REQUIRE(seq.has_value(), "not a checkpoint filename: " + filename);
  return *seq;
}

}  // namespace basrpt::ckpt
