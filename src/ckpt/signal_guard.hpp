// SignalGuard: turn SIGINT/SIGTERM into a checkpoint opportunity.
//
// While a guard is alive, the first SIGINT or SIGTERM sets the common
// interrupt flag (see common/interrupt.hpp); the simulation loop notices
// at its next poll and raises InterruptedError at a safe boundary, where
// the bench writes a final checkpoint and flushes partial artifacts.
// Handlers are installed with SA_RESETHAND: a second signal gets the
// default disposition and kills the process immediately — operators must
// always be able to insist.
//
// Services (basrptd, bench_soak) construct the guard in drain mode,
// which splits the two signals by their operational meaning:
//
//   * SIGTERM → graceful drain: sets the *drain* flag only. The service
//     stops admitting, finishes in-flight work, checkpoints, flushes its
//     artifacts, and exits 0 — a drained shutdown is a success, not a
//     failure (systemd/Kubernetes send SIGTERM on every routine stop).
//   * SIGINT → interrupt: the bench semantics above; the run is cut
//     short at the next safe boundary and exits 128+SIGINT.
//   * SIGHUP → flush: checkpoint + rewrite the SLO report at the next
//     decision boundary, then keep serving. Repeatable (not one-shot).
//   * SIGKILL is of course uncatchable either way — crash-safety is the
//     checkpoint manager's job, not the guard's.
//
// Pay-for-use: benches construct the guard only when checkpointing is
// enabled; without it, signal dispositions are untouched.
#pragma once

namespace basrpt::ckpt {

class SignalGuard {
 public:
  /// Installs one-shot SIGINT/SIGTERM handlers. Only one guard may be
  /// alive at a time (process-global signal dispositions). With
  /// `drain_on_sigterm`, SIGTERM requests a graceful drain instead of an
  /// interrupt (see above); the default keeps the historical bench
  /// behavior where both signals interrupt.
  explicit SignalGuard(bool drain_on_sigterm = false);

  /// Restores the previous dispositions and clears any pending flags.
  ~SignalGuard();

  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

 private:
  struct Saved;
  Saved* saved_;
};

}  // namespace basrpt::ckpt
