// SignalGuard: turn SIGINT/SIGTERM into a checkpoint opportunity.
//
// While a guard is alive, the first SIGINT or SIGTERM sets the common
// interrupt flag (see common/interrupt.hpp); the simulation loop notices
// at its next poll and raises InterruptedError at a safe boundary, where
// the bench writes a final checkpoint and flushes partial artifacts.
// Handlers are installed with SA_RESETHAND: a second signal gets the
// default disposition and kills the process immediately — operators must
// always be able to insist.
//
// Pay-for-use: benches construct the guard only when checkpointing is
// enabled; without it, signal dispositions are untouched.
#pragma once

namespace basrpt::ckpt {

class SignalGuard {
 public:
  /// Installs one-shot SIGINT/SIGTERM handlers. Only one guard may be
  /// alive at a time (process-global signal dispositions).
  SignalGuard();

  /// Restores the previous dispositions and clears any pending flag.
  ~SignalGuard();

  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

 private:
  struct Saved;
  Saved* saved_;
};

}  // namespace basrpt::ckpt
