#include "ckpt/stats_codec.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/serial.hpp"

namespace basrpt::ckpt {

namespace {

/// Reads a `key <count>` line and sanity-checks it against what the
/// section could still physically hold (`per_item` lines each). A count
/// beyond that is a corrupt file, not a big vector.
std::size_t read_count(SectionReader& in, const char* key,
                       std::size_t per_item) {
  const std::uint64_t n = in.u64(key);
  const std::uint64_t cap = in.remaining() / (per_item == 0 ? 1 : per_item);
  if (n > cap) {
    in.fail(std::string(key) + " count " + std::to_string(n) +
            " exceeds the section's remaining payload");
  }
  return static_cast<std::size_t>(n);
}

}  // namespace

void write_moments(SnapshotWriter::Section& out,
                   const stats::StreamingMoments::State& s) {
  out.i64("count", s.count);
  out.f64("mean", s.mean);
  out.f64("m2", s.m2);
  out.f64("sum", s.sum);
  out.f64("min", s.min);
  out.f64("max", s.max);
}

stats::StreamingMoments::State read_moments(SectionReader& in) {
  stats::StreamingMoments::State s;
  s.count = in.i64("count");
  s.mean = in.f64("mean");
  s.m2 = in.f64("m2");
  s.sum = in.f64("sum");
  s.min = in.f64("min");
  s.max = in.f64("max");
  return s;
}

void write_timeseries(SnapshotWriter::Section& out,
                      const stats::TimeSeries::State& s) {
  out.u64("stride", s.stride);
  out.u64("pending", s.pending);
  out.u64("points", s.points.size());
  for (const auto& p : s.points) {
    out.line("p " + f64_to_hex(p.t) + ' ' + f64_to_hex(p.value));
  }
}

stats::TimeSeries::State read_timeseries(SectionReader& in) {
  stats::TimeSeries::State s;
  s.stride = static_cast<std::size_t>(in.u64("stride"));
  if (s.stride == 0) {
    in.fail("stride must be >= 1");
  }
  s.pending = static_cast<std::size_t>(in.u64("pending"));
  const std::size_t n = read_count(in, "points", 1);
  s.points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Each point line is `p <t-hex> <value-hex>` — two cells, one line.
    const std::string v = in.text("p");
    const std::size_t space = v.find(' ');
    if (space == std::string::npos) {
      in.fail("point must be '<t-hex> <value-hex>', got '" + v + "'");
    }
    stats::TimeSeries::Point p;
    try {
      p.t = f64_from_hex(v.substr(0, space));
      p.value = f64_from_hex(v.substr(space + 1));
    } catch (const std::exception&) {
      in.fail("point cells must be hex-encoded doubles: '" + v + "'");
    }
    s.points.push_back(p);
  }
  return s;
}

void write_fct(SnapshotWriter::Section& out,
               const stats::FctAggregator::State& s) {
  out.u64("classes", s.classes.size());
  for (const auto& c : s.classes) {
    out.u64("class", static_cast<std::uint64_t>(c.cls));
    write_moments(out, c.moments);
    out.u64("fct_samples", c.fct_samples.size());
    for (const double v : c.fct_samples) {
      out.line("s " + f64_to_hex(v));
    }
    write_moments(out, c.slowdown_moments);
    out.u64("slowdown_samples", c.slowdown_samples.size());
    for (const double v : c.slowdown_samples) {
      out.line("s " + f64_to_hex(v));
    }
  }
  out.i64("bytes_completed", s.bytes_completed.count);
}

stats::FctAggregator::State read_fct(SectionReader& in) {
  stats::FctAggregator::State s;
  const std::size_t n_classes = read_count(in, "classes", 14);
  s.classes.reserve(n_classes);
  for (std::size_t i = 0; i < n_classes; ++i) {
    stats::FctAggregator::ClassState c;
    const std::uint64_t cls = in.u64("class");
    if (cls > 1) {
      in.fail("unknown flow class " + std::to_string(cls));
    }
    c.cls = static_cast<stats::FlowClass>(cls);
    c.moments = read_moments(in);
    const std::size_t n_fct = read_count(in, "fct_samples", 1);
    c.fct_samples.reserve(n_fct);
    for (std::size_t j = 0; j < n_fct; ++j) {
      c.fct_samples.push_back(in.f64("s"));
    }
    c.slowdown_moments = read_moments(in);
    const std::size_t n_sd = read_count(in, "slowdown_samples", 1);
    c.slowdown_samples.reserve(n_sd);
    for (std::size_t j = 0; j < n_sd; ++j) {
      c.slowdown_samples.push_back(in.f64("s"));
    }
    s.classes.push_back(std::move(c));
  }
  s.bytes_completed = Bytes{in.i64("bytes_completed")};
  return s;
}

void write_backlog(SnapshotWriter::Section& out,
                   const queueing::BacklogRecorder::State& s) {
  write_timeseries(out, s.total);
  write_timeseries(out, s.max_ingress);
  write_timeseries(out, s.watched_voq);
}

queueing::BacklogRecorder::State read_backlog(SectionReader& in) {
  queueing::BacklogRecorder::State s;
  s.total = read_timeseries(in);
  s.max_ingress = read_timeseries(in);
  s.watched_voq = read_timeseries(in);
  return s;
}

void write_drift(SnapshotWriter::Section& out,
                 const queueing::DriftTracker::State& s) {
  out.u64("primed", s.primed ? 1 : 0);
  out.f64("last", s.last);
  write_moments(out, s.drift);
}

queueing::DriftTracker::State read_drift(SectionReader& in) {
  queueing::DriftTracker::State s;
  const std::uint64_t primed = in.u64("primed");
  if (primed > 1) {
    in.fail("primed must be 0 or 1");
  }
  s.primed = primed == 1;
  s.last = in.f64("last");
  s.drift = read_moments(in);
  return s;
}

void write_fault_stats(SnapshotWriter::Section& out,
                       const fault::FaultStats& s) {
  out.i64("transitions", s.transitions);
  out.i64("decisions_suppressed", s.decisions_suppressed);
  out.i64("flows_requeued", s.flows_requeued);
  out.i64("candidates_masked", s.candidates_masked);
}

fault::FaultStats read_fault_stats(SectionReader& in) {
  fault::FaultStats s;
  s.transitions = in.i64("transitions");
  s.decisions_suppressed = in.i64("decisions_suppressed");
  s.flows_requeued = in.i64("flows_requeued");
  s.candidates_masked = in.i64("candidates_masked");
  return s;
}

}  // namespace basrpt::ckpt
