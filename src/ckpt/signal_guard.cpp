#include "ckpt/signal_guard.hpp"

#include <csignal>

#include "common/assert.hpp"
#include "common/interrupt.hpp"

namespace basrpt::ckpt {

namespace {

bool g_guard_alive = false;

extern "C" void on_fatal_signal(int signal_number) {
  // Async-signal-safe: one sig_atomic_t store + one relaxed atomic store.
  request_interrupt(signal_number);
}

}  // namespace

struct SignalGuard::Saved {
  struct sigaction sigint;
  struct sigaction sigterm;
};

SignalGuard::SignalGuard() : saved_(new Saved) {
  BASRPT_ASSERT(!g_guard_alive, "only one SignalGuard may be alive");
  g_guard_alive = true;
  struct sigaction action {};
  action.sa_handler = on_fatal_signal;
  sigemptyset(&action.sa_mask);
  // One-shot: the handler uninstalls itself, so a second Ctrl-C while the
  // checkpoint is being written kills the process the normal way.
  action.sa_flags = SA_RESETHAND;
  ::sigaction(SIGINT, &action, &saved_->sigint);
  ::sigaction(SIGTERM, &action, &saved_->sigterm);
}

SignalGuard::~SignalGuard() {
  ::sigaction(SIGINT, &saved_->sigint, nullptr);
  ::sigaction(SIGTERM, &saved_->sigterm, nullptr);
  delete saved_;
  g_guard_alive = false;
  clear_interrupt();
}

}  // namespace basrpt::ckpt
