#include "ckpt/signal_guard.hpp"

#include <csignal>

#include "common/assert.hpp"
#include "common/interrupt.hpp"

namespace basrpt::ckpt {

namespace {

bool g_guard_alive = false;

extern "C" void on_fatal_signal(int signal_number) {
  // Async-signal-safe: one sig_atomic_t store + one relaxed atomic store.
  request_interrupt(signal_number);
}

extern "C" void on_drain_signal(int signal_number) {
  // Async-signal-safe for the same reason. Deliberately does NOT set the
  // interrupt flag: a drain finishes in-flight work instead of aborting
  // at the next poll, and the exit code stays 0.
  request_drain(signal_number);
}

extern "C" void on_flush_signal(int signal_number) {
  // SIGHUP: checkpoint + rewrite the SLO report, keep serving.
  request_flush(signal_number);
}

}  // namespace

struct SignalGuard::Saved {
  struct sigaction sigint;
  struct sigaction sigterm;
  struct sigaction sighup;
  bool hooked_sighup = false;
};

SignalGuard::SignalGuard(bool drain_on_sigterm) : saved_(new Saved) {
  BASRPT_ASSERT(!g_guard_alive, "only one SignalGuard may be alive");
  g_guard_alive = true;
  struct sigaction action {};
  action.sa_handler = on_fatal_signal;
  sigemptyset(&action.sa_mask);
  // One-shot: the handler uninstalls itself, so a second Ctrl-C while the
  // checkpoint is being written kills the process the normal way.
  action.sa_flags = SA_RESETHAND;
  ::sigaction(SIGINT, &action, &saved_->sigint);
  if (drain_on_sigterm) {
    action.sa_handler = on_drain_signal;
  }
  ::sigaction(SIGTERM, &action, &saved_->sigterm);
  if (drain_on_sigterm) {
    // Services also answer SIGHUP: flush (checkpoint + SLO rewrite)
    // without exiting. NOT one-shot — an operator may SIGHUP repeatedly
    // — and no SA_RESTART, so a blocking feed read returns EINTR and
    // the EINTR-safe wrappers (common/io.hpp) retry after the loop has
    // had a chance to notice the flag.
    struct sigaction flush_action {};
    flush_action.sa_handler = on_flush_signal;
    sigemptyset(&flush_action.sa_mask);
    flush_action.sa_flags = 0;
    ::sigaction(SIGHUP, &flush_action, &saved_->sighup);
    saved_->hooked_sighup = true;
  }
}

SignalGuard::~SignalGuard() {
  ::sigaction(SIGINT, &saved_->sigint, nullptr);
  ::sigaction(SIGTERM, &saved_->sigterm, nullptr);
  if (saved_->hooked_sighup) {
    ::sigaction(SIGHUP, &saved_->sighup, nullptr);
  }
  delete saved_;
  g_guard_alive = false;
  clear_interrupt();
  clear_drain();
  clear_flush();
}

}  // namespace basrpt::ckpt
