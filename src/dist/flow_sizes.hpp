// Canned datacenter flow-size distributions (Sec. V-A).
//
// The paper generates workloads "following the statistical results given
// in recent data center traffic measurements" [DCTCP, Kandula et al.].
// Those traces are proprietary, so we reproduce the published statistics:
//   * query/response flows are fixed 20 KB;
//   * background ("large transfer") sizes are heavy-tailed with the
//     properties cited in the paper — over 95% of all bytes come from the
//     ~30% of flows sized 1–20 MB, and all flows are below 50 MB;
//   * the web-search distribution is the DCTCP-measurement CDF as
//     popularized by the pFabric simulations.
#pragma once

#include "dist/distributions.hpp"

namespace basrpt::dist {

/// Fixed 20 KB query/response size used in the paper's simulations.
SizeDistributionPtr query_size();

/// Web-search workload (DCTCP measurements): mix of small queries and
/// medium background flows; mean ≈ 1.1 MB.
SizeDistributionPtr web_search();

/// Background/data-mining-style workload matching the paper's calibration
/// claims (bytes dominated by 1–20 MB flows, 50 MB cap).
SizeDistributionPtr background();

/// A short-flow-heavy variant used for stress tests: many tiny flows plus
/// a thin 1–50 MB tail. Exercises the SRPT starvation mechanism harder.
SizeDistributionPtr heavy_tail_stress();

}  // namespace basrpt::dist
