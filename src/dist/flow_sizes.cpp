#include "dist/flow_sizes.hpp"

namespace basrpt::dist {

SizeDistributionPtr query_size() {
  return std::make_shared<FixedSize>(20_KB);
}

SizeDistributionPtr web_search() {
  // DCTCP web-search CDF (sizes quoted in KB in the original figure).
  return std::make_shared<EmpiricalCdf>(
      "web-search",
      std::vector<EmpiricalCdf::Point>{
          {6_KB, 0.15},
          {13_KB, 0.30},
          {19_KB, 0.45},
          {33_KB, 0.60},
          {53_KB, 0.70},
          {133_KB, 0.80},
          {667_KB, 0.90},
          {1333_KB, 0.95},
          {6667_KB, 0.98},
          {20000_KB, 1.00},
      });
}

SizeDistributionPtr background() {
  // Calibrated so that flows in 1-20 MB (~30% of flows) carry >95% of the
  // bytes and the maximum size is 50 MB, matching the statistics the
  // paper cites from [1, 16].
  return std::make_shared<EmpiricalCdf>(
      "background",
      std::vector<EmpiricalCdf::Point>{
          {2_KB, 0.12},
          {10_KB, 0.30},
          {50_KB, 0.50},
          {200_KB, 0.62},
          {1_MB, 0.70},
          {2_MB, 0.77},
          {5_MB, 0.88},
          {10_MB, 0.95},
          {20_MB, 0.995},
          {50_MB, 1.00},
      });
}

SizeDistributionPtr heavy_tail_stress() {
  return std::make_shared<EmpiricalCdf>(
      "heavy-tail-stress",
      std::vector<EmpiricalCdf::Point>{
          {1_KB, 0.50},
          {4_KB, 0.80},
          {20_KB, 0.90},
          {1_MB, 0.95},
          {50_MB, 1.00},
      });
}

}  // namespace basrpt::dist
