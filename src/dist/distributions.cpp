#include "dist/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace basrpt::dist {

// ---------------------------------------------------------------- FixedSize

FixedSize::FixedSize(Bytes size) : size_(size) {
  BASRPT_REQUIRE(size.count >= 1, "flow size must be at least 1 byte");
}

Bytes FixedSize::sample(Rng&) const { return size_; }
double FixedSize::mean_bytes() const {
  return static_cast<double>(size_.count);
}
Bytes FixedSize::max_bytes() const { return size_; }
std::string FixedSize::name() const {
  return "fixed(" + to_string(size_) + ")";
}

// ------------------------------------------------------------ BoundedPareto

BoundedPareto::BoundedPareto(double alpha, Bytes lo, Bytes hi)
    : alpha_(alpha),
      lo_(static_cast<double>(lo.count)),
      hi_(static_cast<double>(hi.count)) {
  BASRPT_REQUIRE(alpha > 0.0, "Pareto tail exponent must be positive");
  BASRPT_REQUIRE(lo.count >= 1, "Pareto lower bound must be >= 1 byte");
  BASRPT_REQUIRE(hi > lo, "Pareto upper bound must exceed lower bound");
}

Bytes BoundedPareto::sample(Rng& rng) const {
  // Inverse transform of the bounded-Pareto CDF.
  const double u = rng.uniform01();
  const double ratio = std::pow(lo_ / hi_, alpha_);
  const double x = lo_ / std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha_);
  const double clamped = std::clamp(x, lo_, hi_);
  return Bytes{static_cast<std::int64_t>(std::llround(clamped))};
}

double BoundedPareto::mean_bytes() const {
  const double ratio = std::pow(lo_ / hi_, alpha_);
  if (alpha_ == 1.0) {
    return std::log(hi_ / lo_) * lo_ / (1.0 - ratio);
  }
  // E[X] = (alpha * lo^alpha / (1 - (lo/hi)^alpha)) *
  //        (lo^(1-alpha) - hi^(1-alpha)) / (alpha - 1)
  const double num = std::pow(lo_, alpha_) *
                     (std::pow(lo_, 1.0 - alpha_) - std::pow(hi_, 1.0 - alpha_));
  return alpha_ / (alpha_ - 1.0) * num / (1.0 - ratio);
}

Bytes BoundedPareto::max_bytes() const {
  return Bytes{static_cast<std::int64_t>(hi_)};
}

std::string BoundedPareto::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "bounded-pareto(a=%.2f)", alpha_);
  return buf;
}

// ------------------------------------------------------------- EmpiricalCdf

EmpiricalCdf::EmpiricalCdf(std::string name, std::vector<Point> knots)
    : name_(std::move(name)), knots_(std::move(knots)) {
  BASRPT_REQUIRE(!knots_.empty(), "empirical CDF needs at least one knot");
  BASRPT_REQUIRE(knots_.front().size.count >= 1,
                 "empirical CDF sizes must be >= 1 byte");
  for (size_t i = 1; i < knots_.size(); ++i) {
    BASRPT_REQUIRE(knots_[i].size > knots_[i - 1].size,
                   "empirical CDF sizes must be strictly increasing");
    BASRPT_REQUIRE(knots_[i].cdf > knots_[i - 1].cdf,
                   "empirical CDF probabilities must be strictly increasing");
  }
  BASRPT_REQUIRE(knots_.front().cdf > 0.0 && knots_.front().cdf <= 1.0,
                 "empirical CDF probabilities must lie in (0, 1]");
  BASRPT_REQUIRE(std::abs(knots_.back().cdf - 1.0) < 1e-12,
                 "empirical CDF must end at probability 1");

  // Mean: each segment contributes (mass) * (midpoint of its size range).
  double mean = knots_.front().cdf *
                (1.0 + static_cast<double>(knots_.front().size.count)) / 2.0;
  for (size_t i = 1; i < knots_.size(); ++i) {
    const double mass = knots_[i].cdf - knots_[i - 1].cdf;
    const double mid = (static_cast<double>(knots_[i - 1].size.count) +
                        static_cast<double>(knots_[i].size.count)) /
                       2.0;
    mean += mass * mid;
  }
  mean_bytes_ = mean;
}

Bytes EmpiricalCdf::sample(Rng& rng) const {
  const double u = rng.uniform01();
  // Locate the segment containing u.
  if (u < knots_.front().cdf) {
    const double frac = u / knots_.front().cdf;
    const double lo = 1.0;
    const double hi = static_cast<double>(knots_.front().size.count);
    return Bytes{static_cast<std::int64_t>(
        std::llround(lo + frac * (hi - lo)))};
  }
  const auto it = std::lower_bound(
      knots_.begin(), knots_.end(), u,
      [](const Point& p, double value) { return p.cdf < value; });
  const size_t idx = static_cast<size_t>(
      std::min<std::ptrdiff_t>(it - knots_.begin(),
                               static_cast<std::ptrdiff_t>(knots_.size()) - 1));
  if (idx == 0) {
    return knots_.front().size;
  }
  const Point& lo = knots_[idx - 1];
  const Point& hi = knots_[idx];
  const double frac = (u - lo.cdf) / (hi.cdf - lo.cdf);
  const double size = static_cast<double>(lo.size.count) +
                      frac * static_cast<double>(hi.size.count - lo.size.count);
  return Bytes{std::max<std::int64_t>(1, std::llround(size))};
}

double EmpiricalCdf::mean_bytes() const { return mean_bytes_; }

Bytes EmpiricalCdf::max_bytes() const { return knots_.back().size; }

std::string EmpiricalCdf::name() const { return name_; }

double EmpiricalCdf::cdf_at(Bytes size) const {
  const double x = static_cast<double>(size.count);
  if (size.count < 1) {
    return 0.0;
  }
  if (size <= knots_.front().size) {
    const double hi = static_cast<double>(knots_.front().size.count);
    if (hi <= 1.0) {
      return knots_.front().cdf;
    }
    return knots_.front().cdf * (x - 1.0) / (hi - 1.0);
  }
  if (size >= knots_.back().size) {
    return 1.0;
  }
  const auto it = std::lower_bound(
      knots_.begin(), knots_.end(), size,
      [](const Point& p, Bytes value) { return p.size < value; });
  const size_t idx = static_cast<size_t>(it - knots_.begin());
  const Point& lo = knots_[idx - 1];
  const Point& hi = knots_[idx];
  const double frac = (x - static_cast<double>(lo.size.count)) /
                      static_cast<double>(hi.size.count - lo.size.count);
  return lo.cdf + frac * (hi.cdf - lo.cdf);
}

double EmpiricalCdf::byte_fraction(Bytes lo_bound, Bytes hi_bound) const {
  BASRPT_REQUIRE(lo_bound < hi_bound, "byte_fraction range inverted");
  // Expected bytes contributed by flows with size in (lo_bound, hi_bound],
  // divided by the overall mean. Within each uniform segment [a, b] with
  // probability mass m, the byte contribution of sub-range [x1, x2] is
  // m * (x2 - x1)/(b - a) * (x1 + x2)/2.
  const auto segment_contribution = [](double a, double b, double m,
                                       double x1, double x2) {
    const double lo = std::max(a, x1);
    const double hi = std::min(b, x2);
    if (hi <= lo || b <= a) {
      return 0.0;
    }
    return m * (hi - lo) / (b - a) * (lo + hi) / 2.0;
  };

  const double x1 = static_cast<double>(lo_bound.count);
  const double x2 = static_cast<double>(hi_bound.count);
  double contribution = segment_contribution(
      1.0, static_cast<double>(knots_.front().size.count),
      knots_.front().cdf, x1, x2);
  for (size_t i = 1; i < knots_.size(); ++i) {
    contribution += segment_contribution(
        static_cast<double>(knots_[i - 1].size.count),
        static_cast<double>(knots_[i].size.count),
        knots_[i].cdf - knots_[i - 1].cdf, x1, x2);
  }
  return contribution / mean_bytes_;
}

}  // namespace basrpt::dist
