// Random-size distributions for flow generation.
//
// A SizeDistribution turns uniform randomness into flow sizes in bytes.
// Implementations must expose their analytical mean so workload
// generators can calibrate arrival rates to a target offered load
// (Sec. V-A: "the arrival rates vary to achieve a desired level of
// load in fabric").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace basrpt::dist {

/// Interface for flow-size distributions.
class SizeDistribution {
 public:
  virtual ~SizeDistribution() = default;

  /// Draws one flow size. Always >= 1 byte.
  virtual Bytes sample(Rng& rng) const = 0;

  /// Analytical (or numerically integrated) mean of the distribution.
  virtual double mean_bytes() const = 0;

  /// Largest value the distribution can produce.
  virtual Bytes max_bytes() const = 0;

  virtual std::string name() const = 0;
};

/// Degenerate distribution: every flow has the same size (the paper's
/// 20 KB queries/responses).
class FixedSize final : public SizeDistribution {
 public:
  explicit FixedSize(Bytes size);

  Bytes sample(Rng& rng) const override;
  double mean_bytes() const override;
  Bytes max_bytes() const override;
  std::string name() const override;

 private:
  Bytes size_;
};

/// Bounded Pareto on [lo, hi] with tail exponent alpha.
/// F(x) = (1 - (lo/x)^alpha) / (1 - (lo/hi)^alpha).
class BoundedPareto final : public SizeDistribution {
 public:
  BoundedPareto(double alpha, Bytes lo, Bytes hi);

  Bytes sample(Rng& rng) const override;
  double mean_bytes() const override;
  Bytes max_bytes() const override;
  std::string name() const override;

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double lo_;
  double hi_;
};

/// Piecewise-linear empirical CDF defined by (size, cumulative
/// probability) knots; this is how published datacenter workloads
/// (web-search, data-mining) are specified. Sizes are interpolated
/// linearly within each segment.
class EmpiricalCdf final : public SizeDistribution {
 public:
  struct Point {
    Bytes size;
    double cdf;  // cumulative probability in (0, 1]
  };

  /// Knots must be strictly increasing in both size and cdf, with the
  /// last cdf == 1.0. An implicit initial knot (first.size, 0) is NOT
  /// added: pass the full curve starting from the smallest size with its
  /// cumulative mass; values below the first knot are drawn uniformly in
  /// [1 byte, first.size].
  explicit EmpiricalCdf(std::string name, std::vector<Point> knots);

  Bytes sample(Rng& rng) const override;
  double mean_bytes() const override;
  Bytes max_bytes() const override;
  std::string name() const override;

  /// CDF value at `size` (linear interpolation); used by tests to verify
  /// that sampling converges to the specification.
  double cdf_at(Bytes size) const;

  /// Fraction of *bytes* carried by flows of size in (lo, hi]; used to
  /// check the paper's "over 95% of all bytes are from the 30% of flows
  /// with the size of 1-20 MB" calibration claim.
  double byte_fraction(Bytes lo, Bytes hi) const;

  const std::vector<Point>& knots() const { return knots_; }

 private:
  std::string name_;
  std::vector<Point> knots_;
  double mean_bytes_;
};

/// Owning handle used in configs.
using SizeDistributionPtr = std::shared_ptr<const SizeDistribution>;

}  // namespace basrpt::dist
